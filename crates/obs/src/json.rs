//! A minimal JSON reader/writer — just enough to re-parse the
//! deterministic snapshots this crate emits (objects, arrays, integers,
//! strings with the standard escapes) without pulling in a registry
//! dependency.

use std::collections::BTreeMap;
use std::fmt;

/// A parse or shape error, with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value (no floats: snapshots only carry integers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (signed to cover gauges; counters fit `u64` via `Big`).
    Int(i64),
    /// A `u64` that does not fit `i64`.
    Big(u64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// This value as an object, or an error naming `what`.
    pub fn as_object(&self, what: &str) -> Result<&BTreeMap<String, Json>, JsonError> {
        match self {
            Json::Object(m) => Ok(m),
            other => Err(JsonError(format!("{what}: expected object, got {other:?}"))),
        }
    }

    /// This value as a `u64`, or an error naming `what`.
    pub fn as_u64(&self, what: &str) -> Result<u64, JsonError> {
        match self {
            Json::Int(i) if *i >= 0 => Ok(*i as u64),
            Json::Big(u) => Ok(*u),
            other => Err(JsonError(format!("{what}: expected u64, got {other:?}"))),
        }
    }

    /// This value as an `i64`, or an error naming `what`.
    pub fn as_i64(&self, what: &str) -> Result<i64, JsonError> {
        match self {
            Json::Int(i) => Ok(*i),
            other => Err(JsonError(format!("{what}: expected i64, got {other:?}"))),
        }
    }

    /// This value as a `Vec<u64>`, or an error naming `what`.
    pub fn as_u64_array(&self, what: &str) -> Result<Vec<u64>, JsonError> {
        match self {
            Json::Array(items) => items.iter().map(|v| v.as_u64(what)).collect(),
            other => Err(JsonError(format!("{what}: expected array, got {other:?}"))),
        }
    }
}

/// Parses `text` as a single JSON value; trailing non-whitespace is an
/// error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError(format!("trailing data at byte {}", p.pos)));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError("nesting too deep".into()));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(JsonError(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError(format!(
                "expected '{word}' at byte {}",
                self.pos
            )))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(JsonError(format!(
                "non-integer number at byte {start} (snapshots carry integers only)"
            )));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ascii");
        if let Ok(i) = text.parse::<i64>() {
            Ok(Json::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Json::Big(u))
        } else {
            Err(JsonError(format!("number out of range at byte {start}")))
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| JsonError("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| JsonError("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError("bad \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(JsonError("bad escape in string".into())),
                    }
                    self.pos += 1;
                }
                _ => return Err(JsonError("unterminated string".into())),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(JsonError(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(JsonError(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `items` to `out` as a JSON array of integers.
pub fn write_u64_array(out: &mut String, items: &[u64]) {
    out.push('[');
    for (i, v) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values() {
        let v = parse(r#" {"a": [1, -2, "x\n\"yA"], "b": {"c": true, "d": null}} "#)
            .unwrap();
        let obj = v.as_object("root").unwrap();
        assert_eq!(
            obj["a"],
            Json::Array(vec![
                Json::Int(1),
                Json::Int(-2),
                Json::Str("x\n\"yA".into())
            ])
        );
        assert_eq!(obj["b"].as_object("b").unwrap()["c"], Json::Bool(true));
    }

    #[test]
    fn big_u64_survives() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64("big").unwrap(), u64::MAX);
    }

    #[test]
    fn rejects_floats_truncation_and_trailing() {
        assert!(parse("1.5").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escaped_strings_round_trip() {
        let original = "quote \" slash \\ newline \n ctrl \u{1} done";
        let mut rendered = String::new();
        write_string(&mut rendered, original);
        assert_eq!(parse(&rendered).unwrap(), Json::Str(original.into()));
    }
}
