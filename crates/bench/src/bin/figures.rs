//! Regenerates the paper's automata figures as Graphviz DOT files.
//!
//! ```text
//! cargo run -p axml-bench --bin figures [out_dir]
//! ```
//!
//! Writes `fig4_awk.dot`, `fig5_complement.dot`, `fig6_product.dot`,
//! `fig7_complement.dot`, `fig8_product.dot`, `fig10_target.dot`,
//! `fig11_possible.dot` and `fig12_pruned.dot`. Render with
//! `dot -Tsvg fig6_product.dot -o fig6.svg`.

use axml_automata::Regex;
use axml_core::awk::{Awk, AwkLimits};
use axml_core::dot::{awk_to_dot, possible_game_to_dot, safe_game_to_dot};
use axml_core::possible::{target_of, PossibleGame};
use axml_core::safe::{complement_of, BuildMode, SafeGame};
use axml_schema::{Compiled, NoOracle, Schema};
use std::path::PathBuf;

fn paper_compiled() -> Compiled {
    Compiled::new(
        Schema::builder()
            .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .element("exhibit", "title.(Get_Date|date)")
            .data_element("performance")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit|performance)*")
            .function("Get_Date", "title", "date")
            .build()
            .unwrap(),
        &NoOracle,
    )
    .unwrap()
}

fn main() -> std::io::Result<()> {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "figures".to_owned())
        .into();
    std::fs::create_dir_all(&out_dir)?;
    let c = paper_compiled();
    let word: Vec<u32> = ["title", "date", "Get_Temp", "TimeOut"]
        .iter()
        .map(|n| c.alphabet().lookup(n).unwrap())
        .collect();
    let n = c.alphabet().len();
    let parse = |model: &str| {
        let mut ab = c.alphabet().clone();
        Regex::parse(model, &mut ab).expect("declared names only")
    };
    let star2 = parse("title.date.temp.(TimeOut|exhibit*)");
    let star3 = parse("title.date.temp.exhibit*");
    let awk = || Awk::build(&word, &c, 1, &AwkLimits::default()).expect("small instance");

    let write = |file: &str, contents: String| -> std::io::Result<()> {
        let path = out_dir.join(file);
        std::fs::write(&path, contents)?;
        println!("wrote {}", path.display());
        Ok(())
    };

    // Fig. 4: A_w^1.
    write("fig4_awk.dot", awk_to_dot(&awk(), c.alphabet(), "fig4_awk"))?;
    // Fig. 5: complement of (**), minimized like the paper draws it.
    write(
        "fig5_complement.dot",
        complement_of(&star2, n)
            .minimized()
            .to_dot(c.alphabet(), "fig5_complement"),
    )?;
    // Fig. 6: marked product for (**).
    let fig6 = SafeGame::solve(awk(), complement_of(&star2, n), BuildMode::Eager);
    assert!(fig6.is_safe());
    write(
        "fig6_product.dot",
        safe_game_to_dot(&fig6, c.alphabet(), "fig6_product"),
    )?;
    // Fig. 7: complement of (***).
    write(
        "fig7_complement.dot",
        complement_of(&star3, n)
            .minimized()
            .to_dot(c.alphabet(), "fig7_complement"),
    )?;
    // Fig. 8: fully marked product for (***).
    let fig8 = SafeGame::solve(awk(), complement_of(&star3, n), BuildMode::Eager);
    assert!(!fig8.is_safe());
    write(
        "fig8_product.dot",
        safe_game_to_dot(&fig8, c.alphabet(), "fig8_product"),
    )?;
    // Fig. 10: the target automaton A for (***).
    write(
        "fig10_target.dot",
        target_of(&star3, n).to_dot(c.alphabet(), "fig10_target"),
    )?;
    // Fig. 11: the possible-rewriting product.
    let fig11 = PossibleGame::solve(awk(), target_of(&star3, n));
    assert!(fig11.is_possible());
    write(
        "fig11_possible.dot",
        possible_game_to_dot(&fig11, c.alphabet(), "fig11_possible"),
    )?;
    // Fig. 12: the pruned (lazily built) product for (**).
    let fig12 = SafeGame::solve(awk(), complement_of(&star2, n), BuildMode::Lazy);
    println!(
        "fig12: lazy built {} nodes (eager {}), {} sink-pruned",
        fig12.stats.nodes, fig6.stats.nodes, fig12.stats.sink_pruned
    );
    write(
        "fig12_pruned.dot",
        safe_game_to_dot(&fig12, c.alphabet(), "fig12_pruned"),
    )?;
    Ok(())
}
