//! Regenerates every experiment series (B1–B9) as plain tables.
//!
//! This is the "tables and figures" harness: each section prints the
//! series that EXPERIMENTS.md records, with wall-clock timings measured on
//! the spot. Run with:
//!
//! ```text
//! cargo run --release -p axml-bench --bin report
//! ```

use axml_bench::*;
use axml_core::awk::{Awk, AwkLimits};
use axml_core::possible::{target_of, PossibleGame};
use axml_core::rewrite::{enforce, Rewriter};
use axml_core::safe::{complement_of, BuildMode, SafeGame};
use axml_core::schema_rw::schema_safe_rewrites;
use axml_schema::{validate, Compiled, NoOracle, Schema};
use axml_services::builtin::{GetDate, GetTemp, TimeOutGuide};
use axml_services::{Registry, ServiceDef};
use std::sync::Arc;
use std::time::Instant;

fn time<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    // Warm up once, then take the best of 5 runs (micro-benchmark style).
    let mut out = f();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        out = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e6);
    }
    (out, best)
}

fn main() {
    println!("# Experiment report — Exchanging Intensional XML Data (SIGMOD 2003)");
    println!("# All times in microseconds (best of 5). Shapes, not absolutes, matter.\n");

    b1();
    b2();
    b3();
    b4();
    b5();
    b6();
    b7();
    b8();
    b9();
    b10();
}

fn b1() {
    println!("## B1  safe rewriting vs target-schema size (polynomial for deterministic models)");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "n", "product", "time_us", "safe"
    );
    for n in [2usize, 4, 8, 16, 32, 64, 128] {
        let (compiled, word, target) = scaled_schema(n);
        let ((nodes, safe), us) = time(|| {
            let awk = Awk::build(&word, &compiled, 1, &AwkLimits::default()).unwrap();
            let comp = complement_of(&target, compiled.alphabet().len());
            let game = SafeGame::solve(awk, comp, BuildMode::Lazy);
            (game.stats.nodes, game.is_safe())
        });
        println!("{n:>6} {nodes:>12} {us:>12.1} {safe:>12}");
    }
    println!();
}

fn b2() {
    println!("## B2  safe rewriting vs depth k (exponent is k)");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "k", "awk_states", "product", "time_us"
    );
    let (compiled, word, target) = recursive_schema();
    for k in 1..=8u32 {
        let ((states, nodes), us) = time(|| {
            let awk = Awk::build(&word, &compiled, k, &AwkLimits::default()).unwrap();
            let states = awk.num_states();
            let comp = complement_of(&target, compiled.alphabet().len());
            let game = SafeGame::solve(awk, comp, BuildMode::Lazy);
            (states, game.stats.nodes)
        });
        println!("{k:>6} {states:>12} {nodes:>12} {us:>12.1}");
    }
    println!();
}

fn b3() {
    println!("## B3  complementation: deterministic vs non-deterministic content models");
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>14}",
        "n", "det_states", "det_us", "nondet_states", "nondet_us"
    );
    for n in [2usize, 4, 6, 8, 10, 12, 14, 16] {
        let (det, s1) = det_family(n);
        let (dn, dus) = time(|| complement_of(&det, s1).num_states());
        let (nondet, s2) = nondet_family(n);
        let (nn, nus) = time(|| complement_of(&nondet, s2).num_states());
        println!("{n:>6} {dn:>12} {dus:>12.1} {nn:>14} {nus:>14.1}");
    }
    println!();
}

fn b4() {
    println!("## B4  lazy (Sec. 7) vs eager (Fig. 3) product construction");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "n", "eager_nodes", "lazy_nodes", "eager_us", "lazy_us", "sink_pruned"
    );
    for n in [4usize, 8, 12, 16, 20] {
        let (compiled, word, target) = wide_instance(n);
        let run = |mode| {
            let awk = Awk::build(&word, &compiled, 1, &AwkLimits::default()).unwrap();
            let comp = complement_of(&target, compiled.alphabet().len());
            SafeGame::solve(awk, comp, mode).stats
        };
        let (es, eus) = time(|| run(BuildMode::Eager));
        let (ls, lus) = time(|| run(BuildMode::Lazy));
        println!(
            "{n:>8} {:>12} {:>12} {eus:>12.1} {lus:>12.1} {:>12}",
            es.nodes, ls.nodes, ls.sink_pruned
        );
    }
    println!();
}

fn b5() {
    println!("## B5  possible (Fig. 9) vs safe (Fig. 3) decision cost");
    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12}",
        "n", "safe_nodes", "possible_nodes", "safe_us", "possible_us"
    );
    for n in [4usize, 8, 12, 16, 20] {
        let (compiled, word, target) = wide_instance(n);
        let (sn, sus) = time(|| {
            let awk = Awk::build(&word, &compiled, 1, &AwkLimits::default()).unwrap();
            let comp = complement_of(&target, compiled.alphabet().len());
            SafeGame::solve(awk, comp, BuildMode::Lazy).stats.nodes
        });
        let (pn, pus) = time(|| {
            let awk = Awk::build(&word, &compiled, 1, &AwkLimits::default()).unwrap();
            let dfa = target_of(&target, compiled.alphabet().len());
            PossibleGame::solve(awk, dfa).stats.nodes
        });
        println!("{n:>8} {sn:>14} {pn:>14} {sus:>12.1} {pus:>12.1}");
    }
    println!();
}

fn b6() {
    println!("## B6  materialized size vs fan-out x and depth k  (|w|·x^k bound)");
    println!(
        "{:>4} {:>4} {:>10} {:>10} {:>12}",
        "x", "k", "leaves", "x^k", "time_us"
    );
    for (x, k) in [
        (2usize, 2usize),
        (2, 4),
        (2, 6),
        (2, 8),
        (3, 2),
        (3, 4),
        (4, 3),
    ] {
        let (compiled, doc) = fanout_schema(x, k);
        let (leaves, us) = time(|| {
            let mut rewriter = Rewriter::new(&compiled).with_k((k + 1) as u32);
            let mut invoker = FanoutInvoker { x };
            let (out, _) = rewriter.rewrite_safe(&doc, &mut invoker).unwrap();
            out.children().len()
        });
        println!(
            "{x:>4} {k:>4} {leaves:>10} {:>10} {us:>12.1}",
            x.pow(k as u32)
        );
    }
    println!();
}

fn b7() {
    println!("## B7  schema compatibility (Sec. 6) vs number of element types");
    println!("{:>6} {:>10} {:>12}", "types", "compatible", "time_us");
    for n in [2usize, 4, 8, 16, 32, 64] {
        let (s0, s) = chain_schemas(n);
        let (ok, us) = time(|| {
            schema_safe_rewrites(&s0, "e0", &s, 1, &NoOracle)
                .unwrap()
                .compatible()
        });
        println!("{n:>6} {ok:>10} {us:>12.1}");
    }
    println!();
}

fn b8() {
    println!("## B8  validation throughput vs document size");
    println!("{:>8} {:>12} {:>14}", "nodes", "time_us", "Mnodes/s");
    let compiled = paper_schema();
    for min in [10usize, 40, 80, 160, 320] {
        let doc = sized_instance(min as u64, min);
        let (_, us) = time(|| validate(&doc, &compiled).is_ok());
        let rate = doc.size() as f64 / us;
        println!("{:>8} {us:>12.2} {rate:>14.2}", doc.size());
    }
    println!();
}

fn b9() {
    println!("## B9  peer exchange: Schema Enforcement end to end (Fig. 2 into (**))");
    let registry = Registry::new();
    registry.register(
        ServiceDef::new("Get_Temp", "city", "temp"),
        Arc::new(GetTemp::with_defaults()),
    );
    registry.register(
        ServiceDef::new("TimeOut", "data", "(exhibit|performance)*"),
        Arc::new(TimeOutGuide::exhibits_only()),
    );
    registry.register(
        ServiceDef::new("Get_Date", "title", "date"),
        Arc::new(GetDate { table: vec![] }),
    );
    let exchange = Compiled::new(
        Schema::builder()
            .element("newspaper", "title.date.temp.(TimeOut|exhibit*)")
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .element("exhibit", "title.(Get_Date|date)")
            .data_element("performance")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit|performance)*")
            .function("Get_Date", "title", "date")
            .build()
            .unwrap(),
        &NoOracle,
    )
    .unwrap();
    let doc = newspaper();
    let (_, enforce_us) = time(|| {
        let mut invoker = registry.invoker(None);
        enforce(&exchange, &doc, 1, &mut invoker).unwrap().1
    });
    let (_, wire_us) = time(|| {
        let mut invoker = registry.invoker(None);
        let (sent, _) = enforce(&exchange, &doc, 1, &mut invoker).unwrap();
        let xml = sent.to_xml().to_xml();
        axml_xml::parse_document(&xml).unwrap()
    });
    println!("{:>32} {:>12}", "operation", "time_us");
    println!("{:>32} {enforce_us:>12.1}", "enforce (verify+rewrite)");
    println!("{:>32} {wire_us:>12.1}", "enforce + serialize + parse");
    println!("{:>32} {:>12.1}", "throughput (exchanges/s)", 1e6 / wire_us);
}

fn b10() {
    println!("\n## B10 ablations: complement minimization; Glushkov vs Thompson+subset");
    println!("{:>8} {:>16} {:>16}", "n", "plain_us", "minimized_us");
    for n in [8usize, 16, 24] {
        let (compiled, word, target) = wide_instance(n);
        let syms = compiled.alphabet().len();
        let (_, plain) = time(|| {
            let awk = Awk::build(&word, &compiled, 1, &AwkLimits::default()).unwrap();
            SafeGame::solve(awk, complement_of(&target, syms), BuildMode::Lazy)
                .stats
                .nodes
        });
        let (_, minimized) = time(|| {
            let awk = Awk::build(&word, &compiled, 1, &AwkLimits::default()).unwrap();
            SafeGame::solve(
                awk,
                complement_of(&target, syms).minimized(),
                BuildMode::Lazy,
            )
            .stats
            .nodes
        });
        println!("{n:>8} {plain:>16.1} {minimized:>16.1}");
    }
    use axml_automata::{Dfa, Glushkov, Nfa, Regex};
    let mut ab = axml_automata::Alphabet::new();
    let model: String = (0..24)
        .map(|i| format!("(s{i}|t{i})"))
        .collect::<Vec<_>>()
        .join(".");
    let re = Regex::parse(&model, &mut ab).unwrap();
    let syms = ab.len();
    let (_, g_us) = time(|| Glushkov::new(&re, syms).to_dfa().unwrap().num_states());
    let (_, t_us) = time(|| Dfa::determinize(&Nfa::thompson(&re, syms)).num_states());
    println!("{:>24} {:>12}", "dfa construction", "time_us");
    println!("{:>24} {g_us:>12.1}", "glushkov direct");
    println!("{:>24} {t_us:>12.1}", "thompson+subset");
}
