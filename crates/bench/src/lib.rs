//! Benchmark workloads for the experiment suite.
//!
//! The paper has no quantitative tables; its measurable claims are the
//! complexity statements of Secs. 4, 5 and 7. Each workload here
//! parameterizes one of those claims; the Criterion benches under
//! `benches/` and the `report` binary both draw from this module (see
//! DESIGN.md §5 for the experiment index B1–B9).

#![warn(missing_docs)]

use axml_automata::{Regex, Symbol};
use axml_schema::{Compiled, ITree, NoOracle, Schema};

/// The paper's schema (*) compiled (document vocabulary for most benches).
pub fn paper_schema() -> Compiled {
    Compiled::new(
        Schema::builder()
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .data_element("performance")
            .element("exhibit", "title.(Get_Date|date)")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit|performance)*")
            .function("Get_Date", "title", "date")
            .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
            .build()
            .unwrap(),
        &NoOracle,
    )
    .unwrap()
}

/// The Fig. 2 document.
pub fn newspaper() -> ITree {
    axml_schema::newspaper_example()
}

/// B1: a schema whose root has `n` slots, each a function call that must
/// be materialized into its element: word `f0…f(n-1)`, target `a0…a(n-1)`.
/// Target-schema size grows linearly with `n`.
pub fn scaled_schema(n: usize) -> (Compiled, Vec<Symbol>, Regex) {
    let mut b = Schema::builder();
    let mut model = String::new();
    for i in 0..n {
        b = b.data_element(&format!("a{i}"));
        b = b.function(&format!("f{i}"), "", &format!("a{i}"));
        if i > 0 {
            model.push('.');
        }
        model.push_str(&format!("a{i}"));
    }
    let b = b.element("r", &model);
    let schema = b.build().unwrap();
    let compiled = Compiled::new(schema, &NoOracle).unwrap();
    let word: Vec<Symbol> = (0..n)
        .map(|i| compiled.alphabet().lookup(&format!("f{i}")).unwrap())
        .collect();
    let mut ab = compiled.alphabet().clone();
    let target = Regex::parse(&model, &mut ab).unwrap();
    (compiled, word, target)
}

/// B2: a branching recursive output type — `f` returns `f.f | a` — so
/// `|A_w^k|` grows exponentially with `k`.
pub fn recursive_schema() -> (Compiled, Vec<Symbol>, Regex) {
    let schema = Schema::builder()
        .element("r", "a*")
        .data_element("a")
        .function("f", "", "f.f|a")
        .build()
        .unwrap();
    let compiled = Compiled::new(schema, &NoOracle).unwrap();
    let word = vec![compiled.alphabet().lookup("f").unwrap()];
    let mut ab = compiled.alphabet().clone();
    let target = Regex::parse("a*", &mut ab).unwrap();
    (compiled, word, target)
}

/// B3 (deterministic family): `x{n}` — complementing stays linear.
pub fn det_family(n: usize) -> (Regex, usize) {
    let mut ab = axml_automata::Alphabet::new();
    ab.intern("x");
    ab.intern("y");
    let re = Regex::parse(&format!("x{{{n}}}"), &mut ab).unwrap();
    (re, ab.len())
}

/// B3 (non-deterministic family): `(x|y)*.x.(x|y){n}` — the minimal DFA
/// (hence the complement) has `2^(n+1)` states.
pub fn nondet_family(n: usize) -> (Regex, usize) {
    let mut ab = axml_automata::Alphabet::new();
    ab.intern("x");
    ab.intern("y");
    let re = Regex::parse(&format!("(x|y)*.x.(x|y){{{n}}}"), &mut ab).unwrap();
    (re, ab.len())
}

/// B4/B5: a newspaper-like word with `n` (call | element) slots, against a
/// target requiring materialization of every odd slot — creating products
/// with substantial dead regions for the pruner to skip.
pub fn wide_instance(n: usize) -> (Compiled, Vec<Symbol>, Regex) {
    let mut b = Schema::builder();
    let mut model = String::new();
    for i in 0..n {
        b = b.data_element(&format!("a{i}"));
        b = b.function(&format!("f{i}"), "", &format!("a{i}.a{i}?"));
        if i > 0 {
            model.push('.');
        }
        if i % 2 == 0 {
            b = b.element(&format!("s{i}"), &format!("(f{i}|a{i}.a{i}?)"));
            model.push_str(&format!("(f{i}|a{i}.a{i}?)"));
        } else {
            model.push_str(&format!("a{i}.a{i}?"));
        }
    }
    let schema = b.element("r", &model).build().unwrap();
    let compiled = Compiled::new(schema, &NoOracle).unwrap();
    let word: Vec<Symbol> = (0..n)
        .map(|i| compiled.alphabet().lookup(&format!("f{i}")).unwrap())
        .collect();
    let mut ab = compiled.alphabet().clone();
    let target = Regex::parse(&model, &mut ab).unwrap();
    (compiled, word, target)
}

/// B6: a depth-`k` fan-out-`x` materialization workload: `h{d}` returns
/// `x` copies of `h{d-1}`, and `h0` returns a single `leaf` element. Fully
/// materializing `h{k}` yields `x^k` leaves — the paper's `|w|·x^k` bound.
pub fn fanout_schema(x: usize, k: usize) -> (Compiled, ITree) {
    let mut b = Schema::builder().element("r", "leaf*").data_element("leaf");
    b = b.function("h0", "", "leaf");
    for d in 1..=k {
        let inner = format!("h{}", d - 1);
        let model = format!("({inner}){{{x}}}");
        b = b.function(&format!("h{d}"), "", &model);
    }
    let schema = b.build().unwrap();
    let compiled = Compiled::new(schema, &NoOracle).unwrap();
    let doc = ITree::elem("r", vec![ITree::func(&format!("h{k}"), vec![])]);
    (compiled, doc)
}

/// An invoker realizing the [`fanout_schema`] services deterministically.
pub struct FanoutInvoker {
    /// Fan-out per level.
    pub x: usize,
}

impl axml_core::invoke::Invoker for FanoutInvoker {
    fn invoke(
        &mut self,
        function: &str,
        _params: &[ITree],
    ) -> Result<Vec<ITree>, axml_core::invoke::InvokeError> {
        let d: usize = function
            .strip_prefix('h')
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| axml_core::invoke::InvokeError {
                function: function.to_owned(),
                message: "unknown fanout function".to_owned(),
            })?;
        if d == 0 {
            Ok(vec![ITree::elem("leaf", vec![])])
        } else {
            Ok((0..self.x)
                .map(|_| ITree::func(&format!("h{}", d - 1), vec![]))
                .collect())
        }
    }
}

/// B7: a sender schema with `n` element types chained `e0 -> e1 -> … ->
/// leaf`, each content `(gi | next)`, against a receiver schema requiring
/// the materialized form.
pub fn chain_schemas(n: usize) -> (Schema, Schema) {
    let mk = |materialized: bool| {
        let mut b = Schema::builder();
        for i in 0..n {
            let next = if i + 1 < n {
                format!("e{}", i + 1)
            } else {
                "leaf".to_owned()
            };
            let model = if materialized {
                next.clone()
            } else {
                format!("g{i}|{next}")
            };
            b = b.element(&format!("e{i}"), &model);
            b = b.function(&format!("g{i}"), "", &next);
        }
        b.data_element("leaf").root("e0").build().unwrap()
    };
    (mk(false), mk(true))
}

/// B8/B9: a random instance of the paper schema, preferring at least
/// `min_size` nodes (retries generation and keeps the largest).
pub fn sized_instance(seed: u64, min_size: usize) -> ITree {
    use axml_support::rng::SeedableRng;
    let compiled = paper_schema();
    let mut rng = axml_support::rng::StdRng::seed_from_u64(seed);
    let config = axml_schema::GenConfig {
        words: axml_automata::SampleConfig {
            star_continue: 0.8,
            max_star: 32,
        },
        ..Default::default()
    };
    let mut best = axml_schema::generate_instance(&compiled, "newspaper", &mut rng, &config)
        .expect("generable");
    for _ in 0..50 {
        if best.size() >= min_size {
            break;
        }
        let candidate = axml_schema::generate_instance(&compiled, "newspaper", &mut rng, &config)
            .expect("generable");
        if candidate.size() > best.size() {
            best = candidate;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_core::awk::{Awk, AwkLimits};
    use axml_core::rewrite::Rewriter;
    use axml_core::safe::{complement_of, BuildMode, SafeGame};

    #[test]
    fn scaled_schema_is_safe_at_every_size() {
        for n in [1, 4, 8] {
            let (compiled, word, target) = scaled_schema(n);
            let awk = Awk::build(&word, &compiled, 1, &AwkLimits::default()).unwrap();
            let comp = complement_of(&target, compiled.alphabet().len());
            assert!(SafeGame::solve(awk, comp, BuildMode::Lazy).is_safe());
        }
    }

    #[test]
    fn recursive_schema_grows_with_k() {
        let (compiled, word, _) = recursive_schema();
        let s2 = Awk::build(&word, &compiled, 2, &AwkLimits::default())
            .unwrap()
            .num_states();
        let s4 = Awk::build(&word, &compiled, 4, &AwkLimits::default())
            .unwrap()
            .num_states();
        assert!(s4 > 2 * s2);
    }

    #[test]
    fn nondet_family_blows_up() {
        let (det, n1) = det_family(6);
        let (nondet, n2) = nondet_family(6);
        let c1 = complement_of(&det, n1).num_states();
        let c2 = complement_of(&nondet, n2).num_states();
        assert!(c2 > 8 * c1, "det {c1} vs nondet {c2}");
    }

    #[test]
    fn fanout_materializes_x_pow_k_leaves() {
        let (compiled, doc) = fanout_schema(3, 2);
        let mut rewriter = Rewriter::new(&compiled).with_k(3);
        let mut invoker = FanoutInvoker { x: 3 };
        let (out, _) = rewriter.rewrite_safe(&doc, &mut invoker).unwrap();
        assert_eq!(out.children().len(), 9); // 3^2 leaves
    }

    #[test]
    fn chain_schemas_compatible() {
        let (s0, s) = chain_schemas(5);
        let report =
            axml_core::schema_rw::schema_safe_rewrites(&s0, "e0", &s, 1, &NoOracle).unwrap();
        assert!(report.compatible(), "{:?}", report.failures);
    }

    #[test]
    fn wide_instance_solvable() {
        let (compiled, word, target) = wide_instance(6);
        let awk = Awk::build(&word, &compiled, 1, &AwkLimits::default()).unwrap();
        let comp = complement_of(&target, compiled.alphabet().len());
        let eager = SafeGame::solve(awk.clone(), comp.clone(), BuildMode::Eager);
        let lazy = SafeGame::solve(awk, comp, BuildMode::Lazy);
        assert_eq!(eager.is_safe(), lazy.is_safe());
        assert!(lazy.stats.nodes <= eager.stats.nodes);
    }

    #[test]
    fn sized_instances_scale() {
        let small = sized_instance(1, 0);
        let big = sized_instance(1, 60);
        assert!(big.size() >= small.size());
    }
}
