//! B6: materialized output size vs answer fan-out x and depth k
//! (Sec. 4: the rewritten word is bounded by `|w| · x^k`).

use axml_bench::{fanout_schema, FanoutInvoker};
use axml_core::rewrite::Rewriter;
use axml_support::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b6_execution_growth");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for (x, k) in [(2usize, 2usize), (2, 4), (2, 6), (3, 2), (3, 4), (4, 3)] {
        let (compiled, doc) = fanout_schema(x, k);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("x{x}_k{k}")),
            &(x, k),
            |b, &(x, k)| {
                b.iter(|| {
                    let mut rewriter = Rewriter::new(&compiled).with_k((k + 1) as u32);
                    let mut invoker = FanoutInvoker { x };
                    let (out, _) = rewriter
                        .rewrite_safe(black_box(&doc), &mut invoker)
                        .unwrap();
                    let leaves = out.children().len();
                    assert_eq!(leaves, x.pow(k as u32));
                    black_box(leaves)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
