//! B12: cold start vs warm-snapshot start (DESIGN.md §11).
//!
//! A daemon restart used to mean an empty [`SolveCache`]: the first
//! request of every distinct shape re-ran the full Glushkov →
//! determinize → complement → `A_w^k` → fixpoint pipeline. With the
//! store, the restarting daemon reloads its snapshot and resumes at
//! warm hit-rates. Four variants measure the difference:
//!
//! * `cold_start_first_request` — fresh cache, serve one request: the
//!   price every restart used to pay;
//! * `warm_start_first_request` — load the snapshot from disk *and*
//!   serve the same request: the price a restart pays now (snapshot
//!   I/O included);
//! * `snapshot_load` / `snapshot_persist` — the store operations in
//!   isolation.
//!
//! The JSON report carries a `warm_start` block comparing the first
//! 100 post-(re)start requests cold vs warm: CI asserts the warm
//! restart serves all 100 without a single solver miss.

use axml_core::rewrite::Rewriter;
use axml_core::solve_cache::SolveCache;
use axml_obs::Registry;
use axml_schema::{Compiled, ITree, NoOracle, Schema};
use axml_store::Store;
use axml_support::bench::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

/// Distinct request shapes: each costs its own subtree game cold.
const SHAPES: usize = 8;
/// The "first requests after restart" window the JSON block reports.
const FIRST_REQUESTS: usize = 100;

fn exchange_compiled() -> Compiled {
    Compiled::new(
        Schema::builder()
            .element("r", "exhibit*")
            .element("exhibit", "title.date.line*")
            .data_element("title")
            .data_element("date")
            .data_element("line")
            .function("Get_Date", "title", "date")
            .build()
            .unwrap(),
        &NoOracle,
    )
    .unwrap()
}

/// Request `i`: `1 + i % SHAPES` trailing lines, so requests cycle
/// through `SHAPES` distinct children words — the realistic regime
/// where a warm cache answers everything and a cold one solves each
/// shape once.
fn request_doc(i: usize) -> ITree {
    let title = format!("t{i}");
    let mut children = vec![
        ITree::data("title", &title),
        ITree::func("Get_Date", vec![ITree::data("title", &title)]),
    ];
    for l in 0..1 + i % SHAPES {
        children.push(ITree::data("line", &format!("l{l}")));
    }
    ITree::elem("r", vec![ITree::elem("exhibit", children)])
}

fn invoker() -> axml_core::invoke::ScriptedInvoker {
    axml_core::invoke::ScriptedInvoker::new().answer("Get_Date", vec![ITree::data("date", "mon")])
}

/// Serves `n` requests through `cache`, returning total output size.
fn serve(compiled: &Compiled, cache: &SolveCache, n: usize) -> usize {
    let mut total = 0;
    for i in 0..n {
        let (out, _) = Rewriter::new(compiled)
            .with_k(2)
            .with_cache(cache)
            .rewrite_safe(&request_doc(i), &mut invoker())
            .unwrap();
        total += out.size();
    }
    total
}

fn bench(c: &mut Criterion) {
    let compiled = exchange_compiled();
    let dir = std::env::temp_dir().join(format!("axml-b12-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();

    // Yesterday's daemon: serve the traffic once, snapshot at shutdown.
    let yesterday = SolveCache::unpublished(512);
    serve(&compiled, &yesterday, FIRST_REQUESTS);
    let snapshot_bytes = store
        .persist_cache(&yesterday, compiled.fingerprint())
        .unwrap();
    let entries = yesterday.export_entries().len();

    // Out-of-band comparison for the JSON block: the first 100
    // requests after a cold start vs after a warm-snapshot start.
    let cold_registry = Registry::new();
    let cold = SolveCache::with_registry(512, &cold_registry);
    serve(&compiled, &cold, FIRST_REQUESTS);
    let warm_registry = Registry::new();
    let warm = SolveCache::with_registry(512, &warm_registry);
    let load = store.load_cache(&warm, compiled.fingerprint());
    assert_eq!(load.entries, entries);
    serve(&compiled, &warm, FIRST_REQUESTS);
    let cold_snap = cold_registry.snapshot();
    let warm_snap = warm_registry.snapshot();

    let mut group = c.benchmark_group("b12_store_warm_start");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.throughput(Throughput::Elements(1));

    group.bench_function("cold_start_first_request", |b| {
        b.iter(|| {
            let cache = SolveCache::unpublished(512);
            black_box(serve(&compiled, &cache, black_box(1)))
        })
    });
    group.bench_function("warm_start_first_request", |b| {
        b.iter(|| {
            let cache = SolveCache::unpublished(512);
            let report = store.load_cache(&cache, compiled.fingerprint());
            assert!(!report.discarded);
            black_box(serve(&compiled, &cache, black_box(1)))
        })
    });
    group.bench_function("cold_start_first_100", |b| {
        b.iter(|| {
            let cache = SolveCache::unpublished(512);
            black_box(serve(&compiled, &cache, black_box(FIRST_REQUESTS)))
        })
    });
    group.bench_function("warm_start_first_100", |b| {
        b.iter(|| {
            let cache = SolveCache::unpublished(512);
            store.load_cache(&cache, compiled.fingerprint());
            black_box(serve(&compiled, &cache, black_box(FIRST_REQUESTS)))
        })
    });
    group.bench_function("snapshot_load", |b| {
        b.iter(|| {
            let cache = SolveCache::unpublished(512);
            black_box(store.load_cache(&cache, compiled.fingerprint()).entries)
        })
    });
    group.bench_function("snapshot_persist", |b| {
        b.iter(|| {
            black_box(
                store
                    .persist_cache(&yesterday, compiled.fingerprint())
                    .unwrap(),
            )
        })
    });

    group.attach_json(
        "warm_start",
        format!(
            concat!(
                "{{\"snapshot_bytes\":{},\"entries\":{},\"first_requests\":{},",
                "\"cold\":{{\"lookups\":{},\"hits\":{},\"misses\":{}}},",
                "\"warm\":{{\"lookups\":{},\"hits\":{},\"misses\":{}}}}}"
            ),
            snapshot_bytes,
            entries,
            FIRST_REQUESTS,
            cold_snap.counter("solve_cache.lookups_total"),
            cold_snap.counter("solve_cache.hits_total"),
            cold_snap.counter("solve_cache.misses_total"),
            warm_snap.counter("solve_cache.lookups_total"),
            warm_snap.counter("solve_cache.hits_total"),
            warm_snap.counter("solve_cache.misses_total"),
        ),
    );
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
