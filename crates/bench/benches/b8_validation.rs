//! B8: validation throughput vs document size (substrate baseline).

use axml_bench::{paper_schema, sized_instance};
use axml_schema::validate;
use axml_support::bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let compiled = paper_schema();
    let mut group = c.benchmark_group("b8_validation");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for min_size in [10usize, 40, 80, 160] {
        let doc = sized_instance(min_size as u64, min_size);
        group.throughput(Throughput::Elements(doc.size() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(doc.size()), &doc, |b, doc| {
            b.iter(|| validate(black_box(doc), &compiled).is_ok())
        });
    }
    // XML parse + validate end-to-end.
    let doc = sized_instance(7, 80);
    let xml = doc.to_xml().to_xml();
    group.bench_function("parse_decode_validate", |b| {
        b.iter(|| {
            let parsed = axml_xml::parse_document(black_box(&xml)).unwrap();
            let tree = axml_schema::ITree::from_xml(&parsed.root).unwrap();
            validate(&tree, &compiled).unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
