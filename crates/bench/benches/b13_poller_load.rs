//! B13: poll-engine load generation — per-request latency percentiles
//! (p50/p99/p999) under a closed-loop generator, the connections ×
//! throughput saturation curve for the readiness-loop daemon, and the
//! single-connection round-trip comparison against the blocking-reader
//! engine. The curve and the daemon's own metric snapshot (accounting
//! identity included) ride along in the JSON report (EXPERIMENTS.md B13).

use axml_net::{wire, IoMode, NetServer, ServerConfig};
use axml_obs::LATENCY_NS_BOUNDS;
use axml_support::bench::{criterion_group, criterion_main, smoke_mode, Criterion};
use std::hint::black_box;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn echo_daemon(io: IoMode, metrics: axml_obs::Registry) -> NetServer {
    NetServer::bind(
        "127.0.0.1:0",
        Arc::new(|_id: u64, envelope: &str| Ok(envelope.to_owned())),
        ServerConfig {
            io,
            metrics,
            ..Default::default()
        },
    )
    .unwrap()
}

fn fresh_registry() -> axml_obs::Registry {
    let r = axml_obs::Registry::new();
    axml_obs::register_catalogue(&r);
    r
}

/// Opens `n` handshaken connections in listener-backlog-sized batches.
fn open_conns(addr: SocketAddr, n: usize) -> Vec<TcpStream> {
    let mut conns = Vec::with_capacity(n);
    for batch in 0..n.div_ceil(128) {
        for _ in 0..128.min(n - batch * 128) {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            stream
                .set_write_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            stream.set_nodelay(true).unwrap();
            wire::write_frame(&mut stream, &wire::hello("b13-load")).unwrap();
            conns.push(stream);
        }
    }
    for stream in &mut conns {
        let back = wire::read_frame(stream, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, wire::FrameType::Welcome);
    }
    conns
}

/// Exact percentile from a sorted sample (nearest-rank interpolation).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One saturation point: `conns` connections, each round writes one
/// request per connection then collects every reply, so in-flight
/// concurrency equals the connection count. Latencies are closed-loop
/// (write → matching reply), observed into the shared histogram.
fn run_point(
    addr: SocketAddr,
    conns: usize,
    rounds: usize,
    latency: &axml_obs::Histogram,
) -> String {
    let mut fleet = open_conns(addr, conns);
    let mut samples: Vec<u64> = Vec::with_capacity(conns * rounds);
    let mut stamps: Vec<Instant> = Vec::with_capacity(conns);
    let mut busy = 0u64;
    let mut id = 0u64;
    let started = Instant::now();
    for _ in 0..rounds {
        stamps.clear();
        for stream in &mut fleet {
            id += 1;
            wire::write_frame(stream, &wire::request(id, "<env>load</env>")).unwrap();
            stamps.push(Instant::now());
        }
        for (stream, stamp) in fleet.iter_mut().zip(&stamps) {
            let reply = wire::read_frame(stream, wire::DEFAULT_MAX_FRAME).unwrap();
            match reply.kind {
                wire::FrameType::Response => {
                    let ns = stamp.elapsed().as_nanos() as u64;
                    latency.observe(ns);
                    samples.push(ns);
                }
                // Past the queue's capacity the daemon sheds load with
                // retryable Busy faults — the saturation knee itself.
                wire::FrameType::Fault => {
                    let fault = wire::decode_fault(&reply.payload).unwrap();
                    assert_eq!(fault.code, axml_net::FaultCode::Busy, "{fault}");
                    busy += 1;
                }
                other => panic!("unexpected reply kind {other:?}"),
            }
        }
    }
    let elapsed_ns = started.elapsed().as_nanos() as u64;
    samples.sort_unstable();
    let requests = samples.len() as u64 + busy;
    let rps = samples.len() as f64 / (elapsed_ns as f64 / 1e9);
    format!(
        r#"{{"conns":{conns},"requests":{requests},"busy":{busy},"elapsed_ns":{elapsed_ns},"rps":{rps:.1},"p50_ns":{},"p99_ns":{},"p999_ns":{}}}"#,
        percentile(&samples, 0.50),
        percentile(&samples, 0.99),
        percentile(&samples, 0.999),
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b13_poller_load");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(800));

    // Single-connection round trip, both engines: the readiness loop must
    // not tax the uncontended path to win the contended one.
    for (name, io) in [
        ("round_trip_threads_1conn", IoMode::Threads),
        ("round_trip_poll_1conn", IoMode::Poll),
    ] {
        let daemon = echo_daemon(io, fresh_registry());
        let mut conn = open_conns(daemon.local_addr(), 1).pop().unwrap();
        let mut id = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                id += 1;
                wire::write_frame(&mut conn, &wire::request(id, "<env>load</env>")).unwrap();
                let reply = wire::read_frame(&mut conn, wire::DEFAULT_MAX_FRAME).unwrap();
                black_box(reply.payload.len())
            })
        });
        drop(conn);
        daemon.shutdown().unwrap();
    }

    // The saturation curve: one poll daemon, rising connection counts,
    // fixed per-point request budget. Smoke mode keeps CI fast; the full
    // run walks into the thousand-connection regime.
    let points: &[usize] = if smoke_mode() {
        &[1, 8]
    } else {
        &[1, 8, 64, 256, 1024]
    };
    let budget = if smoke_mode() { 64 } else { 6144 };
    let metrics = fresh_registry();
    let latency = metrics.histogram("poller.request_ns", LATENCY_NS_BOUNDS);
    let daemon = echo_daemon(IoMode::Poll, metrics.clone());
    let curve: Vec<String> = points
        .iter()
        .map(|&conns| {
            let rounds = (budget / conns).clamp(2, 512);
            run_point(daemon.local_addr(), conns, rounds, &latency)
        })
        .collect();
    group.attach_json("saturation", format!("[{}]", curve.join(",")));
    // The daemon's own registry: poll gauges, frame histogram, and the
    // requests = ok + faults identity, asserted by the CI gate.
    group.attach_json("daemon_obs", metrics.snapshot().to_json());
    group.finish();
    daemon.shutdown().unwrap();
}

criterion_group!(benches, bench);
criterion_main!(benches);
