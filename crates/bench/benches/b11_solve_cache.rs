//! B11: the cross-request solver cache and parallel subtree enforcement.
//!
//! One wide document (many independent `exhibit` subtrees with distinct
//! children words) is enforced against its exchange schema four ways:
//!
//! * `cold_sequential` — a fresh cache every iteration: the full
//!   Glushkov → determinize → complement → `A_w^k` → fixpoint pipeline
//!   runs for the root game and every distinct subtree word;
//! * `warm_sequential` — one shared pre-warmed [`SolveCache`]: every
//!   game and DFA is answered from the cache, only execution remains;
//! * `cold_parallel_w4` / `warm_parallel_w4` — the same two regimes
//!   with independent root subtrees rewritten on 4 scoped threads
//!   (byte-identical output, see `Rewriter::rewrite_safe_parallel`).
//!
//! The warm cache's registry snapshot (hit/miss/eviction counters)
//! rides along in the JSON report.
//!
//! Note on the parallel variants: they prove the merge machinery and
//! measure its coordination cost. Wall-clock speedup requires real
//! cores — on a single-core host (as in CI containers) the scoped
//! threads time-slice one CPU, so `*_parallel_w4` reads as sequential
//! time plus thread overhead, not as a 4× win.

use axml_core::invoke::{Invoker, ScriptedInvoker};
use axml_core::rewrite::Rewriter;
use axml_core::solve_cache::SolveCache;
use axml_obs::Registry;
use axml_schema::{Compiled, ITree, NoOracle, Schema};
use axml_support::bench::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const EXHIBITS: usize = 16;
const WORKERS: usize = 4;

fn exchange_compiled() -> Compiled {
    Compiled::new(
        Schema::builder()
            .element("r", "exhibit*")
            .element("exhibit", "title.date.line*")
            .data_element("title")
            .data_element("date")
            .data_element("line")
            .function("Get_Date", "title", "date|Mirror_A1|Mirror_A2")
            .function("Mirror_A1", "", "date|Mirror_B1|Mirror_B2")
            .function("Mirror_A2", "", "date|Mirror_B1|Mirror_B2")
            .function("Mirror_B1", "", "date|Mirror_C1|Mirror_C2")
            .function("Mirror_B2", "", "date|Mirror_C1|Mirror_C2")
            .function("Mirror_C1", "", "date|Mirror_D1|Mirror_D2")
            .function("Mirror_C2", "", "date|Mirror_D1|Mirror_D2")
            .function("Mirror_D1", "", "date")
            .function("Mirror_D2", "", "date")
            .build()
            .unwrap(),
        &NoOracle,
    )
    .unwrap()
}

/// `EXHIBITS` root subtrees; exhibit `i` carries `i` trailing lines, so
/// every subtree children word is distinct and costs its own game.
fn wide_doc() -> ITree {
    let kids = (0..EXHIBITS)
        .map(|i| {
            let title = format!("t{i}");
            let mut children = vec![
                ITree::data("title", &title),
                ITree::func("Get_Date", vec![ITree::data("title", &title)]),
            ];
            for l in 0..i {
                children.push(ITree::data("line", &format!("l{l}")));
            }
            ITree::elem("exhibit", children)
        })
        .collect();
    ITree::elem("r", kids)
}

fn invoker() -> ScriptedInvoker {
    ScriptedInvoker::new().answer("Get_Date", vec![ITree::data("date", "mon")])
}

fn bench(c: &mut Criterion) {
    let compiled = exchange_compiled();
    let doc = wide_doc();

    let registry = Registry::new();
    let warm_cache = SolveCache::with_registry(512, &registry);
    // Pre-warm: one full sequential run populates every entry.
    let (reference, reference_report) = Rewriter::new(&compiled)
        .with_k(5)
        .with_cache(&warm_cache)
        .rewrite_safe(&doc, &mut invoker())
        .unwrap();
    assert_eq!(reference_report.invoked.len(), EXHIBITS);

    let mut group = c.benchmark_group("b11_solve_cache");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.throughput(Throughput::Elements(doc.size() as u64));

    group.bench_function("cold_sequential", |b| {
        b.iter(|| {
            let cache = SolveCache::unpublished(512);
            let mut rw = Rewriter::new(&compiled).with_k(5).with_cache(&cache);
            let (out, _) = rw.rewrite_safe(black_box(&doc), &mut invoker()).unwrap();
            black_box(out.size())
        })
    });
    group.bench_function("warm_sequential", |b| {
        let mut rw = Rewriter::new(&compiled).with_k(5).with_cache(&warm_cache);
        b.iter(|| {
            let (out, _) = rw.rewrite_safe(black_box(&doc), &mut invoker()).unwrap();
            assert_eq!(out, reference);
            black_box(out.size())
        })
    });
    group.bench_function("cold_parallel_w4", |b| {
        b.iter(|| {
            let cache = SolveCache::unpublished(512);
            let mut rw = Rewriter::new(&compiled).with_k(5).with_cache(&cache);
            let mut mk = || -> Box<dyn Invoker + Send> { Box::new(invoker()) };
            let (out, _) = rw
                .rewrite_safe_parallel(black_box(&doc), &mut mk, WORKERS)
                .unwrap();
            black_box(out.size())
        })
    });
    group.bench_function("warm_parallel_w4", |b| {
        let mut rw = Rewriter::new(&compiled).with_k(5).with_cache(&warm_cache);
        b.iter(|| {
            let mut mk = || -> Box<dyn Invoker + Send> { Box::new(invoker()) };
            let (out, _) = rw
                .rewrite_safe_parallel(black_box(&doc), &mut mk, WORKERS)
                .unwrap();
            assert_eq!(out, reference);
            black_box(out.size())
        })
    });

    // Cache accounting accumulated over the run (hits, misses,
    // evictions, entry count) rides along with the timings.
    group.attach_json("solve_cache_snapshot", registry.snapshot().to_json());
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
