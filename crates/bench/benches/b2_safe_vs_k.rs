//! B2: decision cost vs the rewriting depth k (Sec. 4:
//! `|A_w^k| = O((|s0|+|w|)^k)` — the exponent is k).

use axml_bench::recursive_schema;
use axml_core::awk::{Awk, AwkLimits};
use axml_core::safe::{complement_of, BuildMode, SafeGame};
use axml_support::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (compiled, word, target) = recursive_schema();
    let mut group = c.benchmark_group("b2_safe_vs_k");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for k in [1u32, 2, 3, 4, 5, 6, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let awk =
                    Awk::build(black_box(&word), &compiled, k, &AwkLimits::default()).unwrap();
                let comp = complement_of(&target, compiled.alphabet().len());
                let game = SafeGame::solve(awk, comp, BuildMode::Lazy);
                black_box((game.is_safe(), game.stats.nodes))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
