//! B14: streaming vs DOM whole-document enforcement.
//!
//! A quote feed — one small `meta` header, a long run of 64 KiB
//! extensional `chunk`s, and a trailing `calls` section holding 0, 1, or
//! 16 `Get_Quote` call sites whose exchange type (`quote*`) forces them
//! to materialize — is enforced two ways at each document size:
//!
//! * `dom_*` — the classical pipeline: parse the whole document, decode
//!   it into an [`ITree`], rewrite, serialize;
//! * `stream_*` — [`enforce_stream`]: the chunks are copied straight
//!   from the pull parser to the output, and only the `calls` subtree is
//!   ever materialized, so peak buffering stays proportional to the
//!   *active* subtree while the document grows.
//!
//! The JSON report carries one [`StreamReport`] per (size × call-sites)
//! configuration plus the process obs snapshot. The CI gate asserts the
//! bounded-memory claim from these numbers: `peak_buffer_bytes` must stay
//! flat (within 2×) while the document grows 16×, and the
//! `bytes_copied + bytes_rewritten == bytes_out` identity must hold.
//! Sizes: 1→16 MiB in smoke mode, 1→64 MiB otherwise (EXPERIMENTS.md
//! records a 100 MB spot run).

use axml_core::invoke::{Invoker, ScriptedInvoker};
use axml_core::solve_cache::SolveCache;
use axml_core::stream::{enforce_dom, enforce_stream, StreamOptions};
use axml_schema::{Compiled, ITree, NoOracle, Schema};
use axml_support::bench::{criterion_group, criterion_main, smoke_mode, Criterion, Throughput};
use std::hint::black_box;

const MIB: usize = 1 << 20;
const CHUNK_TEXT: usize = 64 << 10;
const CALL_SITES: [usize; 3] = [0, 1, 16];

fn feed_compiled() -> Compiled {
    Compiled::new(
        Schema::builder()
            .element("feed", "meta.chunk*.calls")
            .data_element("meta")
            .data_element("chunk")
            .element("calls", "quote*")
            .data_element("quote")
            .function("Get_Quote", "meta", "quote*")
            .build()
            .unwrap(),
        &NoOracle,
    )
    .unwrap()
}

/// A feed of roughly `target_bytes` of XML: 64 KiB text chunks, then a
/// `calls` section with `calls` Get_Quote sites.
fn feed_xml(target_bytes: usize, calls: usize) -> String {
    let mut out = String::with_capacity(target_bytes + 4096);
    out.push_str("<feed><meta>nasdaq 2026-08-08</meta>");
    let chunk_body: String = "abcdefghijklmnopqrstuvwxyz0123456789 "
        .chars()
        .cycle()
        .take(CHUNK_TEXT)
        .collect();
    while out.len() + CHUNK_TEXT < target_bytes {
        out.push_str("<chunk>");
        out.push_str(&chunk_body);
        out.push_str("</chunk>");
    }
    out.push_str("<calls>");
    for i in 0..calls {
        out.push_str(&format!(
            "<int:fun xmlns:int=\"http://www.activexml.com/ns/int\" methodName=\"Get_Quote\">\
             <int:params><int:param><meta>site {i}</meta></int:param></int:params></int:fun>"
        ));
    }
    out.push_str("</calls></feed>");
    out
}

fn invoker() -> ScriptedInvoker {
    ScriptedInvoker::new().answer("Get_Quote", vec![ITree::data("quote", "AXML 42.17")])
}

fn bench(c: &mut Criterion) {
    let compiled = feed_compiled();
    let sizes: &[usize] = if smoke_mode() {
        &[MIB, 4 * MIB, 16 * MIB]
    } else {
        &[MIB, 4 * MIB, 16 * MIB, 64 * MIB]
    };
    let cache = SolveCache::unpublished(256);

    let mut group = c.benchmark_group("b14_stream_enforce");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(1000));

    let mut reports: Vec<String> = Vec::new();
    for &size in sizes {
        for &calls in &CALL_SITES {
            let input = feed_xml(size, calls);
            let opts = StreamOptions {
                k: 1,
                cache: Some(cache.clone()),
                ..StreamOptions::default()
            };
            let mib = size / MIB;

            // Correctness first: streaming output is byte-identical to
            // the DOM pipeline on every configuration measured.
            let (stream_out, rep) = enforce_stream(&compiled, &input, &opts, &mut || {
                Box::new(invoker()) as Box<dyn Invoker + Send>
            })
            .unwrap();
            let (dom_out, _) = enforce_dom(&compiled, &input, &opts, &mut || {
                Box::new(invoker()) as Box<dyn Invoker + Send>
            })
            .unwrap();
            assert_eq!(stream_out, dom_out, "parity broke at {mib} MiB / {calls} calls");
            assert!(!rep.fell_back, "unexpected fallback at {mib} MiB / {calls} calls");
            assert_eq!(rep.bytes_copied + rep.bytes_rewritten, rep.bytes_out);
            reports.push(format!(
                "{{\"size_bytes\": {}, \"call_sites\": {}, \"bytes_out\": {}, \
                 \"bytes_copied\": {}, \"bytes_rewritten\": {}, \
                 \"subtrees_materialized\": {}, \"peak_buffer_bytes\": {}, \
                 \"fell_back\": {}}}",
                input.len(),
                calls,
                rep.bytes_out,
                rep.bytes_copied,
                rep.bytes_rewritten,
                rep.subtrees_materialized,
                rep.peak_buffer_bytes,
                rep.fell_back,
            ));
            drop(stream_out);
            drop(dom_out);

            group.throughput(Throughput::Bytes(input.len() as u64));
            group.bench_function(format!("stream_{mib}mib_{calls}calls"), |b| {
                b.iter(|| {
                    let mut sink = std::io::sink();
                    let mut inv = invoker();
                    let rep = axml_core::rewrite::Rewriter::new(&compiled)
                        .with_k(1)
                        .with_cache(&cache)
                        .rewrite_stream(
                            black_box(input.as_str()),
                            axml_core::rewrite::Strategy::Safe,
                            &mut inv,
                            &mut sink,
                        )
                        .unwrap();
                    black_box(rep.bytes_out)
                })
            });
            group.bench_function(format!("dom_{mib}mib_{calls}calls"), |b| {
                b.iter(|| {
                    let (out, _) = enforce_dom(&compiled, black_box(&input), &opts, &mut || {
                        Box::new(invoker()) as Box<dyn Invoker + Send>
                    })
                    .unwrap();
                    black_box(out.len())
                })
            });
        }
    }

    group.attach_json("stream_reports", format!("[{}]", reports.join(",")));
    group.attach_json("obs_snapshot", axml_obs::global().snapshot().to_json());
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
