//! B7: schema-to-schema compatibility (Sec. 6) vs number of element types.

use axml_bench::chain_schemas;
use axml_core::schema_rw::schema_safe_rewrites;
use axml_schema::NoOracle;
use axml_support::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b7_schema_compat");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for n in [2usize, 4, 8, 16, 32] {
        let (s0, s) = chain_schemas(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let report = schema_safe_rewrites(black_box(&s0), "e0", &s, 1, &NoOracle).unwrap();
                assert!(report.compatible());
                black_box(report.checked.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
