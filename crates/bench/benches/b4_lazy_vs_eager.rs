//! B4: the Sec. 7 lazy/pruned product vs the eager Fig. 3 construction
//! (same worst case, large practical savings — Fig. 12).

use axml_automata::Regex;
use axml_bench::{paper_schema, wide_instance};
use axml_core::awk::{Awk, AwkLimits};
use axml_core::safe::{complement_of, BuildMode, SafeGame};
use axml_support::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b4_lazy_vs_eager");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    // The Fig. 6/12 instance itself.
    let compiled = paper_schema();
    let word: Vec<u32> = ["title", "date", "Get_Temp", "TimeOut"]
        .iter()
        .map(|s| compiled.alphabet().lookup(s).unwrap())
        .collect();
    let mut ab = compiled.alphabet().clone();
    let fig6 = Regex::parse("title.date.temp.(TimeOut|exhibit*)", &mut ab).unwrap();
    for (label, mode) in [("eager", BuildMode::Eager), ("lazy", BuildMode::Lazy)] {
        group.bench_function(BenchmarkId::new("fig6", label), |b| {
            b.iter(|| {
                let awk =
                    Awk::build(black_box(&word), &compiled, 1, &AwkLimits::default()).unwrap();
                let comp = complement_of(&fig6, compiled.alphabet().len());
                black_box(SafeGame::solve(awk, comp, mode).stats.nodes)
            })
        });
    }
    // Scaled instances.
    for n in [4usize, 8, 12, 16] {
        let (compiled, word, target) = wide_instance(n);
        for (label, mode) in [("eager", BuildMode::Eager), ("lazy", BuildMode::Lazy)] {
            group.bench_with_input(BenchmarkId::new(format!("wide_{label}"), n), &n, |b, _| {
                b.iter(|| {
                    let awk =
                        Awk::build(black_box(&word), &compiled, 1, &AwkLimits::default()).unwrap();
                    let comp = complement_of(&target, compiled.alphabet().len());
                    black_box(SafeGame::solve(awk, comp, mode).stats.nodes)
                })
            });
        }
    }
    // Solver counters accumulated over the run ride along with the
    // timings so a bench report also shows node/prune work done.
    group.attach_json("obs_snapshot", axml_obs::global().snapshot().to_json());
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
