//! B5: possible rewriting (product with the target, Sec. 5) vs safe
//! rewriting (product with the complement, Sec. 4) on the same instances.

use axml_bench::wide_instance;
use axml_core::awk::{Awk, AwkLimits};
use axml_core::possible::{target_of, PossibleGame};
use axml_core::safe::{complement_of, BuildMode, SafeGame};
use axml_support::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b5_possible_vs_safe");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for n in [4usize, 8, 12, 16] {
        let (compiled, word, target) = wide_instance(n);
        group.bench_with_input(BenchmarkId::new("safe", n), &n, |b, _| {
            b.iter(|| {
                let awk =
                    Awk::build(black_box(&word), &compiled, 1, &AwkLimits::default()).unwrap();
                let comp = complement_of(&target, compiled.alphabet().len());
                black_box(SafeGame::solve(awk, comp, BuildMode::Lazy).is_safe())
            })
        });
        group.bench_with_input(BenchmarkId::new("possible", n), &n, |b, _| {
            b.iter(|| {
                let awk =
                    Awk::build(black_box(&word), &compiled, 1, &AwkLimits::default()).unwrap();
                let dfa = target_of(&target, compiled.alphabet().len());
                black_box(PossibleGame::solve(awk, dfa).is_possible())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
