//! B1: safe-rewriting decision time vs target-schema size (Sec. 4:
//! polynomial for deterministic content models).

use axml_bench::scaled_schema;
use axml_core::awk::{Awk, AwkLimits};
use axml_core::safe::{complement_of, BuildMode, SafeGame};
use axml_support::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b1_safe_vs_schema_size");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for n in [2usize, 4, 8, 16, 32, 64] {
        let (compiled, word, target) = scaled_schema(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let awk =
                    Awk::build(black_box(&word), &compiled, 1, &AwkLimits::default()).unwrap();
                let comp = complement_of(&target, compiled.alphabet().len());
                let game = SafeGame::solve(awk, comp, BuildMode::Lazy);
                assert!(game.is_safe());
                black_box(game.stats.nodes)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
