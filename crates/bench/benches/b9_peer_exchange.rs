//! B9: end-to-end peer exchange — the Schema Enforcement module's
//! throughput when sending Fig. 2 documents under exchange schema (**),
//! plus the transport comparison: the same service exchange over the
//! in-process channel server vs a loopback TCP daemon.

use axml_bench::newspaper;
use axml_core::rewrite::enforce;
use axml_net::{ClientConfig, ServerConfig};
use axml_peer::{NetPeer, Peer, Query, RemotePeer};
use axml_schema::{Compiled, ITree, NoOracle, Schema};
use axml_services::builtin::{GetDate, GetTemp, TimeOutGuide};
use axml_services::{Registry, ServiceDef};
use axml_support::bench::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn exchange_schema() -> Compiled {
    Compiled::new(
        Schema::builder()
            .element("newspaper", "title.date.temp.(TimeOut|exhibit*)")
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .element("exhibit", "title.(Get_Date|date)")
            .data_element("performance")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit|performance)*")
            .function("Get_Date", "title", "date")
            .build()
            .unwrap(),
        &NoOracle,
    )
    .unwrap()
}

fn bench(c: &mut Criterion) {
    let registry = Registry::new();
    registry.register(
        ServiceDef::new("Get_Temp", "city", "temp"),
        Arc::new(GetTemp::with_defaults()),
    );
    registry.register(
        ServiceDef::new("TimeOut", "data", "(exhibit|performance)*"),
        Arc::new(TimeOutGuide::exhibits_only()),
    );
    registry.register(
        ServiceDef::new("Get_Date", "title", "date"),
        Arc::new(GetDate { table: vec![] }),
    );
    let exchange = exchange_schema();
    let doc = newspaper();
    let mut group = c.benchmark_group("b9_peer_exchange");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.bench_function("enforce_fig2_into_star_star", |b| {
        b.iter(|| {
            let mut invoker = registry.invoker(None);
            let (sent, report) = enforce(&exchange, black_box(&doc), 1, &mut invoker).unwrap();
            assert_eq!(report.invoked.len(), 1);
            black_box(sent.size())
        })
    });
    // Wire-format round trip included.
    group.bench_function("enforce_plus_serialize_parse", |b| {
        b.iter(|| {
            let mut invoker = registry.invoker(None);
            let (sent, _) = enforce(&exchange, black_box(&doc), 1, &mut invoker).unwrap();
            let xml = sent.to_xml().to_xml();
            let parsed = axml_xml::parse_document(&xml).unwrap();
            black_box(axml_schema::ITree::from_xml(&parsed.root).unwrap().size())
        })
    });
    // Transport comparison: one provider peer serving the exhibits guide,
    // invoked over the in-process channel transport and over a loopback
    // TCP daemon — the protocol cost of going through sockets.
    let provider = Arc::new(Peer::new(
        "guide.example.org",
        Arc::new(exchange_schema()),
        Arc::new(Registry::new()),
    ));
    provider.repository.store(
        "guide",
        ITree::elem(
            "guide",
            vec![
                ITree::elem(
                    "exhibit",
                    vec![ITree::data("title", "Monet"), ITree::data("date", "Mon")],
                ),
                ITree::elem(
                    "exhibit",
                    vec![ITree::data("title", "Rodin"), ITree::data("date", "Tue")],
                ),
            ],
        ),
    );
    provider.declare(
        ServiceDef::new("TimeOut", "data", "(exhibit|performance)*"),
        Query::Children("guide".to_owned()),
    );
    let caller = Peer::new(
        "caller.example.org",
        Arc::new(exchange_schema()),
        Arc::new(Registry::new()),
    );
    let params = [ITree::text("exhibits")];

    let channel_server = provider.serve();
    let daemon = NetPeer::serve(
        Arc::clone(&provider),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let remote = RemotePeer::connect(daemon.local_addr(), ClientConfig::default()).unwrap();

    let result = caller
        .call_remote(&channel_server, "TimeOut", &params)
        .unwrap();
    let elements: u64 = result.iter().map(|t| t.size() as u64).sum();
    group.throughput(Throughput::Elements(elements));
    group.bench_function("exchange_channel", |b| {
        b.iter(|| {
            let out = caller
                .call_remote(&channel_server, "TimeOut", black_box(&params))
                .unwrap();
            black_box(out.len())
        })
    });
    group.bench_function("exchange_tcp_loopback", |b| {
        b.iter(|| {
            let out = remote
                .invoke_service(&caller, "TimeOut", black_box(&params))
                .unwrap();
            black_box(out.len())
        })
    });
    // Peer/client/server counters accumulated over the run ride along
    // with the timings (exchange counts, retries, queue pressure).
    group.attach_json("obs_snapshot", axml_obs::global().snapshot().to_json());
    group.finish();
    channel_server.shutdown().unwrap();
    daemon.shutdown().unwrap();
}

criterion_group!(benches, bench);
criterion_main!(benches);
