//! B15: chunked wire shipping — documents past the frame cap.
//!
//! Three measurement families, each against a live loopback daemon on
//! both engines (blocking readers and the poll-mode readiness loop):
//!
//! * `single_1mib_*` — the pre-chunking baseline: one sub-cap document
//!   in a single `Request` frame;
//! * `chunked_{N}mib_*` — the same transport carrying `N` MiB through
//!   `DocChunkStart`/`DocChunk`/`DocChunkEnd` frames in 256 KiB chunks.
//!   The 16 MiB point is 4× `DEFAULT_MAX_FRAME`: unshippable without
//!   chunking, which is the protocol's reason to exist;
//! * `enforced_chunked_4mib_*` — the full pipeline: streaming
//!   enforcement writes straight into the chunk sink, so the sender
//!   never holds more than the active subtree plus one chunk.
//!
//! The JSON report carries one receiver-side accounting record per
//! (size × engine) configuration: every payload byte must land in
//! `net.chunk.bytes_total`, zero aborts, and the reassembly gauge back
//! at zero — the same identities `tests/chunk_parity.rs` pins, asserted
//! here by the CI gate at bench scale.

use axml_core::invoke::ScriptedInvoker;
use axml_core::stream::{enforce_stream_to, StreamOptions};
use axml_net::{wire, ClientConfig, Handler, IoMode, NetClient, NetServer, ServerConfig};
use axml_schema::{Compiled, ITree, NoOracle, Schema};
use axml_support::bench::{criterion_group, criterion_main, smoke_mode, Criterion, Throughput};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const MIB: usize = 1 << 20;
const CHUNK: usize = 256 << 10;
const IO_MODES: [IoMode; 2] = [IoMode::Threads, IoMode::Poll];

fn io_tag(io: IoMode) -> &'static str {
    match io {
        IoMode::Threads => "threads",
        IoMode::Poll => "poll",
    }
}

/// Counts received document bytes and drops them — the bench measures
/// the wire, not the repository.
struct DrainStore {
    bytes: AtomicU64,
}

impl Handler for DrainStore {
    fn handle(&self, _id: u64, envelope: &str) -> Result<String, wire::WireFault> {
        self.bytes.fetch_add(envelope.len() as u64, Ordering::Relaxed);
        Ok("<ok/>".to_owned())
    }

    fn handle_document(&self, _id: u64, _name: &str, text: &str) -> Result<String, wire::WireFault> {
        self.bytes.fetch_add(text.len() as u64, Ordering::Relaxed);
        Ok("<stored/>".to_owned())
    }
}

fn fresh_registry() -> axml_obs::Registry {
    let r = axml_obs::Registry::new();
    axml_obs::register_catalogue(&r);
    r
}

fn daemon(io: IoMode, metrics: axml_obs::Registry) -> (NetServer, Arc<DrainStore>, NetClient) {
    let store = Arc::new(DrainStore {
        bytes: AtomicU64::new(0),
    });
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<dyn Handler>,
        ServerConfig {
            io,
            metrics,
            ..Default::default()
        },
    )
    .unwrap();
    let client = NetClient::new(server.local_addr(), ClientConfig::default()).unwrap();
    (server, store, client)
}

/// An extensional newspaper of roughly `target_bytes`: padded exhibit
/// titles, no call sites — pure payload for the transport measurements.
fn newspaper_xml(target_bytes: usize) -> String {
    let body: String = "lorem ipsum dolor sit amet 0123456789 "
        .chars()
        .cycle()
        .take(1 << 16)
        .collect();
    let mut out = String::with_capacity(target_bytes + (1 << 17));
    out.push_str("<newspaper><title>big</title><date>04/10/2002</date>");
    // Overshoot: the N-MiB point must be *at least* N MiB so the 16 MiB
    // document really sits past 4x the frame cap.
    while out.len() < target_bytes {
        out.push_str("<exhibit><title>");
        out.push_str(&body);
        out.push_str("</title><date>Mon</date></exhibit>");
    }
    out.push_str("</newspaper>");
    out
}

fn feed_compiled() -> Compiled {
    Compiled::new(
        Schema::builder()
            .element("feed", "meta.chunk*.calls")
            .data_element("meta")
            .data_element("chunk")
            .element("calls", "quote*")
            .data_element("quote")
            .function("Get_Quote", "meta", "quote*")
            .build()
            .unwrap(),
        &NoOracle,
    )
    .unwrap()
}

/// An intensional quote feed (B14's shape, one call site) for the
/// end-to-end enforced-ship variant.
fn feed_xml(target_bytes: usize) -> String {
    let chunk_body: String = "abcdefghijklmnopqrstuvwxyz0123456789 "
        .chars()
        .cycle()
        .take(64 << 10)
        .collect();
    let mut out = String::with_capacity(target_bytes + 4096);
    out.push_str("<feed><meta>nasdaq 2026-08-08</meta>");
    while out.len() + (64 << 10) < target_bytes {
        out.push_str("<chunk>");
        out.push_str(&chunk_body);
        out.push_str("</chunk>");
    }
    out.push_str(
        "<calls><int:fun xmlns:int=\"http://www.activexml.com/ns/int\" methodName=\"Get_Quote\">\
         <int:params><int:param><meta>site 0</meta></int:param></int:params></int:fun></calls></feed>",
    );
    out
}

fn invoker() -> ScriptedInvoker {
    ScriptedInvoker::new().answer("Get_Quote", vec![ITree::data("quote", "AXML 42.17")])
}

fn ship_raw(client: &NetClient, input: &str) -> u64 {
    let reply = client
        .send_document_chunked(None, "bench.xml", CHUNK, |sink| {
            sink.write_all(input.as_bytes())
        })
        .unwrap();
    assert!(reply.contains("stored"), "{reply}");
    input.len() as u64
}

fn bench(c: &mut Criterion) {
    let chunked_sizes: &[usize] = if smoke_mode() {
        &[MIB, 4 * MIB, 16 * MIB]
    } else {
        &[MIB, 4 * MIB, 16 * MIB, 32 * MIB]
    };

    let mut group = c.benchmark_group("b15_chunked_ship");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(1000));

    let mut reports: Vec<String> = Vec::new();

    // Baseline: one sub-cap document in a single Request frame.
    let single = newspaper_xml(MIB);
    for io in IO_MODES {
        let (server, store, client) = daemon(io, fresh_registry());
        group.throughput(Throughput::Bytes(single.len() as u64));
        group.bench_function(format!("single_1mib_{}", io_tag(io)), |b| {
            b.iter(|| {
                let reply = client.call(black_box(&single)).unwrap();
                black_box(reply.len())
            })
        });
        assert!(store.bytes.load(Ordering::Relaxed) >= single.len() as u64);
        server.shutdown().unwrap();
    }

    // Chunked transport at growing sizes, 4x the frame cap included.
    for &size in chunked_sizes {
        let input = newspaper_xml(size);
        let mib = size / MIB;
        for io in IO_MODES {
            let metrics = fresh_registry();
            let (server, store, client) = daemon(io, metrics.clone());

            // Correctness pass first: one ship with receiver-side
            // accounting captured into the JSON report.
            store.bytes.store(0, Ordering::Relaxed);
            ship_raw(&client, &input);
            let snap = metrics.snapshot();
            assert_eq!(store.bytes.load(Ordering::Relaxed), input.len() as u64);
            assert_eq!(snap.counter("net.chunk.bytes_total"), input.len() as u64);
            assert_eq!(snap.counter("net.chunk.aborts_total"), 0);
            assert_eq!(snap.gauge("net.chunk.reassembly_bytes"), 0);
            reports.push(format!(
                "{{\"id\": \"chunked_{mib}mib_{io}\", \"size_bytes\": {size}, \
                 \"io\": \"{io}\", \"chunk_bytes\": {chunk}, \
                 \"recv_bytes\": {recv}, \"chunk_frames\": {frames}, \
                 \"aborts\": {aborts}, \"reassembly_gauge\": {gauge}, \
                 \"sender_peak_buffer_bytes\": 0}}",
                io = io_tag(io),
                size = input.len(),
                chunk = CHUNK,
                recv = snap.counter("net.chunk.bytes_total"),
                frames = snap.counter("net.chunk.frames_total"),
                aborts = snap.counter("net.chunk.aborts_total"),
                gauge = snap.gauge("net.chunk.reassembly_bytes"),
            ));

            group.throughput(Throughput::Bytes(input.len() as u64));
            group.bench_function(format!("chunked_{mib}mib_{}", io_tag(io)), |b| {
                b.iter(|| black_box(ship_raw(&client, &input)))
            });
            server.shutdown().unwrap();
        }
    }

    // End-to-end: streaming enforcement writing straight into the chunk
    // sink — the sender's peak buffer tracks the call-bearing subtree,
    // not the document.
    let compiled = feed_compiled();
    let feed = feed_xml(4 * MIB);
    for io in IO_MODES {
        let metrics = fresh_registry();
        let (server, _store, client) = daemon(io, metrics.clone());
        let opts = StreamOptions::default();

        let mut peak = 0u64;
        let mut out_bytes = 0u64;
        let reply = client
            .send_document_chunked(None, "feed.xml", CHUNK, |sink| {
                let mut inv = invoker();
                let rep = enforce_stream_to(&compiled, &feed, &opts, &mut inv, sink).map_err(
                    |e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()),
                )?;
                peak = rep.peak_buffer_bytes;
                out_bytes = rep.bytes_out;
                Ok(())
            })
            .unwrap();
        assert!(reply.contains("stored"), "{reply}");
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("net.chunk.bytes_total"), out_bytes);
        assert_eq!(snap.counter("net.chunk.aborts_total"), 0);
        assert_eq!(snap.gauge("net.chunk.reassembly_bytes"), 0);
        assert!(
            peak < wire::DEFAULT_MAX_FRAME as u64 / 4,
            "sender peak buffer {peak} bytes is not bounded"
        );
        reports.push(format!(
            "{{\"id\": \"enforced_chunked_4mib_{io}\", \"size_bytes\": {size}, \
             \"io\": \"{io}\", \"chunk_bytes\": {chunk}, \
             \"recv_bytes\": {recv}, \"chunk_frames\": {frames}, \
             \"aborts\": 0, \"reassembly_gauge\": 0, \
             \"sender_peak_buffer_bytes\": {peak}}}",
            io = io_tag(io),
            size = feed.len(),
            chunk = CHUNK,
            recv = snap.counter("net.chunk.bytes_total"),
            frames = snap.counter("net.chunk.frames_total"),
        ));

        group.throughput(Throughput::Bytes(feed.len() as u64));
        group.bench_function(format!("enforced_chunked_4mib_{}", io_tag(io)), |b| {
            b.iter(|| {
                let reply = client
                    .send_document_chunked(None, "feed.xml", CHUNK, |sink| {
                        let mut inv = invoker();
                        enforce_stream_to(&compiled, black_box(&feed), &opts, &mut inv, sink)
                            .map(|_| ())
                            .map_err(|e| {
                                std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                            })
                    })
                    .unwrap();
                black_box(reply.len())
            })
        });
        server.shutdown().unwrap();
    }

    group.attach_json("ship_reports", format!("[{}]", reports.join(",")));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
