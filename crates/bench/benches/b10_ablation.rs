//! B10: ablations of implementation design choices.
//!
//! * complement minimization before the product (smaller Ā vs extra
//!   minimization cost);
//! * Glushkov-direct DFA vs Thompson + subset construction for
//!   deterministic content models.

use axml_automata::{Dfa, Glushkov, Nfa, Regex};
use axml_bench::wide_instance;
use axml_core::awk::{Awk, AwkLimits};
use axml_core::safe::{complement_of, BuildMode, SafeGame};
use axml_support::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b10_ablation");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));

    // Ablation 1: minimize the complement before the product?
    for n in [8usize, 16] {
        let (compiled, word, target) = wide_instance(n);
        let syms = compiled.alphabet().len();
        group.bench_with_input(BenchmarkId::new("comp_plain", n), &n, |b, _| {
            b.iter(|| {
                let awk =
                    Awk::build(black_box(&word), &compiled, 1, &AwkLimits::default()).unwrap();
                let comp = complement_of(&target, syms);
                black_box(SafeGame::solve(awk, comp, BuildMode::Lazy).stats.nodes)
            })
        });
        group.bench_with_input(BenchmarkId::new("comp_minimized", n), &n, |b, _| {
            b.iter(|| {
                let awk =
                    Awk::build(black_box(&word), &compiled, 1, &AwkLimits::default()).unwrap();
                let comp = complement_of(&target, syms).minimized();
                black_box(SafeGame::solve(awk, comp, BuildMode::Lazy).stats.nodes)
            })
        });
    }

    // Ablation 2: DFA construction for a deterministic content model.
    let mut ab = axml_automata::Alphabet::new();
    let model: String = (0..24)
        .map(|i| format!("(s{i}|t{i})"))
        .collect::<Vec<_>>()
        .join(".");
    let re = Regex::parse(&model, &mut ab).unwrap();
    let syms = ab.len();
    group.bench_function("dfa_via_glushkov", |b| {
        b.iter(|| {
            black_box(
                Glushkov::new(black_box(&re), syms)
                    .to_dfa()
                    .unwrap()
                    .num_states(),
            )
        })
    });
    group.bench_function("dfa_via_thompson_subset", |b| {
        b.iter(|| black_box(Dfa::determinize(&Nfa::thompson(black_box(&re), syms)).num_states()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
