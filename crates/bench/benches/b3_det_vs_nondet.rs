//! B3: complementation cost, deterministic vs non-deterministic content
//! models (Sec. 4: the exponential blow-up only hits non-deterministic
//! regular expressions, which XML Schema forbids).

use axml_bench::{det_family, nondet_family};
use axml_core::safe::complement_of;
use axml_support::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b3_det_vs_nondet");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for n in [2usize, 4, 6, 8, 10, 12] {
        let (det, syms) = det_family(n);
        group.bench_with_input(BenchmarkId::new("deterministic", n), &n, |b, _| {
            b.iter(|| black_box(complement_of(black_box(&det), syms).num_states()))
        });
        let (nondet, syms) = nondet_family(n);
        group.bench_with_input(BenchmarkId::new("nondeterministic", n), &n, |b, _| {
            b.iter(|| black_box(complement_of(black_box(&nondet), syms).num_states()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
