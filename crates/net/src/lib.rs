//! # axml-net — TCP transport for Active XML peers
//!
//! The paper's system (Sec. 7) is a *peer*: a daemon whose Schema
//! Enforcement module intercepts every outbound and inbound message. This
//! crate provides the network substrate that turns the in-process peer of
//! `axml-peer` into such a daemon, using nothing but `std`:
//!
//! * [`wire`] — length-prefixed frames carrying SOAP envelopes, a
//!   versioned handshake, request ids, and typed retryable/non-retryable
//!   [`wire::WireFault`]s (see DESIGN.md §2.1 for the frame layout);
//! * [`server`] — an accept loop feeding a fixed-size worker pool over a
//!   bounded in-flight queue (backpressure by retryable `Busy` faults),
//!   per-connection read/write timeouts, graceful panic-reporting
//!   shutdown; two engines behind one [`server::IoMode`] knob: blocking
//!   reader threads (any transport) or sharded epoll/kqueue readiness
//!   loops ([`frames`] does the partial-read reassembly) for 10k+
//!   connections over TCP;
//! * [`client`] — a pooled connection client with connect/read timeouts,
//!   a total per-call deadline spanning retries, and bounded
//!   retry-with-backoff driven by deterministic jitter from
//!   `axml_support::rng`;
//! * [`transport`] — the pluggable byte-stream layer ([`Transport`] /
//!   [`Acceptor`] / [`Duplex`]): client and server are generic over it,
//!   with real TCP as the default and the deterministic simulator
//!   (`axml-sim`) as the other implementation.
//!
//! The crate is transport only: it moves opaque envelopes and knows
//! nothing about schemas or rewriting. `axml-peer::NetPeer` plugs the
//! enforcement module in as the server's [`server::Handler`].

#![warn(missing_docs)]

pub mod client;
pub mod frames;
mod poll_server;
pub mod server;
pub mod transport;
pub mod wire;

pub use client::{ClientConfig, ClientError, NetClient};
pub use frames::{ChunkAssembler, ChunkProgress, FrameDecoder};
pub use server::{Handler, IoMode, NetServer, ServerConfig, ServerError, ServerStats};
pub use transport::{Acceptor, Duplex, TcpTransport, Transport};
pub use wire::{FaultCode, WireError, WireFault, CAP_CHUNKED, VERSION};
