//! Incremental frame reassembly for the non-blocking poll engine.
//!
//! [`read_frame`](crate::wire::read_frame) owns a blocking stream and can
//! simply loop until a frame is complete. The readiness loop cannot: a
//! socket hands it arbitrary byte slivers — half a header now, three
//! frames and a fragment later — and the loop must bank them and move on.
//! [`FrameDecoder`] is that bank: feed it whatever `read` returned, then
//! drain complete frames.
//!
//! The decoder is **error-equivalent** to `read_frame` by construction
//! (property-tested in `tests/poller_frames.rs` across arbitrary split
//! points):
//!
//! * the type byte is judged only once the *full* 13-byte header has
//!   arrived — a lone garbage byte followed by silence is a stall, not an
//!   `UnknownFrameType`, exactly as with the blocking reader;
//! * an oversized length is rejected (`TooLarge {len, max}`) before one
//!   byte of payload is buffered or allocated;
//! * errors are sticky — after a protocol error the connection is dead
//!   and further feeding keeps returning the same error.
//!
//! Memory stays bounded per connection: the buffer never holds more than
//! one maximum-size frame plus one read's worth of spillover, consumed
//! prefixes are compacted, and an idle decoder releases any oversized
//! scratch back to the allocator.

use crate::wire::{self, Frame, FrameType, WireError, HEADER_LEN};
use axml_support::hash::Fnv64;

/// Buffer capacity above which an *empty* decoder gives memory back.
/// Idle connections (the 10k-scale case) should cost tens of bytes, not
/// the high-water mark of their largest historic frame.
const SHRINK_THRESHOLD: usize = 16 * 1024;

/// An incremental, non-blocking decoder of the 13-byte-header wire frames.
///
/// One per connection. Feed raw socket bytes with [`FrameDecoder::feed`],
/// then call [`FrameDecoder::poll_frame`] until it yields `Ok(None)`.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily).
    pos: usize,
    max_payload: usize,
    /// A protocol error, once hit, is permanent for the connection.
    dead: Option<WireError>,
}

impl FrameDecoder {
    /// A decoder enforcing `max_payload` exactly like `read_frame`.
    pub fn new(max_payload: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            max_payload,
            dead: None,
        }
    }

    /// Banks bytes read off the socket. Cheap; parsing happens in
    /// [`FrameDecoder::poll_frame`].
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.dead.is_some() {
            return;
        }
        // Compact before growing, not after draining: one memmove per
        // read instead of one per frame.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Yields the next complete frame, `Ok(None)` if more bytes are
    /// needed, or the connection-killing protocol error.
    pub fn poll_frame(&mut self) -> Result<Option<Frame>, WireError> {
        if let Some(err) = &self.dead {
            return Err(err.clone());
        }
        let pending = &self.buf[self.pos..];
        if pending.len() < HEADER_LEN {
            self.maybe_shrink();
            return Ok(None);
        }
        let kind = match FrameType::from_byte(pending[0]) {
            Ok(kind) => kind,
            Err(err) => return Err(self.kill(err)),
        };
        let id = u64::from_be_bytes(pending[1..9].try_into().expect("8 header bytes"));
        let len = u32::from_be_bytes(pending[9..13].try_into().expect("4 header bytes")) as usize;
        if len > self.max_payload {
            return Err(self.kill(WireError::TooLarge {
                len,
                max: self.max_payload,
            }));
        }
        if pending.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let payload = pending[HEADER_LEN..HEADER_LEN + len].to_vec();
        self.pos += HEADER_LEN + len;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            self.maybe_shrink();
        }
        Ok(Some(Frame { kind, id, payload }))
    }

    /// Whether bytes of an incomplete frame are pending — the line
    /// between a benign [`WireError::Idle`] and a [`WireError::Stalled`]
    /// peer when a read deadline passes.
    pub fn mid_frame(&self) -> bool {
        self.dead.is_none() && self.pos < self.buf.len()
    }

    /// Bytes currently buffered (unconsumed); feeds the poll engine's
    /// `server.poll.buffer_bytes` gauge.
    pub fn buffered_len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The scratch buffer's current allocation in bytes. Bounded while a
    /// connection idles (see `maybe_shrink`), so 10k parked connections
    /// cost kilobytes each, not the size of their largest past frame.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    fn kill(&mut self, err: WireError) -> WireError {
        self.dead = Some(err.clone());
        self.buf = Vec::new();
        self.pos = 0;
        err
    }

    fn maybe_shrink(&mut self) {
        if self.buf.is_empty() && self.buf.capacity() > SHRINK_THRESHOLD {
            self.buf = Vec::new();
        }
    }
}

/// One in-flight chunked document transfer.
struct Transfer {
    id: u64,
    name: String,
    next_seq: u32,
    buf: Vec<u8>,
    digest: Fnv64,
}

/// What [`ChunkAssembler::accept`] did with a chunk frame.
#[derive(Debug, PartialEq, Eq)]
pub enum ChunkProgress {
    /// The frame advanced an in-flight transfer; more frames expected.
    Pending,
    /// A `DocChunkEnd` verified: the transfer is complete.
    Complete {
        /// Request id carried by every frame of the transfer.
        id: u64,
        /// Document name announced in `DocChunkStart`.
        name: String,
        /// The reassembled, digest-verified document bytes.
        bytes: Vec<u8>,
    },
    /// The frame belonged to a transfer that already faulted and is being
    /// drained; it was discarded without effect.
    Drained,
}

/// Reassembles `DocChunkStart`/`DocChunk`/`DocChunkEnd` sequences into
/// whole documents, shared verbatim by the blocking server, the poll
/// engine, and the sim server so the typed-error taxonomy cannot drift.
///
/// Rules enforced (each violation is a connection-visible typed error):
///
/// * one transfer in flight per connection — a second `DocChunkStart`
///   mid-transfer is [`WireError::Malformed`];
/// * chunks carry consecutive sequence numbers from 0 and the transfer's
///   request id throughout;
/// * the *cumulative* reassembled size is capped — the resulting
///   [`WireError::TooLarge`] reports the running total, not the size of
///   the frame that crossed the line;
/// * `DocChunkEnd` must match the observed chunk count, total byte
///   length, and running FNV-64 digest.
///
/// After an error the failed transfer's buffer is released immediately
/// and the assembler enters a **drain** state for that request id:
/// already-pipelined chunks of the dead transfer are discarded
/// ([`ChunkProgress::Drained`]) until its `DocChunkEnd` passes, after
/// which the connection can host a fresh transfer — this is what makes a
/// client retry on the same pooled connection clean.
pub struct ChunkAssembler {
    max_total: usize,
    transfer: Option<Transfer>,
    drain_id: Option<u64>,
}

impl ChunkAssembler {
    /// An assembler capping cumulative transfer size at `max_total`.
    pub fn new(max_total: usize) -> Self {
        ChunkAssembler {
            max_total,
            transfer: None,
            drain_id: None,
        }
    }

    /// Whether a transfer is in flight — the line between a benign idle
    /// connection and a peer stalled *between* chunk frames, mirroring
    /// [`FrameDecoder::mid_frame`] for stalls inside one frame.
    pub fn active(&self) -> bool {
        self.transfer.is_some()
    }

    /// Bytes currently buffered for reassembly; feeds the
    /// `net.chunk.reassembly_bytes` gauge and the poll engine's
    /// per-connection buffer accounting.
    pub fn buffered_len(&self) -> usize {
        self.transfer.as_ref().map_or(0, |t| t.buf.len())
    }

    /// Releases any partial transfer without entering the drain state —
    /// the connection-teardown path (sticky decoder error, sweep).
    pub fn abort(&mut self) {
        self.transfer = None;
        self.drain_id = None;
    }

    /// Feeds one chunk-family frame. `Err` means the transfer (not the
    /// connection framing) failed: the caller should fault the frame's
    /// request id and keep reading — the assembler drains the remains of
    /// the dead transfer by itself.
    pub fn accept(&mut self, frame: &Frame) -> Result<ChunkProgress, WireError> {
        if self.drain_id == Some(frame.id) {
            // A fresh Start is a retry of the faulted transfer (client
            // retries reuse their request id) — never drain it.
            if frame.kind == FrameType::DocChunkStart {
                self.drain_id = None;
            } else {
                if frame.kind == FrameType::DocChunkEnd {
                    self.drain_id = None;
                }
                return Ok(ChunkProgress::Drained);
            }
        }
        match frame.kind {
            FrameType::DocChunkStart => {
                if let Some(t) = &self.transfer {
                    let prev = t.id;
                    return Err(self.fail(
                        frame.id,
                        WireError::Malformed(format!(
                            "chunk-start for request {} while transfer {prev} is in flight",
                            frame.id
                        )),
                    ));
                }
                let name = match wire::decode_chunk_start(&frame.payload) {
                    Ok(name) => name,
                    Err(e) => return Err(self.fail(frame.id, e)),
                };
                self.transfer = Some(Transfer {
                    id: frame.id,
                    name,
                    next_seq: 0,
                    buf: Vec::new(),
                    digest: Fnv64::new(),
                });
                Ok(ChunkProgress::Pending)
            }
            FrameType::DocChunk => {
                let Some(t) = self.transfer.as_mut() else {
                    return Err(self.fail(
                        frame.id,
                        WireError::Malformed("chunk frame outside a transfer".to_owned()),
                    ));
                };
                if t.id != frame.id {
                    let active = t.id;
                    return Err(self.fail(
                        frame.id,
                        WireError::Malformed(format!(
                            "chunk for request {} inside transfer {active}",
                            frame.id
                        )),
                    ));
                }
                let (seq, data) = match wire::decode_chunk(&frame.payload) {
                    Ok(parts) => parts,
                    Err(e) => return Err(self.fail(frame.id, e)),
                };
                if seq != t.next_seq {
                    let expected = t.next_seq;
                    return Err(self.fail(
                        frame.id,
                        WireError::Malformed(format!(
                            "chunk out of sequence: expected {expected}, got {seq}"
                        )),
                    ));
                }
                // Cumulative cap: report the running total, not this
                // frame's length — a 1 KiB chunk can be the one that
                // pushes a transfer over a 64 MiB cap.
                let total = t.buf.len() + data.len();
                if total > self.max_total {
                    let max = self.max_total;
                    return Err(self.fail(frame.id, WireError::TooLarge { len: total, max }));
                }
                t.next_seq += 1;
                t.digest.update(data);
                t.buf.extend_from_slice(data);
                Ok(ChunkProgress::Pending)
            }
            FrameType::DocChunkEnd => {
                let Some(t) = self.transfer.as_ref() else {
                    return Err(self.fail(
                        frame.id,
                        WireError::Malformed("chunk-end outside a transfer".to_owned()),
                    ));
                };
                if t.id != frame.id {
                    let active = t.id;
                    return Err(self.fail(
                        frame.id,
                        WireError::Malformed(format!(
                            "chunk-end for request {} inside transfer {active}",
                            frame.id
                        )),
                    ));
                }
                let (count, total, digest) = match wire::decode_chunk_end(&frame.payload) {
                    Ok(parts) => parts,
                    Err(e) => return Err(self.fail(frame.id, e)),
                };
                let t = self.transfer.take().expect("checked transfer");
                if count != t.next_seq {
                    let got = t.next_seq;
                    return Err(self.fail(
                        frame.id,
                        WireError::Malformed(format!(
                            "chunk-end declares {count} chunks, received {got}"
                        )),
                    ));
                }
                if total != t.buf.len() as u64 {
                    let got = t.buf.len();
                    return Err(self.fail(
                        frame.id,
                        WireError::Malformed(format!(
                            "chunk-end declares {total} bytes, received {got}"
                        )),
                    ));
                }
                let observed = t.digest.finish();
                if digest != observed {
                    return Err(self.fail(
                        frame.id,
                        WireError::Malformed(format!(
                            "chunk digest mismatch: declared {digest:#018x}, observed {observed:#018x}"
                        )),
                    ));
                }
                Ok(ChunkProgress::Complete {
                    id: t.id,
                    name: t.name,
                    bytes: t.buf,
                })
            }
            _ => Err(self.fail(
                frame.id,
                WireError::Malformed(format!(
                    "frame {:?} is not part of the chunk family",
                    frame.kind
                )),
            )),
        }
    }

    /// Drops the partial transfer, releasing its buffer to the allocator
    /// at once (not on the next accept), and arms draining for `id`.
    fn fail(&mut self, id: u64, err: WireError) -> WireError {
        self.transfer = None;
        self.drain_id = Some(id);
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{self, DEFAULT_MAX_FRAME};

    fn encode(frame: &Frame) -> Vec<u8> {
        let mut buf = Vec::new();
        wire::write_frame(&mut buf, frame).unwrap();
        buf
    }

    #[test]
    fn whole_frame_in_one_feed() {
        let frame = wire::request(42, "<env>hello</env>");
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.feed(&encode(&frame));
        assert_eq!(dec.poll_frame().unwrap(), Some(frame));
        assert_eq!(dec.poll_frame().unwrap(), None);
        assert!(!dec.mid_frame());
        assert_eq!(dec.buffered_len(), 0);
    }

    #[test]
    fn one_byte_dribble() {
        let frame = wire::response(7, "<env>drip</env>");
        let bytes = encode(&frame);
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        for (i, b) in bytes.iter().enumerate() {
            assert_eq!(dec.poll_frame().unwrap(), None, "early frame at byte {i}");
            // Any banked byte short of a full frame counts as mid-frame.
            assert_eq!(dec.mid_frame(), i > 0);
            dec.feed(&[*b]);
        }
        assert_eq!(dec.poll_frame().unwrap(), Some(frame));
        assert!(!dec.mid_frame());
    }

    #[test]
    fn many_frames_one_feed() {
        let frames = [
            wire::hello("alice"),
            wire::request(1, "<a/>"),
            wire::request(2, "<b/>"),
            wire::stats_request(3),
        ];
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&encode(f));
        }
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.feed(&bytes);
        for f in &frames {
            assert_eq!(dec.poll_frame().unwrap().as_ref(), Some(f));
        }
        assert_eq!(dec.poll_frame().unwrap(), None);
    }

    #[test]
    fn unknown_type_only_after_full_header() {
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.feed(&[0x7f]);
        // Blocking-reader parity: a bad first byte alone is not yet an
        // error — the header hasn't arrived.
        assert_eq!(dec.poll_frame().unwrap(), None);
        assert!(dec.mid_frame());
        dec.feed(&[0u8; HEADER_LEN - 1]);
        assert_eq!(dec.poll_frame(), Err(WireError::UnknownFrameType(0x7f)));
        // Sticky.
        dec.feed(&encode(&wire::request(1, "x")));
        assert_eq!(dec.poll_frame(), Err(WireError::UnknownFrameType(0x7f)));
    }

    #[test]
    fn too_large_rejected_at_header() {
        let frame = wire::request(1, &"y".repeat(100));
        let bytes = encode(&frame);
        let mut dec = FrameDecoder::new(10);
        // Header only — the payload never needs to arrive to be refused.
        dec.feed(&bytes[..HEADER_LEN]);
        assert_eq!(
            dec.poll_frame(),
            Err(WireError::TooLarge { len: 100, max: 10 })
        );
    }

    fn chunk_frames_for(id: u64, name: &str, data: &[u8], chunk: usize) -> Vec<Frame> {
        let mut frames = vec![wire::doc_chunk_start(id, name)];
        let mut digest = Fnv64::new();
        let mut seq = 0u32;
        for piece in data.chunks(chunk.max(1)) {
            digest.update(piece);
            frames.push(wire::doc_chunk(id, seq, piece));
            seq += 1;
        }
        frames.push(wire::doc_chunk_end(id, seq, data.len() as u64, digest.finish()));
        frames
    }

    #[test]
    fn assembler_roundtrips_and_verifies_digest() {
        let data = b"<doc>intensional</doc>".to_vec();
        for chunk in [1usize, 3, 7, 64] {
            let mut asm = ChunkAssembler::new(1024);
            let frames = chunk_frames_for(9, "fig1.xml", &data, chunk);
            let last = frames.len() - 1;
            for (i, f) in frames.iter().enumerate() {
                let progress = asm.accept(f).unwrap();
                if i < last {
                    assert_eq!(progress, ChunkProgress::Pending);
                    assert!(asm.active() || i == last);
                } else {
                    assert_eq!(
                        progress,
                        ChunkProgress::Complete {
                            id: 9,
                            name: "fig1.xml".to_owned(),
                            bytes: data.clone(),
                        }
                    );
                }
            }
            assert!(!asm.active());
            assert_eq!(asm.buffered_len(), 0);
        }
    }

    #[test]
    fn assembler_rejects_out_of_sequence_and_drains_the_rest() {
        let mut asm = ChunkAssembler::new(1024);
        asm.accept(&wire::doc_chunk_start(4, "d")).unwrap();
        asm.accept(&wire::doc_chunk(4, 0, b"aa")).unwrap();
        let err = asm.accept(&wire::doc_chunk(4, 2, b"bb")).unwrap_err();
        assert!(matches!(err, WireError::Malformed(ref m) if m.contains("out of sequence")));
        // Buffer released immediately, pipelined remains are drained.
        assert_eq!(asm.buffered_len(), 0);
        assert!(!asm.active());
        assert_eq!(
            asm.accept(&wire::doc_chunk(4, 3, b"cc")).unwrap(),
            ChunkProgress::Drained
        );
        assert_eq!(
            asm.accept(&wire::doc_chunk_end(4, 4, 8, 0)).unwrap(),
            ChunkProgress::Drained
        );
        // After the drained End, the same id can retry cleanly.
        for f in chunk_frames_for(4, "d", b"aabb", 2) {
            asm.accept(&f).unwrap();
        }
    }

    #[test]
    fn assembler_retry_start_clears_drain_state() {
        let mut asm = ChunkAssembler::new(1024);
        asm.accept(&wire::doc_chunk_start(4, "d")).unwrap();
        let _ = asm.accept(&wire::doc_chunk(4, 5, b"x")).unwrap_err();
        // Retry with the *same* request id, Start first: must not be
        // swallowed by the drain state.
        let frames = chunk_frames_for(4, "d", b"payload", 3);
        let last = frames.len() - 1;
        for (i, f) in frames.iter().enumerate() {
            let p = asm.accept(f).unwrap();
            if i == last {
                assert!(matches!(p, ChunkProgress::Complete { .. }));
            }
        }
    }

    #[test]
    fn assembler_too_large_reports_cumulative_length() {
        let mut asm = ChunkAssembler::new(10);
        asm.accept(&wire::doc_chunk_start(1, "d")).unwrap();
        asm.accept(&wire::doc_chunk(1, 0, b"123456")).unwrap();
        let err = asm.accept(&wire::doc_chunk(1, 1, b"78901")).unwrap_err();
        // 6 + 5 = 11 cumulative bytes against a 10-byte cap — not the
        // 5-byte frame that crossed the line.
        assert_eq!(err, WireError::TooLarge { len: 11, max: 10 });
        assert_eq!(asm.buffered_len(), 0);
    }

    #[test]
    fn assembler_rejects_bad_digest_count_and_total() {
        let data = b"abcdef";
        let digest = {
            let mut d = Fnv64::new();
            d.update(data);
            d.finish()
        };
        let cases: [(Frame, &str); 3] = [
            (wire::doc_chunk_end(2, 3, 6, digest), "chunks"),
            (wire::doc_chunk_end(2, 2, 7, digest), "bytes"),
            (wire::doc_chunk_end(2, 2, 6, digest ^ 1), "digest"),
        ];
        for (end, what) in cases {
            let mut asm = ChunkAssembler::new(1024);
            asm.accept(&wire::doc_chunk_start(2, "d")).unwrap();
            asm.accept(&wire::doc_chunk(2, 0, &data[..3])).unwrap();
            asm.accept(&wire::doc_chunk(2, 1, &data[3..])).unwrap();
            let err = asm.accept(&end).unwrap_err();
            assert!(
                matches!(err, WireError::Malformed(_)),
                "{what}: wrong taxonomy {err:?}"
            );
            assert_eq!(asm.buffered_len(), 0, "{what}: buffer retained");
        }
    }

    #[test]
    fn assembler_rejects_orphan_and_nested_frames() {
        let mut asm = ChunkAssembler::new(1024);
        assert!(matches!(
            asm.accept(&wire::doc_chunk(3, 0, b"x")).unwrap_err(),
            WireError::Malformed(_)
        ));
        let mut asm = ChunkAssembler::new(1024);
        asm.accept(&wire::doc_chunk_start(3, "a")).unwrap();
        assert!(matches!(
            asm.accept(&wire::doc_chunk_start(4, "b")).unwrap_err(),
            WireError::Malformed(_)
        ));
        // Abort releases everything without arming the drain state.
        let mut asm = ChunkAssembler::new(1024);
        asm.accept(&wire::doc_chunk_start(5, "c")).unwrap();
        asm.accept(&wire::doc_chunk(5, 0, b"zz")).unwrap();
        asm.abort();
        assert_eq!(asm.buffered_len(), 0);
        assert!(!asm.active());
    }

    #[test]
    fn idle_decoder_releases_large_buffers() {
        let frame = wire::request(1, &"z".repeat(64 * 1024));
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.feed(&encode(&frame));
        assert!(dec.poll_frame().unwrap().is_some());
        assert_eq!(dec.poll_frame().unwrap(), None);
        assert!(
            dec.buf.capacity() <= SHRINK_THRESHOLD,
            "idle decoder retained {} bytes",
            dec.buf.capacity()
        );
    }
}
