//! Incremental frame reassembly for the non-blocking poll engine.
//!
//! [`read_frame`](crate::wire::read_frame) owns a blocking stream and can
//! simply loop until a frame is complete. The readiness loop cannot: a
//! socket hands it arbitrary byte slivers — half a header now, three
//! frames and a fragment later — and the loop must bank them and move on.
//! [`FrameDecoder`] is that bank: feed it whatever `read` returned, then
//! drain complete frames.
//!
//! The decoder is **error-equivalent** to `read_frame` by construction
//! (property-tested in `tests/poller_frames.rs` across arbitrary split
//! points):
//!
//! * the type byte is judged only once the *full* 13-byte header has
//!   arrived — a lone garbage byte followed by silence is a stall, not an
//!   `UnknownFrameType`, exactly as with the blocking reader;
//! * an oversized length is rejected (`TooLarge {len, max}`) before one
//!   byte of payload is buffered or allocated;
//! * errors are sticky — after a protocol error the connection is dead
//!   and further feeding keeps returning the same error.
//!
//! Memory stays bounded per connection: the buffer never holds more than
//! one maximum-size frame plus one read's worth of spillover, consumed
//! prefixes are compacted, and an idle decoder releases any oversized
//! scratch back to the allocator.

use crate::wire::{Frame, FrameType, WireError, HEADER_LEN};

/// Buffer capacity above which an *empty* decoder gives memory back.
/// Idle connections (the 10k-scale case) should cost tens of bytes, not
/// the high-water mark of their largest historic frame.
const SHRINK_THRESHOLD: usize = 16 * 1024;

/// An incremental, non-blocking decoder of the 13-byte-header wire frames.
///
/// One per connection. Feed raw socket bytes with [`FrameDecoder::feed`],
/// then call [`FrameDecoder::poll_frame`] until it yields `Ok(None)`.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily).
    pos: usize,
    max_payload: usize,
    /// A protocol error, once hit, is permanent for the connection.
    dead: Option<WireError>,
}

impl FrameDecoder {
    /// A decoder enforcing `max_payload` exactly like `read_frame`.
    pub fn new(max_payload: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            max_payload,
            dead: None,
        }
    }

    /// Banks bytes read off the socket. Cheap; parsing happens in
    /// [`FrameDecoder::poll_frame`].
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.dead.is_some() {
            return;
        }
        // Compact before growing, not after draining: one memmove per
        // read instead of one per frame.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Yields the next complete frame, `Ok(None)` if more bytes are
    /// needed, or the connection-killing protocol error.
    pub fn poll_frame(&mut self) -> Result<Option<Frame>, WireError> {
        if let Some(err) = &self.dead {
            return Err(err.clone());
        }
        let pending = &self.buf[self.pos..];
        if pending.len() < HEADER_LEN {
            self.maybe_shrink();
            return Ok(None);
        }
        let kind = match FrameType::from_byte(pending[0]) {
            Ok(kind) => kind,
            Err(err) => return Err(self.kill(err)),
        };
        let id = u64::from_be_bytes(pending[1..9].try_into().expect("8 header bytes"));
        let len = u32::from_be_bytes(pending[9..13].try_into().expect("4 header bytes")) as usize;
        if len > self.max_payload {
            return Err(self.kill(WireError::TooLarge {
                len,
                max: self.max_payload,
            }));
        }
        if pending.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let payload = pending[HEADER_LEN..HEADER_LEN + len].to_vec();
        self.pos += HEADER_LEN + len;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            self.maybe_shrink();
        }
        Ok(Some(Frame { kind, id, payload }))
    }

    /// Whether bytes of an incomplete frame are pending — the line
    /// between a benign [`WireError::Idle`] and a [`WireError::Stalled`]
    /// peer when a read deadline passes.
    pub fn mid_frame(&self) -> bool {
        self.dead.is_none() && self.pos < self.buf.len()
    }

    /// Bytes currently buffered (unconsumed); feeds the poll engine's
    /// `server.poll.buffer_bytes` gauge.
    pub fn buffered_len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The scratch buffer's current allocation in bytes. Bounded while a
    /// connection idles (see `maybe_shrink`), so 10k parked connections
    /// cost kilobytes each, not the size of their largest past frame.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    fn kill(&mut self, err: WireError) -> WireError {
        self.dead = Some(err.clone());
        self.buf = Vec::new();
        self.pos = 0;
        err
    }

    fn maybe_shrink(&mut self) {
        if self.buf.is_empty() && self.buf.capacity() > SHRINK_THRESHOLD {
            self.buf = Vec::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{self, DEFAULT_MAX_FRAME};

    fn encode(frame: &Frame) -> Vec<u8> {
        let mut buf = Vec::new();
        wire::write_frame(&mut buf, frame).unwrap();
        buf
    }

    #[test]
    fn whole_frame_in_one_feed() {
        let frame = wire::request(42, "<env>hello</env>");
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.feed(&encode(&frame));
        assert_eq!(dec.poll_frame().unwrap(), Some(frame));
        assert_eq!(dec.poll_frame().unwrap(), None);
        assert!(!dec.mid_frame());
        assert_eq!(dec.buffered_len(), 0);
    }

    #[test]
    fn one_byte_dribble() {
        let frame = wire::response(7, "<env>drip</env>");
        let bytes = encode(&frame);
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        for (i, b) in bytes.iter().enumerate() {
            assert_eq!(dec.poll_frame().unwrap(), None, "early frame at byte {i}");
            // Any banked byte short of a full frame counts as mid-frame.
            assert_eq!(dec.mid_frame(), i > 0);
            dec.feed(&[*b]);
        }
        assert_eq!(dec.poll_frame().unwrap(), Some(frame));
        assert!(!dec.mid_frame());
    }

    #[test]
    fn many_frames_one_feed() {
        let frames = [
            wire::hello("alice"),
            wire::request(1, "<a/>"),
            wire::request(2, "<b/>"),
            wire::stats_request(3),
        ];
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&encode(f));
        }
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.feed(&bytes);
        for f in &frames {
            assert_eq!(dec.poll_frame().unwrap().as_ref(), Some(f));
        }
        assert_eq!(dec.poll_frame().unwrap(), None);
    }

    #[test]
    fn unknown_type_only_after_full_header() {
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.feed(&[0x7f]);
        // Blocking-reader parity: a bad first byte alone is not yet an
        // error — the header hasn't arrived.
        assert_eq!(dec.poll_frame().unwrap(), None);
        assert!(dec.mid_frame());
        dec.feed(&[0u8; HEADER_LEN - 1]);
        assert_eq!(dec.poll_frame(), Err(WireError::UnknownFrameType(0x7f)));
        // Sticky.
        dec.feed(&encode(&wire::request(1, "x")));
        assert_eq!(dec.poll_frame(), Err(WireError::UnknownFrameType(0x7f)));
    }

    #[test]
    fn too_large_rejected_at_header() {
        let frame = wire::request(1, &"y".repeat(100));
        let bytes = encode(&frame);
        let mut dec = FrameDecoder::new(10);
        // Header only — the payload never needs to arrive to be refused.
        dec.feed(&bytes[..HEADER_LEN]);
        assert_eq!(
            dec.poll_frame(),
            Err(WireError::TooLarge { len: 100, max: 10 })
        );
    }

    #[test]
    fn idle_decoder_releases_large_buffers() {
        let frame = wire::request(1, &"z".repeat(64 * 1024));
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.feed(&encode(&frame));
        assert!(dec.poll_frame().unwrap().is_some());
        assert_eq!(dec.poll_frame().unwrap(), None);
        assert!(
            dec.buf.capacity() <= SHRINK_THRESHOLD,
            "idle decoder retained {} bytes",
            dec.buf.capacity()
        );
    }
}
