//! The event-driven connection engine ([`IoMode::Poll`]): sharded
//! epoll/kqueue readiness loops multiplexing thousands of non-blocking
//! TCP connections. DESIGN.md §12 is the architecture document.
//!
//! Shape:
//!
//! * **Shards** — `ServerConfig::shards` threads, each owning one
//!   `axml_support::poll::Poller`, its own connection table, and its own
//!   bounded request queue. The listening socket is registered in *every*
//!   shard's poller (level-triggered), so accepts self-balance: whichever
//!   shard wakes first wins the connection, the rest see `WouldBlock`.
//! * **Connections** — a non-blocking `TcpStream`, a
//!   [`FrameDecoder`](crate::frames::FrameDecoder) reassembling frames
//!   across arbitrary partial reads, and a pending-write buffer. All
//!   socket I/O for a connection happens on its shard thread; workers
//!   never touch sockets.
//! * **Workers** — the ordinary [`worker_loop`] from the threads engine,
//!   partitioned across shards (at least one each). Replies travel back
//!   via the shard's outbox + waker ([`ReplyTo::Shard`]) and are flushed
//!   by the shard loop.
//! * **Fairness** — level-triggered readiness plus a per-event read
//!   budget ([`MAX_READS_PER_EVENT`] × 64 KiB): a fire-hosing connection
//!   yields the shard after its budget, and undrained sockets are simply
//!   re-reported on the next `wait`. No connection can park the shard.
//! * **Deadlines** — the poller wakes at least every ~`read_timeout`/4
//!   (capped to 50 ms) and sweeps: a connection that never completed its
//!   handshake within `read_timeout` is dropped silently (the blocking
//!   reader's `Idle` semantics), one that stalls *mid-frame* gets the
//!   `Timeout` fault and is closed (`Stalled` semantics), and one whose
//!   pending writes make no progress for `write_timeout` is dropped.
//!
//! Fault taxonomy, reply bytes, and the
//! `requests_total = responses_ok_total + faults_total` accounting
//! identity are kept byte-for-byte identical to the threads engine —
//! `tests/net_exchange.rs` runs every scenario over both engines and
//! asserts exactly that. Two extra gauges are poll-specific:
//! `server.poll.connections` and `server.poll.buffer_bytes` (the
//! bounded-memory witness for the 10k-connection smoke test).

use crate::frames::{ChunkAssembler, ChunkProgress, FrameDecoder};
use crate::server::{worker_loop, Job, ReplyTo, ServerError, Shared, Work};
use crate::wire::{self, FaultCode, Frame, FrameType, WireError, WireFault};
use axml_support::poll::{Event, Interest, Poller, Waker};
use axml_support::sync::channel::{bounded, TrySendError};
use axml_support::sync::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The token every shard registers the shared listener under.
/// (`u64::MAX` itself is the poller's reserved waker token.)
const LISTEN_TOKEN: u64 = u64::MAX - 1;

/// How many 64 KiB reads one readiness event may consume before the
/// connection yields the shard to its neighbours.
const MAX_READS_PER_EVENT: usize = 16;

/// Shard-level read scratch. One per shard, not per connection — idle
/// connections cost only their (shrunk) decoder and `Conn` bookkeeping.
const SCRATCH_LEN: usize = 64 * 1024;

/// Retained-capacity bound for a drained write buffer.
const OUT_SHRINK: usize = 64 * 1024;

/// A shard's cross-thread face: where workers post finished replies.
pub(crate) struct ShardHandle {
    outbox: Mutex<Vec<(u64, Frame)>>,
    waker: Waker,
}

impl ShardHandle {
    /// Posts `frame` for connection `conn` and wakes the shard loop. If
    /// the connection has closed meanwhile the shard drops the frame —
    /// same outcome as the threads engine writing to a gone client.
    pub(crate) fn deliver(&self, conn: u64, frame: Frame) {
        self.outbox.lock().push((conn, frame));
        self.waker.wake();
    }
}

/// The running poll engine: shard threads + their worker pools.
pub(crate) struct PollEngine {
    shard_handles: Vec<Arc<ShardHandle>>,
    shards: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    job_txs: Vec<axml_support::sync::channel::Sender<Job>>,
}

impl PollEngine {
    /// Binds `addr`, spins up the shards and their workers.
    pub(crate) fn bind(
        addr: SocketAddr,
        shared: &Arc<Shared>,
    ) -> Result<(PollEngine, SocketAddr), ServerError> {
        let listener = TcpListener::bind(addr).map_err(ServerError::Io)?;
        listener.set_nonblocking(true).map_err(ServerError::Io)?;
        let local = listener.local_addr().map_err(ServerError::Io)?;
        let listener = Arc::new(listener);
        let nshards = shared.config.shards.max(1);
        let total_workers = shared.config.workers.max(1);
        let queue = shared.config.queue.max(1);
        let mut engine = PollEngine {
            shard_handles: Vec::with_capacity(nshards),
            shards: Vec::with_capacity(nshards),
            workers: Vec::new(),
            job_txs: Vec::with_capacity(nshards),
        };
        for s in 0..nshards {
            let poller = Poller::new().map_err(ServerError::Io)?;
            let handle = Arc::new(ShardHandle {
                outbox: Mutex::new(Vec::new()),
                waker: poller.waker(),
            });
            let (job_tx, job_rx) = bounded::<Job>(queue);
            let job_rx = Arc::new(Mutex::new(job_rx));
            // Spread the worker pool across shards, at least one each.
            let per = (total_workers / nshards + usize::from(s < total_workers % nshards)).max(1);
            for w in 0..per {
                let shared = Arc::clone(shared);
                let job_rx = Arc::clone(&job_rx);
                engine.workers.push(
                    std::thread::Builder::new()
                        .name(format!("axml-poll-worker-{s}-{w}"))
                        .spawn(move || worker_loop(&shared, &job_rx))
                        .expect("spawn worker thread"),
                );
            }
            let shard_thread = {
                let listener = Arc::clone(&listener);
                let handle = Arc::clone(&handle);
                let shared = Arc::clone(shared);
                let job_tx = job_tx.clone();
                std::thread::Builder::new()
                    .name(format!("axml-poll-shard-{s}"))
                    .spawn(move || shard_loop(&listener, &poller, &handle, &shared, &job_tx))
                    .expect("spawn shard thread")
            };
            engine.shard_handles.push(handle);
            engine.shards.push(shard_thread);
            engine.job_txs.push(job_tx);
        }
        Ok((engine, local))
    }

    /// Deterministic shutdown: wake + join every shard (their sockets
    /// close with them), then close the queues and join every worker.
    /// The caller has already raised the shared stop flag.
    pub(crate) fn stop(&mut self, note: &mut dyn FnMut(std::thread::Result<()>)) {
        for h in &self.shard_handles {
            h.waker.wake();
        }
        for s in self.shards.drain(..) {
            note(s.join());
        }
        // The shards' sender clones died with their threads; dropping
        // ours closes each queue, ending the workers once drained.
        self.job_txs.clear();
        for w in self.workers.drain(..) {
            note(w.join());
        }
    }
}

/// One connection's state machine. All fields are owned by the shard
/// thread; nothing here is shared.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Chunked-transfer reassembly state (one transfer in flight max).
    assembler: ChunkAssembler,
    /// Encoded frames awaiting the socket; `out_pos` is the flushed
    /// prefix.
    out: Vec<u8>,
    out_pos: usize,
    handshaken: bool,
    /// Close once `out` is flushed (fault-then-close paths).
    close_after_flush: bool,
    /// Whether the poller registration currently includes write interest.
    want_write: bool,
    /// Marked for removal; swept at the end of the loop iteration.
    dead: bool,
    /// Last byte received — the idle/stall deadline anchor, matching the
    /// blocking reader's per-`read` timeout semantics (a slow dribbler
    /// that keeps sending is never a stall).
    last_activity: Instant,
    /// Last write progress — anchors the `write_timeout` deadline.
    last_write_progress: Instant,
}

impl Conn {
    fn new(stream: TcpStream, max_frame: usize, max_doc: usize, now: Instant) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::new(max_frame),
            assembler: ChunkAssembler::new(max_doc),
            out: Vec::new(),
            out_pos: 0,
            handshaken: false,
            close_after_flush: false,
            want_write: false,
            dead: false,
            last_activity: now,
            last_write_progress: now,
        }
    }

    fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

fn shard_loop(
    listener: &Arc<TcpListener>,
    poller: &Poller,
    handle: &Arc<ShardHandle>,
    shared: &Arc<Shared>,
    job_tx: &axml_support::sync::channel::Sender<Job>,
) {
    let metrics = &shared.metrics;
    let read_timeout = shared.config.read_timeout;
    let write_timeout = shared.config.write_timeout;
    // The wait timeout doubles as the deadline-sweep tick: fine enough
    // that a stall is detected within ~1.25 × read_timeout, coarse
    // enough that 10k idle connections cost one sweep per 50 ms.
    let tick = (read_timeout / 4)
        .min(Duration::from_millis(50))
        .max(Duration::from_millis(5));
    if poller
        .register(listener.as_fd(), LISTEN_TOKEN, Interest::READ)
        .is_err()
    {
        return;
    }
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut events: Vec<Event> = Vec::new();
    let mut scratch = vec![0u8; SCRATCH_LEN];
    let mut next_token: u64 = 0;
    let mut reported_bytes: i64 = 0;
    let mut reported_reassembly: i64 = 0;

    while !shared.stop.load(Ordering::SeqCst) {
        let _ = poller.wait(&mut events, Some(tick));
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let now = Instant::now();
        for i in 0..events.len() {
            let ev = events[i];
            if ev.token == LISTEN_TOKEN {
                accept_ready(listener, poller, shared, &mut conns, &mut next_token, now);
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.token) else {
                continue;
            };
            if ev.readable && !conn.dead {
                on_readable(conn, ev.token, shared, job_tx, handle, &mut scratch, now);
            }
            if !conn.dead {
                try_flush(conn, now);
            }
            if !conn.dead {
                update_interest(conn, ev.token, poller);
            }
        }
        // Publish reassembly releases *before* any worker reply can
        // flush: a sender observing its DocChunkEnd response must never
        // see the gauge still holding the completed transfer. (The
        // threads engine syncs per-frame ahead of dispatch; this is the
        // readiness-loop equivalent of that ordering.)
        let reassembly: i64 = conns.values().map(|c| c.assembler.buffered_len() as i64).sum();
        metrics.chunk_reassembly.add(reassembly - reported_reassembly);
        reported_reassembly = reassembly;
        // Worker replies: append to the owning connection's buffer.
        let pending = std::mem::take(&mut *handle.outbox.lock());
        for (token, frame) in pending {
            if let Some(conn) = conns.get_mut(&token) {
                if !conn.dead {
                    enqueue(conn, &frame);
                    try_flush(conn, now);
                    if !conn.dead {
                        update_interest(conn, token, poller);
                    }
                }
            }
        }
        // Deadline sweep.
        for (token, conn) in conns.iter_mut() {
            if conn.dead {
                continue;
            }
            if conn.pending_out() > 0
                && now.duration_since(conn.last_write_progress) > write_timeout
            {
                // The peer stopped draining its socket; drop it.
                conn.dead = true;
                continue;
            }
            if conn.close_after_flush {
                continue; // already fated, just waiting on the flush
            }
            if !conn.handshaken {
                if now.duration_since(conn.last_activity) > read_timeout {
                    // Never sent its handshake: silent drop, exactly the
                    // blocking reader's Idle path.
                    conn.dead = true;
                }
                continue;
            }
            if (conn.decoder.mid_frame() || conn.assembler.active())
                && now.duration_since(conn.last_activity) > read_timeout
            {
                // Stalled mid-frame (the stream is no longer framed) or
                // quiet inside an open chunk transfer: Timeout fault,
                // then close — same taxonomy as the blocking reader.
                shared.stats.faulted.fetch_add(1, Ordering::Relaxed);
                metrics.fault();
                metrics.timeouts.inc();
                let msg = if conn.decoder.mid_frame() {
                    "read timed out mid-frame"
                } else {
                    "read timed out mid-chunk-transfer"
                };
                let f = WireFault::new(FaultCode::Timeout, msg);
                enqueue(conn, &wire::fault(0, &f));
                conn.close_after_flush = true;
                try_flush(conn, now);
                if !conn.dead {
                    update_interest(conn, *token, poller);
                }
            }
        }
        // Sweep the dead and republish the bounded-memory gauges.
        conns.retain(|_, conn| {
            if conn.dead {
                let _ = poller.deregister(conn.stream.as_fd());
                metrics.poll_connections.sub(1);
                if conn.assembler.active() {
                    // The connection died mid-transfer: account the
                    // abandoned reassembly (threads-engine parity).
                    metrics.chunk_aborts.inc();
                }
                false
            } else {
                true
            }
        });
        let total: i64 = conns
            .values()
            .map(|c| {
                (c.decoder.buffered_len() + c.assembler.buffered_len() + c.pending_out()) as i64
            })
            .sum();
        metrics.poll_buffer_bytes.add(total - reported_bytes);
        reported_bytes = total;
        let reassembly: i64 = conns.values().map(|c| c.assembler.buffered_len() as i64).sum();
        metrics.chunk_reassembly.add(reassembly - reported_reassembly);
        reported_reassembly = reassembly;
    }

    // Shutdown: connections die with the shard. Idle peers see a plain
    // close (threads-engine parity: readers return silently on stop).
    metrics.poll_buffer_bytes.add(-reported_bytes);
    metrics.chunk_reassembly.add(-reported_reassembly);
    for (_, conn) in conns.drain() {
        let _ = poller.deregister(conn.stream.as_fd());
        metrics.poll_connections.sub(1);
        if conn.assembler.active() {
            metrics.chunk_aborts.inc();
        }
    }
}

fn accept_ready(
    listener: &TcpListener,
    poller: &Poller,
    shared: &Arc<Shared>,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    now: Instant,
) {
    loop {
        match listener.accept() {
            Ok((stream, _addr)) => {
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue; // stream drops, connection resets
                }
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                shared.metrics.connections.inc();
                let token = *next_token;
                *next_token += 1;
                if poller
                    .register(stream.as_fd(), token, Interest::READ)
                    .is_err()
                {
                    continue;
                }
                shared.metrics.poll_connections.add(1);
                conns.insert(
                    token,
                    Conn::new(stream, shared.config.max_frame, shared.config.max_doc, now),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

fn on_readable(
    conn: &mut Conn,
    token: u64,
    shared: &Arc<Shared>,
    job_tx: &axml_support::sync::channel::Sender<Job>,
    handle: &Arc<ShardHandle>,
    scratch: &mut [u8],
    now: Instant,
) {
    for _ in 0..MAX_READS_PER_EVENT {
        match conn.stream.read(scratch) {
            Ok(0) => {
                // EOF. Clean close between frames is silent (`Closed`
                // parity); mid-frame it is the blocking reader's
                // UnexpectedEof → BadFrame fault path. Either way the
                // connection is done.
                if conn.handshaken
                    && conn.decoder.mid_frame()
                    && !shared.stop.load(Ordering::SeqCst)
                {
                    shared.stats.faulted.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.fault();
                    let e = WireError::Io(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame".to_owned(),
                    );
                    let f = WireFault::new(FaultCode::BadFrame, e.to_string());
                    enqueue(conn, &wire::fault(0, &f));
                    try_flush(conn, now);
                }
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.last_activity = now;
                conn.decoder.feed(&scratch[..n]);
                drain_frames(conn, shared, job_tx, handle, token);
                if conn.dead || conn.close_after_flush {
                    return;
                }
                if n < scratch.len() {
                    return; // socket drained
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    // Budget exhausted: leftover socket bytes re-report on the next
    // wait (level-triggered), after the other connections get a turn.
}

/// The post-read state machine — the poll engine's `serve_frames`. Every
/// branch mirrors the threads engine's metric and fault sequence
/// exactly; divergence here breaks the transport-matrix suite.
fn drain_frames(
    conn: &mut Conn,
    shared: &Arc<Shared>,
    job_tx: &axml_support::sync::channel::Sender<Job>,
    handle: &Arc<ShardHandle>,
    token: u64,
) {
    let metrics = &shared.metrics;
    loop {
        let frame = match conn.decoder.poll_frame() {
            Ok(Some(f)) => f,
            Ok(None) => return,
            Err(e) => {
                if !conn.handshaken {
                    // The blocking reader drops pre-handshake protocol
                    // errors silently.
                    conn.dead = true;
                    return;
                }
                match e {
                    WireError::TooLarge { len, max } => {
                        shared.stats.faulted.fetch_add(1, Ordering::Relaxed);
                        metrics.fault();
                        metrics.too_large.inc();
                        metrics.frame_bytes.observe(len as u64);
                        let f = WireFault::new(
                            FaultCode::TooLarge,
                            format!("{len}-byte payload exceeds the {max}-byte cap"),
                        );
                        enqueue(conn, &wire::fault(0, &f));
                    }
                    other => {
                        if !shared.stop.load(Ordering::SeqCst) {
                            shared.stats.faulted.fetch_add(1, Ordering::Relaxed);
                            metrics.fault();
                            let f = WireFault::new(FaultCode::BadFrame, other.to_string());
                            enqueue(conn, &wire::fault(0, &f));
                        }
                    }
                }
                if conn.assembler.active() {
                    // The decoder error is sticky and the connection is
                    // fated: release the partially-assembled document now
                    // rather than holding it until the flush completes.
                    conn.assembler.abort();
                    metrics.chunk_aborts.inc();
                }
                conn.close_after_flush = true;
                return;
            }
        };
        if !conn.handshaken {
            handshake_frame(conn, &frame, shared);
            if conn.dead || conn.close_after_flush {
                return;
            }
            continue;
        }
        metrics.frame_bytes.observe(frame.payload.len() as u64);
        if frame.kind == FrameType::StatsRequest {
            // Answered inline from the shard loop: scrapes must work
            // even when every worker queue is saturated, and they stay
            // out of the request accounting.
            let snapshot = shared.config.metrics.snapshot().to_json();
            enqueue(conn, &wire::stats_response(frame.id, &snapshot));
            continue;
        }
        if shared.stop.load(Ordering::SeqCst) {
            let f = WireFault::new(FaultCode::Shutdown, "server is shutting down").retryable();
            enqueue(conn, &wire::fault(frame.id, &f));
            conn.close_after_flush = true;
            return;
        }
        let work = if matches!(
            frame.kind,
            FrameType::DocChunkStart | FrameType::DocChunk | FrameType::DocChunkEnd
        ) {
            metrics.chunk_frames.inc();
            if frame.kind == FrameType::DocChunk {
                metrics
                    .chunk_bytes
                    .add(frame.payload.len().saturating_sub(4) as u64);
            }
            match conn.assembler.accept(&frame) {
                Ok(ChunkProgress::Pending) | Ok(ChunkProgress::Drained) => continue,
                Ok(ChunkProgress::Complete { name, bytes, .. }) => {
                    match String::from_utf8(bytes) {
                        Ok(text) => Work::Document { name, text },
                        Err(_) => {
                            shared.stats.faulted.fetch_add(1, Ordering::Relaxed);
                            metrics.fault();
                            metrics.chunk_aborts.inc();
                            let f = WireFault::new(
                                FaultCode::Client,
                                "chunked document is not UTF-8",
                            );
                            enqueue(conn, &wire::fault(frame.id, &f));
                            continue;
                        }
                    }
                }
                Err(e) => {
                    // The transfer is dead but the stream is still framed:
                    // fault the transfer's request id and keep serving —
                    // the assembler drains the pipelined remains itself.
                    shared.stats.faulted.fetch_add(1, Ordering::Relaxed);
                    metrics.fault();
                    metrics.chunk_aborts.inc();
                    let f = match e {
                        WireError::TooLarge { len, max } => {
                            metrics.too_large.inc();
                            metrics.frame_bytes.observe(len as u64);
                            WireFault::new(
                                FaultCode::TooLarge,
                                format!(
                                    "chunked transfer of {len} cumulative bytes exceeds the {max}-byte cap"
                                ),
                            )
                        }
                        other => WireFault::new(FaultCode::BadFrame, other.to_string()),
                    };
                    enqueue(conn, &wire::fault(frame.id, &f));
                    continue;
                }
            }
        } else if frame.kind != FrameType::Request {
            shared.stats.faulted.fetch_add(1, Ordering::Relaxed);
            metrics.fault();
            let f = WireFault::new(FaultCode::BadFrame, "expected a Request frame");
            enqueue(conn, &wire::fault(frame.id, &f));
            continue;
        } else {
            match wire::decode_envelope(&frame.payload) {
                Ok(e) => Work::Envelope(e),
                Err(e) => {
                    shared.stats.faulted.fetch_add(1, Ordering::Relaxed);
                    metrics.fault();
                    let f = WireFault::new(FaultCode::Client, e.to_string());
                    enqueue(conn, &wire::fault(frame.id, &f));
                    continue;
                }
            }
        };
        let job = Job {
            reply: ReplyTo::Shard {
                shard: Arc::clone(handle),
                conn: token,
            },
            id: frame.id,
            work,
        };
        // Count the slot before the job becomes visible to workers (see
        // the threads engine for why the order matters).
        metrics.queue_depth.add(1);
        match job_tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(job)) => {
                // Backpressure: reject retryably instead of queueing.
                metrics.queue_depth.sub(1);
                shared.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                metrics.fault();
                metrics.busy.inc();
                let f = WireFault::new(FaultCode::Busy, "in-flight request queue is full")
                    .retryable();
                enqueue(conn, &wire::fault(job.id, &f));
            }
            Err(TrySendError::Disconnected(job)) => {
                metrics.queue_depth.sub(1);
                shared.stats.faulted.fetch_add(1, Ordering::Relaxed);
                metrics.fault();
                let f = WireFault::new(FaultCode::Shutdown, "server is shutting down").retryable();
                enqueue(conn, &wire::fault(job.id, &f));
                conn.close_after_flush = true;
                return;
            }
        }
    }
}

/// First-frame handling: the versioned handshake, byte-identical to the
/// threads engine's `handshake`.
fn handshake_frame(conn: &mut Conn, frame: &Frame, shared: &Arc<Shared>) {
    if frame.kind != FrameType::Hello {
        let f = WireFault::new(FaultCode::BadFrame, "expected Hello to open the connection");
        enqueue(conn, &wire::fault(frame.id, &f));
        conn.close_after_flush = true;
        return;
    }
    match wire::decode_hello(&frame.payload) {
        Ok((version, _peer)) if version == wire::VERSION => {
            enqueue(
                conn,
                &wire::welcome_with(&shared.config.name, wire::CAP_CHUNKED),
            );
            conn.handshaken = true;
        }
        Ok((version, _)) => {
            let f = WireFault::new(
                FaultCode::Version,
                format!("server speaks version {}, client {version}", wire::VERSION),
            );
            enqueue(conn, &wire::fault(0, &f));
            conn.close_after_flush = true;
        }
        Err(e) => {
            let f = WireFault::new(FaultCode::BadFrame, format!("bad Hello: {e}"));
            enqueue(conn, &wire::fault(0, &f));
            conn.close_after_flush = true;
        }
    }
}

fn enqueue(conn: &mut Conn, frame: &Frame) {
    // Writing to a Vec only fails for >u32 payloads, which the server
    // never produces.
    let _ = wire::write_frame(&mut conn.out, frame);
}

fn try_flush(conn: &mut Conn, now: Instant) {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.out_pos += n;
                conn.last_write_progress = now;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    if conn.out_pos == conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
        if conn.out.capacity() > OUT_SHRINK {
            conn.out = Vec::new();
        }
        if conn.close_after_flush {
            conn.dead = true;
        }
    }
}

/// Syncs the poller registration with whether the connection has bytes
/// to write. Level-triggered write interest on an idle socket would
/// busy-spin the shard, so it is armed only while `out` is non-empty.
fn update_interest(conn: &mut Conn, token: u64, poller: &Poller) {
    let want = conn.pending_out() > 0;
    if want != conn.want_write
        && poller
            .modify(
                conn.stream.as_fd(),
                token,
                if want {
                    Interest::READ_WRITE
                } else {
                    Interest::READ
                },
            )
            .is_ok()
    {
        conn.want_write = want;
    }
}

#[cfg(test)]
mod tests {
    use crate::server::{Handler, IoMode, NetServer, ServerConfig};
    use crate::wire::{self, FaultCode, FrameType, WireFault};
    use std::io::{BufReader, Write as _};
    use std::net::TcpStream;
    use std::sync::Arc;
    use std::time::Duration;

    fn poll_config() -> ServerConfig {
        ServerConfig {
            io: IoMode::Poll,
            ..ServerConfig::default()
        }
    }

    fn echo_server(config: ServerConfig) -> NetServer {
        let handler: Arc<dyn Handler> = Arc::new(|_id: u64, envelope: &str| {
            if envelope == "boom" {
                Err(WireFault::new(FaultCode::Server, "boom requested"))
            } else {
                Ok(format!("echo:{envelope}"))
            }
        });
        NetServer::bind("127.0.0.1:0", handler, config).unwrap()
    }

    fn dial(server: &NetServer) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        wire::set_stream_timeouts(
            &stream,
            Some(Duration::from_secs(5)),
            Some(Duration::from_secs(5)),
        )
        .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (reader, stream)
    }

    fn shake(reader: &mut BufReader<TcpStream>, stream: &mut TcpStream) {
        wire::write_frame(stream, &wire::hello("test-client")).unwrap();
        let back = wire::read_frame(reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Welcome);
        let (v, name) = wire::decode_welcome(&back.payload).unwrap();
        assert_eq!(v, wire::VERSION);
        assert_eq!(name, "axml-peer");
    }

    #[test]
    fn poll_engine_serves_requests_and_faults() {
        let server = echo_server(poll_config());
        let (mut reader, mut stream) = dial(&server);
        shake(&mut reader, &mut stream);
        wire::write_frame(&mut stream, &wire::request(1, "hi")).unwrap();
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Response);
        assert_eq!(back.id, 1);
        assert_eq!(wire::decode_envelope(&back.payload).unwrap(), "echo:hi");
        wire::write_frame(&mut stream, &wire::request(2, "boom")).unwrap();
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Fault);
        let f = wire::decode_fault(&back.payload).unwrap();
        assert_eq!(f.code, FaultCode::Server);
        server.shutdown().unwrap();
    }

    #[test]
    fn poll_engine_stalled_writer_gets_timeout_fault() {
        let server = echo_server(ServerConfig {
            read_timeout: Duration::from_millis(50),
            ..poll_config()
        });
        let (mut reader, mut stream) = dial(&server);
        shake(&mut reader, &mut stream);
        // Half a header, then silence.
        stream.write_all(&[0x03, 0, 0, 0]).unwrap();
        stream.flush().unwrap();
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Fault);
        let f = wire::decode_fault(&back.payload).unwrap();
        assert_eq!(f.code, FaultCode::Timeout);
        server.shutdown().unwrap();
    }

    #[test]
    fn poll_engine_single_shard_and_many_shards_both_serve() {
        for shards in [1, 4] {
            let server = echo_server(ServerConfig {
                shards,
                ..poll_config()
            });
            let (mut reader, mut stream) = dial(&server);
            shake(&mut reader, &mut stream);
            for i in 0..5 {
                wire::write_frame(&mut stream, &wire::request(i, "ping")).unwrap();
                let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
                assert_eq!(back.id, i);
                assert_eq!(back.kind, FrameType::Response);
            }
            assert_eq!(
                server
                    .stats()
                    .served
                    .load(std::sync::atomic::Ordering::Relaxed),
                5
            );
            server.shutdown().unwrap();
        }
    }

    struct StoreDoc;

    impl Handler for StoreDoc {
        fn handle(&self, _id: u64, envelope: &str) -> Result<String, WireFault> {
            Ok(format!("echo:{envelope}"))
        }
        fn handle_document(
            &self,
            _id: u64,
            name: &str,
            text: &str,
        ) -> Result<String, WireFault> {
            Ok(format!("stored:{name}:{}", text.len()))
        }
    }

    fn chunk_frames(id: u64, name: &str, data: &[u8], chunk: usize) -> Vec<wire::Frame> {
        let mut digest = axml_support::hash::Fnv64::new();
        let mut frames = vec![wire::doc_chunk_start(id, name)];
        let mut seq = 0u32;
        for piece in data.chunks(chunk) {
            digest.update(piece);
            frames.push(wire::doc_chunk(id, seq, piece));
            seq += 1;
        }
        frames.push(wire::doc_chunk_end(id, seq, data.len() as u64, digest.finish()));
        frames
    }

    #[test]
    fn poll_engine_serves_chunked_transfers() {
        let server = NetServer::bind("127.0.0.1:0", Arc::new(StoreDoc), poll_config()).unwrap();
        let (mut reader, mut stream) = dial(&server);
        wire::write_frame(&mut stream, &wire::hello_with("test-client", wire::CAP_CHUNKED))
            .unwrap();
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Welcome);
        let (_, _, caps) = wire::decode_welcome_caps(&back.payload).unwrap();
        assert_ne!(caps & wire::CAP_CHUNKED, 0);
        let doc = "<doc>".to_string() + &"x".repeat(2000) + "</doc>";
        for f in chunk_frames(11, "big.xml", doc.as_bytes(), 97) {
            wire::write_frame(&mut stream, &f).unwrap();
        }
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Response);
        assert_eq!(back.id, 11);
        assert_eq!(
            wire::decode_envelope(&back.payload).unwrap(),
            format!("stored:big.xml:{}", doc.len())
        );
        server.shutdown().unwrap();
    }

    #[test]
    fn poll_engine_chunk_fault_keeps_the_connection_serving() {
        let server = NetServer::bind("127.0.0.1:0", Arc::new(StoreDoc), poll_config()).unwrap();
        let (mut reader, mut stream) = dial(&server);
        shake(&mut reader, &mut stream);
        // Out-of-sequence chunk: typed BadFrame on the transfer's id.
        wire::write_frame(&mut stream, &wire::doc_chunk_start(3, "d")).unwrap();
        wire::write_frame(&mut stream, &wire::doc_chunk(3, 5, b"zz")).unwrap();
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Fault);
        assert_eq!(back.id, 3);
        let f = wire::decode_fault(&back.payload).unwrap();
        assert_eq!(f.code, FaultCode::BadFrame);
        assert!(f.message.contains("out of sequence"));
        // Same connection still serves ordinary requests...
        wire::write_frame(&mut stream, &wire::request(4, "hi")).unwrap();
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Response);
        assert_eq!(back.id, 4);
        // ...and a fresh transfer.
        for f in chunk_frames(5, "ok.xml", b"<ok/>", 2) {
            wire::write_frame(&mut stream, &f).unwrap();
        }
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Response);
        assert_eq!(back.id, 5);
        server.shutdown().unwrap();
    }

    #[test]
    fn poll_engine_stall_inside_chunk_transfer_times_out() {
        let server = NetServer::bind(
            "127.0.0.1:0",
            Arc::new(StoreDoc),
            ServerConfig {
                read_timeout: Duration::from_millis(50),
                ..poll_config()
            },
        )
        .unwrap();
        let (mut reader, mut stream) = dial(&server);
        shake(&mut reader, &mut stream);
        wire::write_frame(&mut stream, &wire::doc_chunk_start(9, "stall")).unwrap();
        wire::write_frame(&mut stream, &wire::doc_chunk(9, 0, b"abc")).unwrap();
        stream.flush().unwrap();
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Fault);
        let f = wire::decode_fault(&back.payload).unwrap();
        assert_eq!(f.code, FaultCode::Timeout);
        assert!(f.message.contains("mid-chunk-transfer"));
        server.shutdown().unwrap();
    }

    #[test]
    fn poll_engine_pipelines_requests_from_one_connection() {
        let server = echo_server(poll_config());
        let (mut reader, mut stream) = dial(&server);
        shake(&mut reader, &mut stream);
        // Fire a burst without reading, then collect: replies may be
        // reordered across workers but every id must come back once.
        for i in 0..16u64 {
            wire::write_frame(&mut stream, &wire::request(i, &format!("m{i}"))).unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..16 {
            let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
            assert_eq!(back.kind, FrameType::Response);
            assert!(seen.insert(back.id));
        }
        server.shutdown().unwrap();
    }
}
