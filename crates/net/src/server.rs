//! The peer daemon: a concurrent server for the wire protocol.
//!
//! The daemon ships with **two connection engines** behind one config
//! knob ([`ServerConfig::io`]); both speak the same wire protocol, emit
//! the same fault taxonomy, and publish the same metrics:
//!
//! * [`IoMode::Threads`] (the default, and this module) — one blocking
//!   reader thread per connection over a fixed worker pool. Simple, and
//!   works over any [`Transport`] including the simulator's in-memory
//!   network.
//! * [`IoMode::Poll`] (`poll_server`, DESIGN.md §12) — an event-driven
//!   readiness loop (epoll/kqueue via `axml_support::poll`): a few shard
//!   threads multiplex thousands of non-blocking TCP connections. The
//!   scaling engine; TCP only.
//!
//! Threads-engine architecture (all plain `std` threads):
//!
//! * one **accept thread** polls the (non-blocking) [`Acceptor`] and
//!   spawns a lightweight **reader thread** per connection;
//! * each reader performs the versioned handshake, then decodes `Request`
//!   frames and pushes jobs into a **bounded in-flight queue** — when the
//!   queue is full the reader immediately answers a retryable
//!   [`FaultCode::Busy`] fault instead of blocking (backpressure);
//! * a **fixed-size worker pool** drains the queue, runs the
//!   application-level [`Handler`] (for an Active XML peer: decode the
//!   SOAP envelope, run the Schema Enforcement module, encode the reply),
//!   and writes the `Response`/`Fault` frame back through the
//!   connection's shared writer — so one connection can have several
//!   requests in flight and replies may be pipelined out of order;
//! * [`NetServer::shutdown`] is **graceful and deterministic**: it stops
//!   accepting, unblocks and joins every reader (or poller shard),
//!   drains-and-joins every worker (bounded wait), and reports any
//!   worker panic as an error instead of leaking threads.
//!
//! The threads engine is generic over [`Transport`]: [`NetServer::bind`]
//! listens on real TCP, [`NetServer::bind_with`] on anything implementing
//! the trait — the connection handling, backpressure and shutdown logic
//! are identical either way. (`bind_with` always runs the threads engine:
//! simulated transports hand out opaque byte streams, not pollable fds.)
//!
//! Per-connection read/write timeouts bound every blocking read or write:
//! an idle connection is kept (pooled clients stay connected), but a peer
//! that stalls *mid-frame* is answered with a `Timeout` fault and
//! dropped.

use crate::transport::{Acceptor, Duplex, TcpTransport, Transport};
use crate::wire::{self, FaultCode, Frame, FrameType, WireError, WireFault};
use axml_support::clock::Clock;
use axml_support::sync::channel::{bounded, Receiver, Sender, TrySendError};
use axml_support::sync::Mutex;
use std::collections::HashMap;
use std::io::BufReader;
use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Application logic plugged into the daemon: maps one request envelope to
/// one response envelope, or a typed fault.
pub trait Handler: Send + Sync + 'static {
    /// Handles one request envelope (UTF-8 XML). `id` is the wire request
    /// id — handlers stamp it on their spans so a receiver-side trace can
    /// be correlated with the sender's.
    fn handle(&self, id: u64, envelope: &str) -> Result<String, WireFault>;

    /// Handles one chunk-shipped document, already reassembled and
    /// digest-verified by the engine: `name` is the repository name from
    /// `DocChunkStart`, `text` the raw document XML. Returns the reply
    /// envelope. The default refuses, so handlers that never opted in
    /// simply do not serve chunked transfers.
    fn handle_document(&self, id: u64, name: &str, text: &str) -> Result<String, WireFault> {
        let _ = (id, text);
        Err(WireFault::new(
            FaultCode::BadFrame,
            format!("chunked transfer of '{name}' is not supported by this handler"),
        ))
    }
}

impl<F> Handler for F
where
    F: Fn(u64, &str) -> Result<String, WireFault> + Send + Sync + 'static,
{
    fn handle(&self, id: u64, envelope: &str) -> Result<String, WireFault> {
        self(id, envelope)
    }
}

/// Connection-engine selector: how the daemon turns socket bytes into
/// requests. See the module docs for the trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// One blocking reader thread per connection (works on any
    /// transport; a wall at thousands of peers).
    #[default]
    Threads,
    /// Event-driven readiness loop: sharded epoll/kqueue, bounded
    /// memory, 10k+ connections. TCP only.
    Poll,
}

impl std::str::FromStr for IoMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "threads" => Ok(IoMode::Threads),
            "poll" => Ok(IoMode::Poll),
            other => Err(format!(
                "unknown io mode '{other}' (expected 'threads' or 'poll')"
            )),
        }
    }
}

impl std::fmt::Display for IoMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IoMode::Threads => "threads",
            IoMode::Poll => "poll",
        })
    }
}

/// Tuning knobs for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Name announced in the `Welcome` handshake frame.
    pub name: String,
    /// Connection engine ([`IoMode::Threads`] or [`IoMode::Poll`]).
    pub io: IoMode,
    /// Poll engine only: number of readiness-loop shard threads, each
    /// owning its own poller, connections and bounded request queue.
    /// More shards spread accept and read work across cores.
    pub shards: usize,
    /// Fixed number of worker threads processing requests. In poll mode
    /// the pool is partitioned across shards (at least one per shard).
    pub workers: usize,
    /// Capacity of the in-flight request queue (backpressure bound).
    /// In poll mode this is the capacity of *each* shard's queue, so
    /// `shards = 1` reproduces the threads engine's Busy semantics
    /// exactly.
    pub queue: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Maximum accepted frame payload, in bytes.
    pub max_frame: usize,
    /// Maximum *cumulative* size of one chunked document transfer, in
    /// bytes — what a reassembling connection will buffer in total, as
    /// opposed to the per-frame `max_frame` cap.
    pub max_doc: usize,
    /// Metric registry the server publishes into (`server.*` catalogue
    /// entries) and serves back over `StatsRequest` frames. Defaults to
    /// the process-wide registry; tests inject a fresh one for isolation.
    pub metrics: axml_obs::Registry,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            name: "axml-peer".to_owned(),
            io: IoMode::Threads,
            shards: 2,
            workers: 4,
            queue: 64,
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_secs(5),
            max_frame: wire::DEFAULT_MAX_FRAME,
            max_doc: wire::DEFAULT_MAX_DOC,
            metrics: axml_obs::global(),
        }
    }
}

/// Monotonic counters exposed for tests and operational visibility.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Requests answered with a `Response` frame.
    pub served: AtomicU64,
    /// Requests rejected with a retryable `Busy` fault (queue full).
    pub rejected_busy: AtomicU64,
    /// Requests answered with any other fault.
    pub faulted: AtomicU64,
}

type SharedWriter = Arc<Mutex<Box<dyn Duplex>>>;

/// Where a worker delivers a finished reply. The threads engine hands
/// workers the connection's locked writer; the poll engine cannot (its
/// sockets are non-blocking and owned by a shard loop), so workers post
/// the frame to the shard's outbox and wake its poller instead.
pub(crate) enum ReplyTo {
    /// Write the frame directly through the connection's shared writer.
    Stream(SharedWriter),
    /// Post the frame to a poll shard's outbox for connection `conn`.
    Shard {
        shard: Arc<crate::poll_server::ShardHandle>,
        conn: u64,
    },
}

/// What a queued job asks the worker to run: a plain request envelope,
/// or a reassembled chunk-shipped document.
pub(crate) enum Work {
    Envelope(String),
    Document { name: String, text: String },
}

pub(crate) struct Job {
    pub(crate) reply: ReplyTo,
    pub(crate) id: u64,
    pub(crate) work: Work,
}

/// Pre-resolved handles onto the `server.*` catalogue entries, so hot
/// paths never touch the registry's name map.
pub(crate) struct Metrics {
    pub(crate) connections: axml_obs::Counter,
    requests: axml_obs::Counter,
    responses_ok: axml_obs::Counter,
    faults: axml_obs::Counter,
    pub(crate) busy: axml_obs::Counter,
    pub(crate) timeouts: axml_obs::Counter,
    pub(crate) too_large: axml_obs::Counter,
    pub(crate) panics: axml_obs::Counter,
    pub(crate) queue_depth: axml_obs::Gauge,
    pub(crate) frame_bytes: axml_obs::Histogram,
    /// Poll engine only: live connections across all shards.
    pub(crate) poll_connections: axml_obs::Gauge,
    /// Poll engine only: bytes held in per-connection read/write buffers
    /// across all shards (the bounded-memory witness).
    pub(crate) poll_buffer_bytes: axml_obs::Gauge,
    /// Chunk-family frames accepted (both engines).
    pub(crate) chunk_frames: axml_obs::Counter,
    /// Document bytes received via `DocChunk` frames.
    pub(crate) chunk_bytes: axml_obs::Counter,
    /// Chunked transfers aborted by a typed error before completion.
    pub(crate) chunk_aborts: axml_obs::Counter,
    /// Bytes currently buffered across all in-flight chunk reassemblies.
    pub(crate) chunk_reassembly: axml_obs::Gauge,
}

impl Metrics {
    fn new(r: &axml_obs::Registry) -> Self {
        Metrics {
            connections: r.counter("server.connections_total"),
            requests: r.counter("server.requests_total"),
            responses_ok: r.counter("server.responses_ok_total"),
            faults: r.counter("server.faults_total"),
            busy: r.counter("server.busy_total"),
            timeouts: r.counter("server.timeouts_total"),
            too_large: r.counter("server.frame_too_large_total"),
            panics: r.counter("server.panics_total"),
            queue_depth: r.gauge("server.queue_depth"),
            frame_bytes: r.histogram("server.frame_bytes", axml_obs::BYTES_BOUNDS),
            poll_connections: r.gauge("server.poll.connections"),
            poll_buffer_bytes: r.gauge("server.poll.buffer_bytes"),
            chunk_frames: r.counter("net.chunk.frames_total"),
            chunk_bytes: r.counter("net.chunk.bytes_total"),
            chunk_aborts: r.counter("net.chunk.aborts_total"),
            chunk_reassembly: r.gauge("net.chunk.reassembly_bytes"),
        }
    }

    /// Accounts one faulted request. Every accepted request ends in
    /// exactly one `ok()` or `fault()` call, so
    /// `requests_total = responses_ok_total + faults_total` holds.
    pub(crate) fn fault(&self) {
        self.requests.inc();
        self.faults.inc();
    }

    /// Accounts one successfully answered request.
    pub(crate) fn ok(&self) {
        self.requests.inc();
        self.responses_ok.inc();
    }
}

pub(crate) struct Shared {
    pub(crate) handler: Arc<dyn Handler>,
    pub(crate) config: ServerConfig,
    pub(crate) clock: Arc<dyn Clock>,
    pub(crate) stats: Arc<ServerStats>,
    pub(crate) metrics: Metrics,
    pub(crate) stop: AtomicBool,
    /// Live connection streams, keyed by a connection id, so shutdown can
    /// unblock readers stuck in a read. (Threads engine only; the poll
    /// engine's shards own their connections outright.)
    conns: Mutex<HashMap<u64, SharedWriter>>,
    next_conn: AtomicU64,
}

impl Shared {
    pub(crate) fn new(
        handler: Arc<dyn Handler>,
        clock: Arc<dyn Clock>,
        config: ServerConfig,
    ) -> Arc<Shared> {
        let metrics = Metrics::new(&config.metrics);
        Arc::new(Shared {
            handler,
            config,
            clock,
            stats: Arc::new(ServerStats::default()),
            metrics,
            stop: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
        })
    }
}

/// A running daemon; dropping it without [`NetServer::shutdown`] still
/// stops and joins everything (panics in workers are then swallowed).
pub struct NetServer {
    shared: Arc<Shared>,
    endpoint: String,
    local_addr: Option<std::net::SocketAddr>,
    engine: Engine,
}

/// The running engine behind a [`NetServer`] — which one is decided once
/// at bind time by [`ServerConfig::io`].
enum Engine {
    Threads {
        accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
        workers: Vec<JoinHandle<()>>,
        job_tx: Option<Sender<Job>>,
    },
    Poll(crate::poll_server::PollEngine),
}

/// Errors from server lifecycle operations.
#[derive(Debug)]
pub enum ServerError {
    /// Binding or configuring the listener failed.
    Io(std::io::Error),
    /// A server thread panicked; the payload is rendered into the string.
    WorkerPanic(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "server i/o error: {e}"),
            ServerError::WorkerPanic(m) => write!(f, "server thread panicked: {m}"),
        }
    }
}

impl std::error::Error for ServerError {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

impl NetServer {
    /// Binds `addr` over TCP and starts whichever engine
    /// [`ServerConfig::io`] selects.
    pub fn bind(
        addr: impl ToSocketAddrs,
        handler: Arc<dyn Handler>,
        config: ServerConfig,
    ) -> Result<NetServer, ServerError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(ServerError::Io)?
            .next()
            .ok_or_else(|| {
                ServerError::Io(std::io::Error::new(
                    std::io::ErrorKind::AddrNotAvailable,
                    "address resolved to nothing",
                ))
            })?;
        if config.io == IoMode::Poll {
            let shared = Shared::new(handler, axml_support::clock::system(), config);
            let (engine, local) = crate::poll_server::PollEngine::bind(addr, &shared)?;
            return Ok(NetServer {
                shared,
                endpoint: local.to_string(),
                local_addr: Some(local),
                engine: Engine::Poll(engine),
            });
        }
        NetServer::bind_with(
            &TcpTransport,
            &addr.to_string(),
            axml_support::clock::system(),
            handler,
            config,
        )
    }

    /// Binds `endpoint` on an explicit transport and clock — how tests
    /// run this exact server over an in-memory network. Always runs the
    /// threads engine regardless of [`ServerConfig::io`]: simulated
    /// transports hand out opaque byte streams, not pollable fds.
    pub fn bind_with(
        transport: &dyn Transport,
        endpoint: &str,
        clock: Arc<dyn Clock>,
        handler: Arc<dyn Handler>,
        config: ServerConfig,
    ) -> Result<NetServer, ServerError> {
        let acceptor = transport.bind(endpoint).map_err(ServerError::Io)?;
        let endpoint = acceptor.local_endpoint();
        let local_addr = acceptor.local_addr();
        let workers = config.workers.max(1);
        let queue = config.queue.max(1);
        let shared = Shared::new(handler, clock, config);

        let (job_tx, job_rx) = bounded::<Job>(queue);
        let job_rx = Arc::new(Mutex::new(job_rx));
        let mut worker_handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let shared = Arc::clone(&shared);
            let job_rx: Arc<Mutex<Receiver<Job>>> = Arc::clone(&job_rx);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("axml-net-worker-{w}"))
                    .spawn(move || worker_loop(&shared, &job_rx))
                    .expect("spawn worker thread"),
            );
        }

        let accept = {
            let shared = Arc::clone(&shared);
            let job_tx = job_tx.clone();
            std::thread::Builder::new()
                .name("axml-net-accept".to_owned())
                .spawn(move || accept_loop(acceptor.as_ref(), &shared, &job_tx))
                .expect("spawn accept thread")
        };

        Ok(NetServer {
            shared,
            endpoint,
            local_addr,
            engine: Engine::Threads {
                accept: Some(accept),
                workers: worker_handles,
                job_tx: Some(job_tx),
            },
        })
    }

    /// The bound endpoint, in the transport's notation.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// The bound socket address (useful with port 0). Panics when the
    /// server was bound over a non-TCP transport; use
    /// [`NetServer::endpoint`] there.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr.expect("server is not bound to a TCP socket")
    }

    /// The server's counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Graceful shutdown: stop accepting, unblock + join readers, drain +
    /// join workers. Returns an error if any server thread panicked.
    pub fn shutdown(mut self) -> Result<(), ServerError> {
        self.stop_all()
    }

    fn stop_all(&mut self) -> Result<(), ServerError> {
        self.shared.stop.store(true, Ordering::SeqCst);
        let mut first_panic: Option<String> = None;
        {
            let panics = &self.shared.metrics.panics;
            let mut note = |r: std::thread::Result<()>| {
                if let Err(p) = r {
                    let msg = panic_message(p);
                    panics.inc();
                    axml_obs::span("server.panic").fail(&msg);
                    first_panic.get_or_insert(msg);
                }
            };
            match &mut self.engine {
                Engine::Threads {
                    accept,
                    workers,
                    job_tx,
                } => {
                    // Unblock readers parked in reads.
                    for conn in self.shared.conns.lock().values() {
                        let _ = conn.lock().shutdown();
                    }
                    if let Some(accept) = accept.take() {
                        match accept.join() {
                            Ok(readers) => {
                                for r in readers {
                                    note(r.join());
                                }
                            }
                            Err(p) => note(Err(p)),
                        }
                    }
                    // Closing the queue ends the worker loops once drained.
                    drop(job_tx.take());
                    for w in workers.drain(..) {
                        note(w.join());
                    }
                }
                Engine::Poll(engine) => engine.stop(&mut note),
            }
        }
        match first_panic {
            Some(m) => Err(ServerError::WorkerPanic(m)),
            None => Ok(()),
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        let _ = self.stop_all();
    }
}

fn accept_loop(
    acceptor: &dyn Acceptor,
    shared: &Arc<Shared>,
    job_tx: &Sender<Job>,
) -> Vec<JoinHandle<()>> {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        match acceptor.accept() {
            Ok(stream) => {
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                shared.metrics.connections.inc();
                let shared = Arc::clone(shared);
                let job_tx = job_tx.clone();
                readers.push(
                    std::thread::Builder::new()
                        .name("axml-net-reader".to_owned())
                        .spawn(move || reader_loop(stream, &shared, &job_tx))
                        .expect("spawn reader thread"),
                );
                // Opportunistically reap finished readers so a long-lived
                // daemon does not accumulate handles.
                readers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                shared.clock.sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    readers
}

/// Serves one connection: handshake, then requests until close/shutdown.
fn reader_loop(stream: Box<dyn Duplex>, shared: &Arc<Shared>, job_tx: &Sender<Job>) {
    let config = &shared.config;
    if stream
        .set_read_timeout(Some(config.read_timeout))
        .and_then(|()| stream.set_write_timeout(Some(config.write_timeout)))
        .is_err()
    {
        return;
    }
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    shared
        .conns
        .lock()
        .insert(conn_id, Arc::clone(&writer));
    let mut reader = BufReader::new(stream);
    if handshake(&mut reader, &writer, shared).is_ok() {
        serve_frames(&mut reader, &writer, shared, job_tx);
    }
    shared.conns.lock().remove(&conn_id);
}

fn send_reply(writer: &SharedWriter, frame: &Frame) -> Result<(), WireError> {
    wire::write_frame(&mut *writer.lock(), frame)
}

fn handshake(
    reader: &mut BufReader<Box<dyn Duplex>>,
    writer: &SharedWriter,
    shared: &Arc<Shared>,
) -> Result<(), ()> {
    // The handshake must arrive promptly: idle timeouts here are fatal.
    let frame = loop {
        match wire::read_frame(reader, shared.config.max_frame) {
            Ok(f) => break f,
            Err(WireError::Idle) if !shared.stop.load(Ordering::SeqCst) => {
                return Err(()); // never sent a handshake: drop silently
            }
            Err(_) => return Err(()),
        }
    };
    if frame.kind != FrameType::Hello {
        let f = WireFault::new(FaultCode::BadFrame, "expected Hello to open the connection");
        let _ = send_reply(writer, &wire::fault(frame.id, &f));
        return Err(());
    }
    match wire::decode_hello(&frame.payload) {
        Ok((version, _peer)) if version == wire::VERSION => send_reply(
            writer,
            &wire::welcome_with(&shared.config.name, wire::CAP_CHUNKED),
        )
        .map_err(|_| ()),
        Ok((version, _)) => {
            let f = WireFault::new(
                FaultCode::Version,
                format!("server speaks version {}, client {version}", wire::VERSION),
            );
            let _ = send_reply(writer, &wire::fault(0, &f));
            Err(())
        }
        Err(e) => {
            let f = WireFault::new(FaultCode::BadFrame, format!("bad Hello: {e}"));
            let _ = send_reply(writer, &wire::fault(0, &f));
            Err(())
        }
    }
}

fn serve_frames(
    reader: &mut BufReader<Box<dyn Duplex>>,
    writer: &SharedWriter,
    shared: &Arc<Shared>,
    job_tx: &Sender<Job>,
) {
    let mut assembler = crate::frames::ChunkAssembler::new(shared.config.max_doc);
    let mut reported = 0i64;
    serve_frames_loop(reader, writer, shared, job_tx, &mut assembler, &mut reported);
    // Whatever ended the connection, give back the reassembly bytes and
    // account a partial transfer as aborted.
    shared.metrics.chunk_reassembly.sub(reported);
    if assembler.active() {
        shared.metrics.chunk_aborts.inc();
    }
}

/// Publishes the delta between the assembler's current buffer and what
/// was last reported into the `net.chunk.reassembly_bytes` gauge.
fn sync_reassembly_gauge(
    metrics: &Metrics,
    assembler: &crate::frames::ChunkAssembler,
    reported: &mut i64,
) {
    let now = assembler.buffered_len() as i64;
    metrics.chunk_reassembly.add(now - *reported);
    *reported = now;
}

fn serve_frames_loop(
    reader: &mut BufReader<Box<dyn Duplex>>,
    writer: &SharedWriter,
    shared: &Arc<Shared>,
    job_tx: &Sender<Job>,
    assembler: &mut crate::frames::ChunkAssembler,
    reported: &mut i64,
) {
    let stats = &shared.stats;
    let metrics = &shared.metrics;
    loop {
        let frame = match wire::read_frame(reader, shared.config.max_frame) {
            Ok(f) => f,
            Err(WireError::Idle) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if assembler.active() {
                    // A transfer is open but the peer went quiet between
                    // chunk frames — the same stall as silence inside a
                    // frame, and the same taxonomy.
                    stats.faulted.fetch_add(1, Ordering::Relaxed);
                    metrics.fault();
                    metrics.timeouts.inc();
                    let f =
                        WireFault::new(FaultCode::Timeout, "read timed out mid-chunk-transfer");
                    let _ = send_reply(writer, &wire::fault(0, &f));
                    return;
                }
                // Idle pooled connections are kept until shutdown.
                continue;
            }
            Err(WireError::Stalled) => {
                stats.faulted.fetch_add(1, Ordering::Relaxed);
                metrics.fault();
                metrics.timeouts.inc();
                let f = WireFault::new(FaultCode::Timeout, "read timed out mid-frame");
                let _ = send_reply(writer, &wire::fault(0, &f));
                return;
            }
            Err(WireError::TooLarge { len, max }) => {
                // The oversized payload was never read; the stream is no
                // longer framed, so fault and close.
                stats.faulted.fetch_add(1, Ordering::Relaxed);
                metrics.fault();
                metrics.too_large.inc();
                metrics.frame_bytes.observe(len as u64);
                let f = WireFault::new(
                    FaultCode::TooLarge,
                    format!("{len}-byte payload exceeds the {max}-byte cap"),
                );
                let _ = send_reply(writer, &wire::fault(0, &f));
                return;
            }
            Err(WireError::Closed) => return,
            Err(e) => {
                if !shared.stop.load(Ordering::SeqCst) {
                    stats.faulted.fetch_add(1, Ordering::Relaxed);
                    metrics.fault();
                    let f = WireFault::new(FaultCode::BadFrame, e.to_string());
                    let _ = send_reply(writer, &wire::fault(0, &f));
                }
                return;
            }
        };
        metrics.frame_bytes.observe(frame.payload.len() as u64);
        if frame.kind == FrameType::StatsRequest {
            // Answered inline from the reader: scrapes must work even
            // when the worker queue is saturated. Scrapes are not
            // requests, so they stay out of the request accounting.
            let snapshot = shared.config.metrics.snapshot().to_json();
            let _ = send_reply(writer, &wire::stats_response(frame.id, &snapshot));
            continue;
        }
        if shared.stop.load(Ordering::SeqCst) {
            let f = WireFault::new(FaultCode::Shutdown, "server is shutting down").retryable();
            let _ = send_reply(writer, &wire::fault(frame.id, &f));
            return;
        }
        let work = if matches!(
            frame.kind,
            FrameType::DocChunkStart | FrameType::DocChunk | FrameType::DocChunkEnd
        ) {
            metrics.chunk_frames.inc();
            if frame.kind == FrameType::DocChunk {
                metrics
                    .chunk_bytes
                    .add(frame.payload.len().saturating_sub(4) as u64);
            }
            let outcome = assembler.accept(&frame);
            sync_reassembly_gauge(metrics, assembler, reported);
            match outcome {
                Ok(crate::frames::ChunkProgress::Pending)
                | Ok(crate::frames::ChunkProgress::Drained) => continue,
                Ok(crate::frames::ChunkProgress::Complete { name, bytes, .. }) => {
                    match String::from_utf8(bytes) {
                        Ok(text) => Work::Document { name, text },
                        Err(_) => {
                            stats.faulted.fetch_add(1, Ordering::Relaxed);
                            metrics.fault();
                            metrics.chunk_aborts.inc();
                            let f = WireFault::new(
                                FaultCode::Client,
                                "chunked document is not UTF-8",
                            );
                            let _ = send_reply(writer, &wire::fault(frame.id, &f));
                            continue;
                        }
                    }
                }
                Err(e) => {
                    // The transfer is dead but the stream is still framed:
                    // fault the transfer's request id and keep serving —
                    // the assembler drains the pipelined remains itself.
                    stats.faulted.fetch_add(1, Ordering::Relaxed);
                    metrics.fault();
                    metrics.chunk_aborts.inc();
                    let f = match e {
                        WireError::TooLarge { len, max } => {
                            metrics.too_large.inc();
                            metrics.frame_bytes.observe(len as u64);
                            WireFault::new(
                                FaultCode::TooLarge,
                                format!(
                                    "chunked transfer of {len} cumulative bytes exceeds the {max}-byte cap"
                                ),
                            )
                        }
                        other => WireFault::new(FaultCode::BadFrame, other.to_string()),
                    };
                    let _ = send_reply(writer, &wire::fault(frame.id, &f));
                    continue;
                }
            }
        } else if frame.kind != FrameType::Request {
            stats.faulted.fetch_add(1, Ordering::Relaxed);
            metrics.fault();
            let f = WireFault::new(FaultCode::BadFrame, "expected a Request frame");
            let _ = send_reply(writer, &wire::fault(frame.id, &f));
            continue;
        } else {
            match wire::decode_envelope(&frame.payload) {
                Ok(e) => Work::Envelope(e),
                Err(e) => {
                    stats.faulted.fetch_add(1, Ordering::Relaxed);
                    metrics.fault();
                    let f = WireFault::new(FaultCode::Client, e.to_string());
                    let _ = send_reply(writer, &wire::fault(frame.id, &f));
                    continue;
                }
            }
        };
        let job = Job {
            reply: ReplyTo::Stream(Arc::clone(writer)),
            id: frame.id,
            work,
        };
        // Count the slot before the job becomes visible to workers: the
        // worker's decrement must never be able to outrun our increment,
        // or the gauge could read negative at rest.
        metrics.queue_depth.add(1);
        match job_tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(job)) => {
                // Backpressure: reject retryably instead of queueing.
                metrics.queue_depth.sub(1);
                stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                metrics.fault();
                metrics.busy.inc();
                let f = WireFault::new(FaultCode::Busy, "in-flight request queue is full")
                    .retryable();
                let _ = send_reply(writer, &wire::fault(job.id, &f));
            }
            Err(TrySendError::Disconnected(job)) => {
                metrics.queue_depth.sub(1);
                stats.faulted.fetch_add(1, Ordering::Relaxed);
                metrics.fault();
                let f = WireFault::new(FaultCode::Shutdown, "server is shutting down").retryable();
                let _ = send_reply(writer, &wire::fault(job.id, &f));
                return;
            }
        }
    }
}

pub(crate) fn worker_loop(shared: &Arc<Shared>, job_rx: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Hold the lock only while dequeueing, never while handling.
        let job = match job_rx.lock().recv() {
            Ok(j) => j,
            Err(_) => return, // queue closed: graceful shutdown
        };
        shared.metrics.queue_depth.sub(1);
        let outcome = match &job.work {
            Work::Envelope(envelope) => shared.handler.handle(job.id, envelope),
            Work::Document { name, text } => shared.handler.handle_document(job.id, name, text),
        };
        let reply = match outcome {
            Ok(envelope) => {
                shared.stats.served.fetch_add(1, Ordering::Relaxed);
                shared.metrics.ok();
                wire::response(job.id, &envelope)
            }
            Err(fault) => {
                shared.stats.faulted.fetch_add(1, Ordering::Relaxed);
                shared.metrics.fault();
                wire::fault(job.id, &fault)
            }
        };
        // A gone client is not the server's problem — in either engine:
        // the direct write may fail, or the shard may find the
        // connection already closed and drop the frame.
        match &job.reply {
            ReplyTo::Stream(writer) => {
                let _ = send_reply(writer, &reply);
            }
            ReplyTo::Shard { shard, conn } => shard.deliver(*conn, reply),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::TcpStream;

    fn echo_server(config: ServerConfig) -> NetServer {
        let handler: Arc<dyn Handler> = Arc::new(|_id: u64, envelope: &str| {
            if envelope == "boom" {
                Err(WireFault::new(FaultCode::Server, "boom requested"))
            } else {
                Ok(format!("echo:{envelope}"))
            }
        });
        NetServer::bind("127.0.0.1:0", handler, config).unwrap()
    }

    fn dial(server: &NetServer) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        wire::set_stream_timeouts(
            &stream,
            Some(Duration::from_secs(5)),
            Some(Duration::from_secs(5)),
        )
        .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (reader, stream)
    }

    fn shake(reader: &mut BufReader<TcpStream>, stream: &mut TcpStream) {
        wire::write_frame(stream, &wire::hello("test-client")).unwrap();
        let back = wire::read_frame(reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Welcome);
        let (v, name) = wire::decode_welcome(&back.payload).unwrap();
        assert_eq!(v, wire::VERSION);
        assert_eq!(name, "axml-peer");
    }

    #[test]
    fn serves_requests_and_faults() {
        let server = echo_server(ServerConfig::default());
        let (mut reader, mut stream) = dial(&server);
        shake(&mut reader, &mut stream);
        wire::write_frame(&mut stream, &wire::request(1, "hi")).unwrap();
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Response);
        assert_eq!(back.id, 1);
        assert_eq!(wire::decode_envelope(&back.payload).unwrap(), "echo:hi");
        wire::write_frame(&mut stream, &wire::request(2, "boom")).unwrap();
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Fault);
        let f = wire::decode_fault(&back.payload).unwrap();
        assert_eq!(f.code, FaultCode::Server);
        assert!(!f.retryable);
        server.shutdown().unwrap();
    }

    #[test]
    fn handshake_is_mandatory_and_versioned() {
        let server = echo_server(ServerConfig::default());
        // Requests before Hello are rejected.
        let (mut reader, mut stream) = dial(&server);
        wire::write_frame(&mut stream, &wire::request(1, "hi")).unwrap();
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Fault);
        let f = wire::decode_fault(&back.payload).unwrap();
        assert_eq!(f.code, FaultCode::BadFrame);

        // Wrong version is rejected with a Version fault.
        let (mut reader, mut stream) = dial(&server);
        let mut bad_hello = wire::hello("old-client");
        bad_hello.payload[4..6].copy_from_slice(&99u16.to_be_bytes());
        wire::write_frame(&mut stream, &bad_hello).unwrap();
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        let f = wire::decode_fault(&back.payload).unwrap();
        assert_eq!(f.code, FaultCode::Version);
        server.shutdown().unwrap();
    }

    #[test]
    fn oversized_frame_gets_too_large_fault() {
        let server = echo_server(ServerConfig {
            max_frame: 64,
            ..ServerConfig::default()
        });
        let (mut reader, mut stream) = dial(&server);
        shake(&mut reader, &mut stream);
        wire::write_frame(&mut stream, &wire::request(1, &"x".repeat(1000))).unwrap();
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Fault);
        let f = wire::decode_fault(&back.payload).unwrap();
        assert_eq!(f.code, FaultCode::TooLarge);
        server.shutdown().unwrap();
    }

    #[test]
    fn stalled_writer_gets_timeout_fault() {
        let server = echo_server(ServerConfig {
            read_timeout: Duration::from_millis(50),
            ..ServerConfig::default()
        });
        let (mut reader, mut stream) = dial(&server);
        shake(&mut reader, &mut stream);
        // Send only half a header, then stall.
        stream.write_all(&[0x03, 0, 0, 0]).unwrap();
        stream.flush().unwrap();
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Fault);
        let f = wire::decode_fault(&back.payload).unwrap();
        assert_eq!(f.code, FaultCode::Timeout);
        server.shutdown().unwrap();
    }

    #[test]
    fn stats_request_returns_metric_snapshot() {
        let registry = axml_obs::Registry::new();
        axml_obs::register_catalogue(&registry);
        let server = echo_server(ServerConfig {
            metrics: registry.clone(),
            ..ServerConfig::default()
        });
        let (mut reader, mut stream) = dial(&server);
        shake(&mut reader, &mut stream);
        wire::write_frame(&mut stream, &wire::request(1, "hi")).unwrap();
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Response);
        wire::write_frame(&mut stream, &wire::stats_request(2)).unwrap();
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::StatsResponse);
        assert_eq!(back.id, 2);
        let text = wire::decode_envelope(&back.payload).unwrap();
        let snap = axml_obs::Snapshot::parse_json(&text).unwrap();
        assert_eq!(snap.counter("server.requests_total"), 1);
        assert_eq!(snap.counter("server.responses_ok_total"), 1);
        assert_eq!(snap.counter("server.connections_total"), 1);
        // Scrapes stay out of the request accounting.
        assert_eq!(
            snap.counter("server.requests_total"),
            snap.counter("server.responses_ok_total") + snap.counter("server.faults_total")
        );
        server.shutdown().unwrap();
    }

    struct StoreDoc {
        docs: Mutex<HashMap<String, String>>,
    }

    impl Handler for StoreDoc {
        fn handle(&self, _id: u64, envelope: &str) -> Result<String, WireFault> {
            Ok(format!("echo:{envelope}"))
        }

        fn handle_document(&self, _id: u64, name: &str, text: &str) -> Result<String, WireFault> {
            self.docs.lock().insert(name.to_owned(), text.to_owned());
            Ok(format!("stored:{name}"))
        }
    }

    fn chunk_frames(id: u64, name: &str, data: &[u8], chunk: usize) -> Vec<Frame> {
        let mut digest = axml_support::hash::Fnv64::new();
        let mut frames = vec![wire::doc_chunk_start(id, name)];
        let mut seq = 0u32;
        for piece in data.chunks(chunk) {
            digest.update(piece);
            frames.push(wire::doc_chunk(id, seq, piece));
            seq += 1;
        }
        frames.push(wire::doc_chunk_end(id, seq, data.len() as u64, digest.finish()));
        frames
    }

    #[test]
    fn chunked_transfer_reaches_document_handler() {
        let registry = axml_obs::Registry::new();
        axml_obs::register_catalogue(&registry);
        let handler = Arc::new(StoreDoc {
            docs: Mutex::new(HashMap::new()),
        });
        let server = NetServer::bind(
            "127.0.0.1:0",
            Arc::<StoreDoc>::clone(&handler),
            ServerConfig {
                metrics: registry.clone(),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let (mut reader, mut stream) = dial(&server);
        // The Welcome advertises the chunk capability.
        wire::write_frame(&mut stream, &wire::hello_with("test-client", wire::CAP_CHUNKED))
            .unwrap();
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        let (_, name, caps) = wire::decode_welcome_caps(&back.payload).unwrap();
        assert_eq!(name, "axml-peer");
        assert_eq!(caps & wire::CAP_CHUNKED, wire::CAP_CHUNKED);

        let doc = "<doc>".repeat(50) + &"</doc>".repeat(50);
        for f in chunk_frames(7, "big.xml", doc.as_bytes(), 37) {
            wire::write_frame(&mut stream, &f).unwrap();
        }
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Response);
        assert_eq!(back.id, 7);
        assert_eq!(wire::decode_envelope(&back.payload).unwrap(), "stored:big.xml");
        assert_eq!(handler.docs.lock().get("big.xml"), Some(&doc));

        let snap = registry.snapshot();
        assert!(snap.counter("net.chunk.frames_total") >= 3);
        assert_eq!(snap.counter("net.chunk.bytes_total"), doc.len() as u64);
        assert_eq!(snap.counter("net.chunk.aborts_total"), 0);
        assert_eq!(snap.gauge("net.chunk.reassembly_bytes"), 0);
        assert_eq!(
            snap.counter("server.requests_total"),
            snap.counter("server.responses_ok_total") + snap.counter("server.faults_total")
        );
        server.shutdown().unwrap();
    }

    #[test]
    fn chunk_faults_are_typed_and_the_connection_survives() {
        let registry = axml_obs::Registry::new();
        axml_obs::register_catalogue(&registry);
        let handler = Arc::new(StoreDoc {
            docs: Mutex::new(HashMap::new()),
        });
        let server = NetServer::bind(
            "127.0.0.1:0",
            Arc::<StoreDoc>::clone(&handler),
            ServerConfig {
                metrics: registry.clone(),
                max_doc: 64,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let (mut reader, mut stream) = dial(&server);
        shake(&mut reader, &mut stream);

        // Out-of-sequence chunk: typed BadFrame on the transfer's id.
        wire::write_frame(&mut stream, &wire::doc_chunk_start(3, "d")).unwrap();
        wire::write_frame(&mut stream, &wire::doc_chunk(3, 5, b"zz")).unwrap();
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Fault);
        assert_eq!(back.id, 3);
        let f = wire::decode_fault(&back.payload).unwrap();
        assert_eq!(f.code, FaultCode::BadFrame);
        assert!(f.message.contains("out of sequence"));

        // Cumulative cap: TooLarge reports the running total.
        wire::write_frame(&mut stream, &wire::doc_chunk_start(4, "d")).unwrap();
        wire::write_frame(&mut stream, &wire::doc_chunk(4, 0, &[b'a'; 40])).unwrap();
        wire::write_frame(&mut stream, &wire::doc_chunk(4, 1, &[b'b'; 40])).unwrap();
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.id, 4);
        let f = wire::decode_fault(&back.payload).unwrap();
        assert_eq!(f.code, FaultCode::TooLarge);
        assert!(f.message.contains("80 cumulative bytes"), "{}", f.message);

        // Same connection still serves plain requests and fresh transfers.
        wire::write_frame(&mut stream, &wire::request(5, "hi")).unwrap();
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Response);
        for f in chunk_frames(6, "ok.xml", b"<ok/>", 2) {
            wire::write_frame(&mut stream, &f).unwrap();
        }
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Response);
        assert_eq!(back.id, 6);

        let snap = registry.snapshot();
        assert_eq!(snap.counter("net.chunk.aborts_total"), 2);
        assert_eq!(snap.gauge("net.chunk.reassembly_bytes"), 0);
        server.shutdown().unwrap();
    }

    #[test]
    fn idle_inside_chunk_transfer_gets_timeout_fault() {
        let server = echo_server(ServerConfig {
            read_timeout: Duration::from_millis(50),
            ..ServerConfig::default()
        });
        let (mut reader, mut stream) = dial(&server);
        shake(&mut reader, &mut stream);
        // Open a transfer, send one whole chunk frame, then go quiet: the
        // socket is between frames but the transfer is mid-flight.
        wire::write_frame(&mut stream, &wire::doc_chunk_start(9, "stall")).unwrap();
        wire::write_frame(&mut stream, &wire::doc_chunk(9, 0, b"abc")).unwrap();
        let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, FrameType::Fault);
        let f = wire::decode_fault(&back.payload).unwrap();
        assert_eq!(f.code, FaultCode::Timeout);
        assert!(f.message.contains("mid-chunk-transfer"));
        server.shutdown().unwrap();
    }

    #[test]
    fn graceful_shutdown_reports_counts() {
        let server = echo_server(ServerConfig::default());
        let (mut reader, mut stream) = dial(&server);
        shake(&mut reader, &mut stream);
        for i in 0..5 {
            wire::write_frame(&mut stream, &wire::request(i, "ping")).unwrap();
            let back = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
            assert_eq!(back.id, i);
        }
        assert_eq!(server.stats().served.load(Ordering::Relaxed), 5);
        server.shutdown().unwrap();
    }
}
