//! The AXML framing and wire protocol.
//!
//! Peers exchange length-prefixed **frames** over TCP. Every frame is a
//! fixed 13-byte header followed by a payload:
//!
//! ```text
//! +------+----------------------+----------------+-- ... --+
//! | type |      request id      | payload length | payload |
//! | (u8) |      (u64, BE)       |    (u32, BE)   |  bytes  |
//! +------+----------------------+----------------+-- ... --+
//! ```
//!
//! Frame types:
//!
//! | type | name       | payload                                          |
//! |------|------------|--------------------------------------------------|
//! | 0x01 | `Hello`    | magic `AXML` + version (u16 BE) + peer name      |
//! | 0x02 | `Welcome`  | version (u16 BE) + peer name                     |
//! | 0x03 | `Request`  | a SOAP envelope (UTF-8 XML)                      |
//! | 0x04 | `Response` | a SOAP envelope (UTF-8 XML)                      |
//! | 0x05 | `Fault`    | code (u8) + retryable (u8) + message (UTF-8)     |
//! | 0x06 | `StatsRequest`  | empty — asks the server for its metrics     |
//! | 0x07 | `StatsResponse` | a JSON metric snapshot (`axml-obs` format)  |
//! | 0x08 | `DocChunkStart` | name len (u16 BE) + document name (UTF-8)   |
//! | 0x09 | `DocChunk`      | sequence number (u32 BE) + raw chunk bytes  |
//! | 0x0A | `DocChunkEnd`   | chunk count (u32 BE) + total bytes (u64 BE) + FNV-64 digest (u64 BE) |
//!
//! A connection opens with a versioned handshake: the client sends
//! `Hello` (request id 0); the server answers `Welcome`, or a `Fault`
//! with [`FaultCode::Version`] and closes. After the handshake the client
//! sends `Request` frames with monotonically increasing request ids; each
//! is answered by exactly one `Response` or `Fault` frame carrying the
//! *same* request id (answers may arrive out of order when the server
//! pipelines requests across its worker pool).
//!
//! **Capabilities.** Either handshake frame may append a NUL byte and a
//! capability bitmask after the peer name ([`hello_with`] /
//! [`welcome_with`]). Decoders split the name at the first NUL, so a
//! suffix-aware peer sees a clean name plus the mask, while a peer
//! predating the suffix merely logs a name with a trailing marker — the
//! handshake itself still succeeds. A client uses chunked document
//! transfer ([`CAP_CHUNKED`]) only when the server's `Welcome` advertises
//! it, falling back to single-frame `Request` shipping otherwise.
//!
//! **Chunked transfers.** A document too large for one `Request` frame
//! travels as `DocChunkStart`, then `DocChunk` frames with consecutive
//! sequence numbers starting at 0, then `DocChunkEnd` carrying the chunk
//! count, cumulative byte length, and a running FNV-64 digest of the
//! chunk bytes. All frames of one transfer carry the same request id, and
//! the transfer is answered by exactly one `Response` or `Fault` like a
//! plain `Request`. Reassembly rules live in
//! [`ChunkAssembler`](crate::frames::ChunkAssembler).
//!
//! Faults are **typed**: a [`FaultCode`] plus a `retryable` flag that
//! tells the client whether backing off and retrying can help (queue
//! full, timeouts) or cannot (malformed envelope, unknown service).
//!
//! Payloads larger than the receiver's configured maximum are rejected
//! *before* any allocation ([`WireError::TooLarge`]) — a 4-byte length
//! from a hostile peer never reserves memory.

use std::io::{Read, Write};
use std::time::Duration;

/// The handshake magic: the first four payload bytes of every `Hello`.
pub const MAGIC: [u8; 4] = *b"AXML";

/// The wire protocol version spoken by this build.
pub const VERSION: u16 = 1;

/// Size of the fixed frame header (type + request id + payload length).
pub const HEADER_LEN: usize = 1 + 8 + 4;

/// Default cap on payload size: 4 MiB.
pub const DEFAULT_MAX_FRAME: usize = 4 << 20;

/// Default cap on the *cumulative* size of one chunked document transfer:
/// 64 MiB. Per-chunk frames stay bounded by the frame cap; this bounds
/// what a reassembling receiver will buffer in total.
pub const DEFAULT_MAX_DOC: usize = 64 << 20;

/// Handshake capability bit: the peer understands the
/// `DocChunkStart`/`DocChunk`/`DocChunkEnd` frame family.
pub const CAP_CHUNKED: u8 = 0x01;

/// The kind of a frame, i.e. its `type` byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Client-side half of the handshake.
    Hello,
    /// Server-side half of the handshake.
    Welcome,
    /// A request carrying a SOAP envelope.
    Request,
    /// A successful reply carrying a SOAP envelope.
    Response,
    /// A typed failure reply.
    Fault,
    /// Asks the server for a JSON snapshot of its metric registry.
    StatsRequest,
    /// The JSON metric snapshot answering a `StatsRequest`.
    StatsResponse,
    /// Opens a chunked document transfer (name + metadata).
    DocChunkStart,
    /// One chunk of a chunked transfer (sequence number + bytes).
    DocChunk,
    /// Closes a chunked transfer (count + total length + FNV-64 digest).
    DocChunkEnd,
}

impl FrameType {
    fn to_byte(self) -> u8 {
        match self {
            FrameType::Hello => 0x01,
            FrameType::Welcome => 0x02,
            FrameType::Request => 0x03,
            FrameType::Response => 0x04,
            FrameType::Fault => 0x05,
            FrameType::StatsRequest => 0x06,
            FrameType::StatsResponse => 0x07,
            FrameType::DocChunkStart => 0x08,
            FrameType::DocChunk => 0x09,
            FrameType::DocChunkEnd => 0x0a,
        }
    }

    /// Decodes a frame's `type` byte (byte 0 of the header).
    pub fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            0x01 => Ok(FrameType::Hello),
            0x02 => Ok(FrameType::Welcome),
            0x03 => Ok(FrameType::Request),
            0x04 => Ok(FrameType::Response),
            0x05 => Ok(FrameType::Fault),
            0x06 => Ok(FrameType::StatsRequest),
            0x07 => Ok(FrameType::StatsResponse),
            0x08 => Ok(FrameType::DocChunkStart),
            0x09 => Ok(FrameType::DocChunk),
            0x0a => Ok(FrameType::DocChunkEnd),
            other => Err(WireError::UnknownFrameType(other)),
        }
    }
}

/// One frame: type, request id, raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame's type byte, decoded.
    pub kind: FrameType,
    /// Correlates requests with their replies; 0 during the handshake.
    pub id: u64,
    /// The raw payload bytes.
    pub payload: Vec<u8>,
}

/// Typed fault codes carried by `Fault` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCode {
    /// The request itself is at fault (malformed envelope, bad method).
    Client,
    /// The server failed to process a well-formed request.
    Server,
    /// The server's in-flight request queue is full; try again later.
    Busy,
    /// The peer timed out mid-frame.
    Timeout,
    /// A frame exceeded the receiver's size cap.
    TooLarge,
    /// A frame violated the protocol (bad type, handshake out of order).
    BadFrame,
    /// Version negotiation failed during the handshake.
    Version,
    /// The server is shutting down.
    Shutdown,
}

impl FaultCode {
    fn to_byte(self) -> u8 {
        match self {
            FaultCode::Client => 0,
            FaultCode::Server => 1,
            FaultCode::Busy => 2,
            FaultCode::Timeout => 3,
            FaultCode::TooLarge => 4,
            FaultCode::BadFrame => 5,
            FaultCode::Version => 6,
            FaultCode::Shutdown => 7,
        }
    }

    fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(FaultCode::Client),
            1 => Ok(FaultCode::Server),
            2 => Ok(FaultCode::Busy),
            3 => Ok(FaultCode::Timeout),
            4 => Ok(FaultCode::TooLarge),
            5 => Ok(FaultCode::BadFrame),
            6 => Ok(FaultCode::Version),
            7 => Ok(FaultCode::Shutdown),
            other => Err(WireError::Malformed(format!("unknown fault code {other}"))),
        }
    }

    /// The SOAP `faultcode` string this wire code maps to.
    pub fn as_soap_code(self) -> &'static str {
        match self {
            FaultCode::Client => "Client",
            FaultCode::Server => "Server",
            FaultCode::Busy => "Server.Busy",
            FaultCode::Timeout => "Server.Timeout",
            FaultCode::TooLarge => "Client.TooLarge",
            FaultCode::BadFrame => "Client.BadFrame",
            FaultCode::Version => "Client.Version",
            FaultCode::Shutdown => "Server.Shutdown",
        }
    }

    /// The inverse of [`FaultCode::as_soap_code`]; unknown strings map to
    /// the two base SOAP codes by prefix, defaulting to `Server`.
    pub fn from_soap_code(code: &str) -> Self {
        match code {
            "Client" => FaultCode::Client,
            "Server" => FaultCode::Server,
            "Server.Busy" => FaultCode::Busy,
            "Server.Timeout" => FaultCode::Timeout,
            "Client.TooLarge" => FaultCode::TooLarge,
            "Client.BadFrame" => FaultCode::BadFrame,
            "Client.Version" => FaultCode::Version,
            "Server.Shutdown" => FaultCode::Shutdown,
            other if other.starts_with("Client") => FaultCode::Client,
            _ => FaultCode::Server,
        }
    }
}

impl std::fmt::Display for FaultCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_soap_code())
    }
}

/// The decoded payload of a `Fault` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFault {
    /// Typed fault code.
    pub code: FaultCode,
    /// Whether retrying (after backoff) can succeed.
    pub retryable: bool,
    /// Human-readable description.
    pub message: String,
}

impl WireFault {
    /// A non-retryable fault.
    pub fn new(code: FaultCode, message: impl Into<String>) -> Self {
        WireFault {
            code,
            retryable: false,
            message: message.into(),
        }
    }

    /// Marks the fault retryable.
    pub fn retryable(mut self) -> Self {
        self.retryable = true;
        self
    }
}

impl std::fmt::Display for WireFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fault [{}{}]: {}",
            self.code,
            if self.retryable { ", retryable" } else { "" },
            self.message
        )
    }
}

/// Errors raised while reading or writing frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// An I/O failure (kind + description).
    Io(std::io::ErrorKind, String),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The read timed out while the connection was idle (no frame begun).
    Idle,
    /// The read timed out mid-frame — the peer stalled.
    Stalled,
    /// A payload length exceeded the configured cap.
    TooLarge {
        /// The announced payload length.
        len: usize,
        /// The receiver's cap.
        max: usize,
    },
    /// An unknown frame type byte.
    UnknownFrameType(u8),
    /// The handshake magic did not match.
    BadMagic,
    /// The peer speaks an incompatible protocol version.
    Version(u16),
    /// A structurally invalid payload.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(kind, msg) => write!(f, "i/o error ({kind:?}): {msg}"),
            WireError::Closed => write!(f, "connection closed by peer"),
            WireError::Idle => write!(f, "idle timeout waiting for a frame"),
            WireError::Stalled => write!(f, "peer stalled mid-frame"),
            WireError::TooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::UnknownFrameType(b) => write!(f, "unknown frame type byte {b:#04x}"),
            WireError::BadMagic => write!(f, "handshake magic mismatch"),
            WireError::Version(v) => write!(f, "incompatible protocol version {v}"),
            WireError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.kind(), e.to_string())
    }
}

fn is_timeout(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads exactly `buf.len()` bytes. `started` says whether earlier bytes
/// of the same frame were already consumed: a timeout then is a stall
/// ([`WireError::Stalled`]), while a timeout before any byte of the frame
/// is a benign [`WireError::Idle`]. A clean EOF before any byte is
/// [`WireError::Closed`].
fn read_full(r: &mut impl Read, buf: &mut [u8], mut started: bool) -> Result<(), WireError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if started {
                    WireError::Io(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame".to_owned(),
                    )
                } else {
                    WireError::Closed
                });
            }
            Ok(n) => {
                filled += n;
                started = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(e.kind()) => {
                return Err(if started {
                    WireError::Stalled
                } else {
                    WireError::Idle
                });
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Reads one frame, enforcing `max_payload` before allocating.
pub fn read_frame(r: &mut impl Read, max_payload: usize) -> Result<Frame, WireError> {
    let mut header = [0u8; HEADER_LEN];
    read_full(r, &mut header, false)?;
    let kind = FrameType::from_byte(header[0])?;
    let id = u64::from_be_bytes(header[1..9].try_into().expect("8 header bytes"));
    let len = u32::from_be_bytes(header[9..13].try_into().expect("4 header bytes")) as usize;
    if len > max_payload {
        return Err(WireError::TooLarge {
            len,
            max: max_payload,
        });
    }
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload, true)?;
    Ok(Frame { kind, id, payload })
}

/// Writes one frame (header + payload) and flushes. Header and payload
/// go out as a single write: two small writes on an unbuffered socket
/// interact with Nagle + delayed ACK and stall every frame ~40 ms.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    let len = u32::try_from(frame.payload.len())
        .map_err(|_| WireError::Malformed("payload exceeds u32 length".to_owned()))?;
    let mut buf = Vec::with_capacity(HEADER_LEN + frame.payload.len());
    buf.push(frame.kind.to_byte());
    buf.extend_from_slice(&frame.id.to_be_bytes());
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(&frame.payload);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Appends the NUL-delimited capability suffix to a handshake name
/// field; a zero mask keeps the pre-capability byte layout.
fn name_with_caps(buf: &mut Vec<u8>, peer_name: &str, caps: u8) {
    buf.extend_from_slice(peer_name.as_bytes());
    if caps != 0 {
        buf.push(0);
        buf.push(caps);
    }
}

/// Splits a handshake name field into `(name bytes, capability mask)`:
/// everything before the first NUL is the name, the byte after it (if
/// any) is the mask. Fields without a NUL carry no capabilities.
fn split_caps(field: &[u8]) -> (&[u8], u8) {
    match field.iter().position(|&b| b == 0) {
        Some(at) => (&field[..at], field.get(at + 1).copied().unwrap_or(0)),
        None => (field, 0),
    }
}

/// Builds the `Hello` frame a client opens the connection with.
pub fn hello(peer_name: &str) -> Frame {
    hello_with(peer_name, 0)
}

/// Builds a `Hello` frame advertising a capability mask (see
/// [`CAP_CHUNKED`]). `caps == 0` produces the legacy payload layout.
pub fn hello_with(peer_name: &str, caps: u8) -> Frame {
    let mut payload = Vec::with_capacity(4 + 2 + peer_name.len() + 2);
    payload.extend_from_slice(&MAGIC);
    payload.extend_from_slice(&VERSION.to_be_bytes());
    name_with_caps(&mut payload, peer_name, caps);
    Frame {
        kind: FrameType::Hello,
        id: 0,
        payload,
    }
}

/// Decodes a `Hello` payload, returning `(version, peer name)`.
pub fn decode_hello(payload: &[u8]) -> Result<(u16, String), WireError> {
    decode_hello_caps(payload).map(|(v, name, _)| (v, name))
}

/// Decodes a `Hello` payload including the capability mask, returning
/// `(version, peer name, caps)`. Payloads without the NUL suffix decode
/// with `caps == 0`.
pub fn decode_hello_caps(payload: &[u8]) -> Result<(u16, String, u8), WireError> {
    if payload.len() < 6 {
        return Err(WireError::Malformed("hello payload too short".to_owned()));
    }
    if payload[0..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_be_bytes([payload[4], payload[5]]);
    let (name, caps) = split_caps(&payload[6..]);
    let name = String::from_utf8(name.to_vec())
        .map_err(|_| WireError::Malformed("hello peer name is not UTF-8".to_owned()))?;
    Ok((version, name, caps))
}

/// Builds the `Welcome` frame a server answers the handshake with.
pub fn welcome(peer_name: &str) -> Frame {
    welcome_with(peer_name, 0)
}

/// Builds a `Welcome` frame advertising a capability mask (see
/// [`CAP_CHUNKED`]). `caps == 0` produces the legacy payload layout.
pub fn welcome_with(peer_name: &str, caps: u8) -> Frame {
    let mut payload = Vec::with_capacity(2 + peer_name.len() + 2);
    payload.extend_from_slice(&VERSION.to_be_bytes());
    name_with_caps(&mut payload, peer_name, caps);
    Frame {
        kind: FrameType::Welcome,
        id: 0,
        payload,
    }
}

/// Decodes a `Welcome` payload, returning `(version, peer name)`.
pub fn decode_welcome(payload: &[u8]) -> Result<(u16, String), WireError> {
    decode_welcome_caps(payload).map(|(v, name, _)| (v, name))
}

/// Decodes a `Welcome` payload including the capability mask, returning
/// `(version, peer name, caps)`. Payloads without the NUL suffix decode
/// with `caps == 0`.
pub fn decode_welcome_caps(payload: &[u8]) -> Result<(u16, String, u8), WireError> {
    if payload.len() < 2 {
        return Err(WireError::Malformed("welcome payload too short".to_owned()));
    }
    let version = u16::from_be_bytes([payload[0], payload[1]]);
    let (name, caps) = split_caps(&payload[2..]);
    let name = String::from_utf8(name.to_vec())
        .map_err(|_| WireError::Malformed("welcome peer name is not UTF-8".to_owned()))?;
    Ok((version, name, caps))
}

/// Builds a `Request` frame around a SOAP envelope.
pub fn request(id: u64, envelope: &str) -> Frame {
    Frame {
        kind: FrameType::Request,
        id,
        payload: envelope.as_bytes().to_vec(),
    }
}

/// Builds a `Response` frame around a SOAP envelope.
pub fn response(id: u64, envelope: &str) -> Frame {
    Frame {
        kind: FrameType::Response,
        id,
        payload: envelope.as_bytes().to_vec(),
    }
}

/// Builds a `Fault` frame from a typed fault.
pub fn fault(id: u64, f: &WireFault) -> Frame {
    let mut payload = Vec::with_capacity(2 + f.message.len());
    payload.push(f.code.to_byte());
    payload.push(u8::from(f.retryable));
    payload.extend_from_slice(f.message.as_bytes());
    Frame {
        kind: FrameType::Fault,
        id,
        payload,
    }
}

/// Decodes a `Fault` payload.
pub fn decode_fault(payload: &[u8]) -> Result<WireFault, WireError> {
    if payload.len() < 2 {
        return Err(WireError::Malformed("fault payload too short".to_owned()));
    }
    Ok(WireFault {
        code: FaultCode::from_byte(payload[0])?,
        retryable: payload[1] != 0,
        message: String::from_utf8(payload[2..].to_vec())
            .map_err(|_| WireError::Malformed("fault message is not UTF-8".to_owned()))?,
    })
}

/// Builds a `StatsRequest` frame (empty payload).
pub fn stats_request(id: u64) -> Frame {
    Frame {
        kind: FrameType::StatsRequest,
        id,
        payload: Vec::new(),
    }
}

/// Builds a `StatsResponse` frame around a JSON metric snapshot.
pub fn stats_response(id: u64, snapshot_json: &str) -> Frame {
    Frame {
        kind: FrameType::StatsResponse,
        id,
        payload: snapshot_json.as_bytes().to_vec(),
    }
}

/// Builds the `DocChunkStart` frame opening a chunked document transfer.
pub fn doc_chunk_start(id: u64, doc_name: &str) -> Frame {
    let name = doc_name.as_bytes();
    let mut payload = Vec::with_capacity(2 + name.len());
    payload.extend_from_slice(&(name.len().min(u16::MAX as usize) as u16).to_be_bytes());
    payload.extend_from_slice(name);
    Frame {
        kind: FrameType::DocChunkStart,
        id,
        payload,
    }
}

/// Decodes a `DocChunkStart` payload, returning the document name.
pub fn decode_chunk_start(payload: &[u8]) -> Result<String, WireError> {
    if payload.len() < 2 {
        return Err(WireError::Malformed(
            "chunk-start payload too short".to_owned(),
        ));
    }
    let len = u16::from_be_bytes([payload[0], payload[1]]) as usize;
    if payload.len() != 2 + len {
        return Err(WireError::Malformed(format!(
            "chunk-start name length {len} does not match payload ({} bytes left)",
            payload.len() - 2
        )));
    }
    String::from_utf8(payload[2..].to_vec())
        .map_err(|_| WireError::Malformed("chunk-start document name is not UTF-8".to_owned()))
}

/// Builds one `DocChunk` frame: sequence number + raw bytes.
pub fn doc_chunk(id: u64, seq: u32, data: &[u8]) -> Frame {
    let mut payload = Vec::with_capacity(4 + data.len());
    payload.extend_from_slice(&seq.to_be_bytes());
    payload.extend_from_slice(data);
    Frame {
        kind: FrameType::DocChunk,
        id,
        payload,
    }
}

/// Decodes a `DocChunk` payload, returning `(sequence number, bytes)`.
pub fn decode_chunk(payload: &[u8]) -> Result<(u32, &[u8]), WireError> {
    if payload.len() < 4 {
        return Err(WireError::Malformed("chunk payload too short".to_owned()));
    }
    let seq = u32::from_be_bytes(payload[0..4].try_into().expect("4 seq bytes"));
    Ok((seq, &payload[4..]))
}

/// Builds the `DocChunkEnd` frame closing a chunked transfer: chunk
/// count, cumulative byte length, and the FNV-64 digest of those bytes.
pub fn doc_chunk_end(id: u64, count: u32, total: u64, digest: u64) -> Frame {
    let mut payload = Vec::with_capacity(4 + 8 + 8);
    payload.extend_from_slice(&count.to_be_bytes());
    payload.extend_from_slice(&total.to_be_bytes());
    payload.extend_from_slice(&digest.to_be_bytes());
    Frame {
        kind: FrameType::DocChunkEnd,
        id,
        payload,
    }
}

/// Decodes a `DocChunkEnd` payload, returning `(count, total, digest)`.
pub fn decode_chunk_end(payload: &[u8]) -> Result<(u32, u64, u64), WireError> {
    if payload.len() != 20 {
        return Err(WireError::Malformed(format!(
            "chunk-end payload must be 20 bytes, got {}",
            payload.len()
        )));
    }
    let count = u32::from_be_bytes(payload[0..4].try_into().expect("4 count bytes"));
    let total = u64::from_be_bytes(payload[4..12].try_into().expect("8 total bytes"));
    let digest = u64::from_be_bytes(payload[12..20].try_into().expect("8 digest bytes"));
    Ok((count, total, digest))
}

/// Decodes a `Request`/`Response` payload as the UTF-8 envelope it carries.
pub fn decode_envelope(payload: &[u8]) -> Result<String, WireError> {
    String::from_utf8(payload.to_vec())
        .map_err(|_| WireError::Malformed("envelope is not UTF-8".to_owned()))
}

/// Applies read/write timeouts to a TCP stream (`None` disables them)
/// and turns Nagle off — frames are written whole and a request/reply
/// protocol has nothing to gain from coalescing, only latency to lose.
pub fn set_stream_timeouts(
    stream: &std::net::TcpStream,
    read: Option<Duration>,
    write: Option<Duration>,
) -> std::io::Result<()> {
    stream.set_read_timeout(read)?;
    stream.set_write_timeout(write)?;
    stream.set_nodelay(true)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let frames = [
            hello("client-a"),
            welcome("server-b"),
            request(7, "<env/>"),
            response(7, "<env/>"),
            fault(9, &WireFault::new(FaultCode::Busy, "queue full").retryable()),
            stats_request(11),
            stats_response(11, "{\"counters\":{}}"),
        ];
        for f in &frames {
            let mut buf = Vec::new();
            write_frame(&mut buf, f).unwrap();
            let back = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME).unwrap();
            assert_eq!(&back, f);
        }
    }

    #[test]
    fn handshake_payloads_decode() {
        let (v, name) = decode_hello(&hello("np.example.org").payload).unwrap();
        assert_eq!(v, VERSION);
        assert_eq!(name, "np.example.org");
        let (v, name) = decode_welcome(&welcome("archive").payload).unwrap();
        assert_eq!(v, VERSION);
        assert_eq!(name, "archive");
        assert_eq!(decode_hello(b"NOPE\x00\x01x"), Err(WireError::BadMagic));
        assert!(decode_hello(b"AX").is_err());
    }

    #[test]
    fn capability_suffix_roundtrips_and_stays_backward_compatible() {
        // Caps advertised and recovered, name clean.
        let h = hello_with("np.example.org", CAP_CHUNKED);
        let (v, name, caps) = decode_hello_caps(&h.payload).unwrap();
        assert_eq!((v, name.as_str(), caps), (VERSION, "np.example.org", CAP_CHUNKED));
        let w = welcome_with("archive", CAP_CHUNKED);
        let (v, name, caps) = decode_welcome_caps(&w.payload).unwrap();
        assert_eq!((v, name.as_str(), caps), (VERSION, "archive", CAP_CHUNKED));
        // Legacy payloads (no suffix) decode with caps == 0, and a zero
        // mask produces byte-identical legacy payloads.
        assert_eq!(hello_with("a", 0).payload, hello("a").payload);
        let (_, _, caps) = decode_hello_caps(&hello("a").payload).unwrap();
        assert_eq!(caps, 0);
        // The caps-blind decoder still yields a clean name.
        let (_, name) = decode_welcome(&w.payload).unwrap();
        assert_eq!(name, "archive");
    }

    #[test]
    fn chunk_frames_roundtrip() {
        for f in [
            doc_chunk_start(5, "reuters.xml"),
            doc_chunk(5, 0, b"<doc>"),
            doc_chunk(5, 1, b"</doc>"),
            doc_chunk_end(5, 2, 11, 0xdead_beef_cafe_f00d),
        ] {
            let mut buf = Vec::new();
            write_frame(&mut buf, &f).unwrap();
            let back = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME).unwrap();
            assert_eq!(back, f);
        }
        assert_eq!(
            decode_chunk_start(&doc_chunk_start(1, "n").payload).unwrap(),
            "n"
        );
        let frame = doc_chunk(1, 7, b"abc");
        assert_eq!(decode_chunk(&frame.payload).unwrap(), (7, &b"abc"[..]));
        assert_eq!(
            decode_chunk_end(&doc_chunk_end(1, 3, 99, 42).payload).unwrap(),
            (3, 99, 42)
        );
        // Truncated End payloads are typed malformed errors.
        assert!(matches!(
            decode_chunk_end(&[0u8; 12]),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(decode_chunk(&[0u8; 2]), Err(WireError::Malformed(_))));
        assert!(matches!(
            decode_chunk_start(&[0, 5, b'x']),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn fault_payload_roundtrip() {
        let f = WireFault::new(FaultCode::Timeout, "peer stalled").retryable();
        let frame = fault(3, &f);
        assert_eq!(decode_fault(&frame.payload).unwrap(), f);
        assert!(decode_fault(&[0]).is_err());
        assert!(decode_fault(&[42, 0]).is_err());
    }

    #[test]
    fn oversized_frames_rejected_before_allocation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &request(1, &"x".repeat(100))).unwrap();
        let err = read_frame(&mut buf.as_slice(), 10).unwrap_err();
        assert_eq!(err, WireError::TooLarge { len: 100, max: 10 });
    }

    #[test]
    fn truncated_streams_are_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &request(1, "hello")).unwrap();
        // Cut mid-payload: unexpected EOF, not a clean close.
        let cut = &buf[..buf.len() - 2];
        assert!(matches!(
            read_frame(&mut &cut[..], DEFAULT_MAX_FRAME),
            Err(WireError::Io(std::io::ErrorKind::UnexpectedEof, _))
        ));
        // Empty stream: clean close.
        assert_eq!(
            read_frame(&mut &[][..], DEFAULT_MAX_FRAME),
            Err(WireError::Closed)
        );
    }

    #[test]
    fn soap_code_mapping_roundtrips() {
        for code in [
            FaultCode::Client,
            FaultCode::Server,
            FaultCode::Busy,
            FaultCode::Timeout,
            FaultCode::TooLarge,
            FaultCode::BadFrame,
            FaultCode::Version,
            FaultCode::Shutdown,
        ] {
            assert_eq!(FaultCode::from_soap_code(code.as_soap_code()), code);
        }
        assert_eq!(
            FaultCode::from_soap_code("Client.Whatever"),
            FaultCode::Client
        );
        assert_eq!(FaultCode::from_soap_code("exotic"), FaultCode::Server);
    }

    #[test]
    fn unknown_frame_type_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &request(1, "x")).unwrap();
        buf[0] = 0x7f;
        assert_eq!(
            read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME),
            Err(WireError::UnknownFrameType(0x7f))
        );
    }
}
