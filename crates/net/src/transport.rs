//! Pluggable byte transport under the wire protocol.
//!
//! [`NetClient`](crate::NetClient) and [`NetServer`](crate::NetServer)
//! move frames over an abstract [`Transport`] — a factory for
//! bidirectional byte streams ([`Duplex`]) and listeners ([`Acceptor`]) —
//! instead of touching `std::net` directly. [`TcpTransport`] is the
//! production implementation and the default behind `NetClient::new` /
//! `NetServer::bind`; the deterministic simulator (`axml-sim`) supplies
//! an in-memory transport whose streams deliver exactly the bytes, delays
//! and failures a seeded fault schedule dictates, so the *same* framing,
//! handshake, retry and backpressure code paths run under simulation.
//!
//! Timeout semantics are part of the contract: a read that exceeds the
//! configured read timeout must fail with an [`std::io::Error`] of kind
//! `WouldBlock` or `TimedOut` (what `TcpStream` does), because
//! [`wire::read_frame`](crate::wire::read_frame) distinguishes *idle*
//! from *stalled mid-frame* by exactly those kinds.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One bidirectional byte stream (one connection).
///
/// Implementations must support *cloned handles*: [`Duplex::try_clone`]
/// returns a second handle onto the same stream, so one thread can block
/// in a read while another writes (the server's reply path) — exactly
/// `TcpStream::try_clone` semantics.
pub trait Duplex: Read + Write + Send {
    /// Sets the read timeout for subsequent reads on this handle.
    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()>;

    /// Sets the write timeout for subsequent writes on this handle.
    fn set_write_timeout(&self, d: Option<Duration>) -> io::Result<()>;

    /// A second handle onto the same underlying stream.
    fn try_clone(&self) -> io::Result<Box<dyn Duplex>>;

    /// Shuts the stream down in both directions, unblocking any handle
    /// parked in a read.
    fn shutdown(&self) -> io::Result<()>;
}

/// A bound listener handing out [`Duplex`] connections.
///
/// `accept` is **non-blocking**: when no connection is pending it returns
/// an error of kind [`io::ErrorKind::WouldBlock`] and the accept loop
/// polls (this is how graceful shutdown stays bounded).
pub trait Acceptor: Send {
    /// The endpoint this listener is bound to, in the transport's own
    /// notation (`"127.0.0.1:4321"` for TCP, a peer name for the sim).
    fn local_endpoint(&self) -> String;

    /// The bound socket address, when the transport is IP-based.
    fn local_addr(&self) -> Option<SocketAddr> {
        None
    }

    /// Accepts one pending connection, or fails with `WouldBlock`.
    fn accept(&self) -> io::Result<Box<dyn Duplex>>;
}

/// A connection factory: the client dials through it, the server binds.
pub trait Transport: Send + Sync {
    /// Dials `endpoint`, bounded by `timeout`.
    fn connect(&self, endpoint: &str, timeout: Duration) -> io::Result<Box<dyn Duplex>>;

    /// Binds a listener on `endpoint`.
    fn bind(&self, endpoint: &str) -> io::Result<Box<dyn Acceptor>>;
}

/// The production transport: real TCP sockets.
#[derive(Debug, Default, Clone, Copy)]
pub struct TcpTransport;

fn resolve(endpoint: &str) -> io::Result<SocketAddr> {
    endpoint.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::AddrNotAvailable,
            format!("{endpoint} resolved to nothing"),
        )
    })
}

impl Transport for TcpTransport {
    fn connect(&self, endpoint: &str, timeout: Duration) -> io::Result<Box<dyn Duplex>> {
        let stream = TcpStream::connect_timeout(&resolve(endpoint)?, timeout)?;
        Ok(Box::new(stream))
    }

    fn bind(&self, endpoint: &str) -> io::Result<Box<dyn Acceptor>> {
        let listener = TcpListener::bind(endpoint)?;
        listener.set_nonblocking(true)?;
        Ok(Box::new(TcpAcceptor { listener }))
    }
}

impl Duplex for TcpStream {
    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, d)
    }

    fn set_write_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, d)
    }

    fn try_clone(&self) -> io::Result<Box<dyn Duplex>> {
        Ok(Box::new(TcpStream::try_clone(self)?))
    }

    fn shutdown(&self) -> io::Result<()> {
        TcpStream::shutdown(self, Shutdown::Both)
    }
}

/// A non-blocking [`TcpListener`] as an [`Acceptor`].
pub struct TcpAcceptor {
    listener: TcpListener,
}

impl Acceptor for TcpAcceptor {
    fn local_endpoint(&self) -> String {
        self.listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "tcp:unbound".to_owned())
    }

    fn local_addr(&self) -> Option<SocketAddr> {
        self.listener.local_addr().ok()
    }

    fn accept(&self) -> io::Result<Box<dyn Duplex>> {
        let (stream, _peer) = self.listener.accept()?;
        Ok(Box::new(stream))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_transport_round_trips_bytes() {
        let transport = TcpTransport;
        let acceptor = transport.bind("127.0.0.1:0").unwrap();
        let endpoint = acceptor.local_endpoint();
        assert!(acceptor.local_addr().is_some());
        // Nothing pending yet: the acceptor must not block.
        match acceptor.accept() {
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::WouldBlock),
            Ok(_) => panic!("accept succeeded with nothing pending"),
        }

        let mut dialed = transport
            .connect(&endpoint, Duration::from_secs(2))
            .unwrap();
        let mut accepted = loop {
            match acceptor.accept() {
                Ok(s) => break s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => panic!("accept failed: {e}"),
            }
        };
        dialed.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        accepted.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        // A cloned handle reads what the original's peer writes.
        let mut clone = dialed.try_clone().unwrap();
        accepted.write_all(b"pong").unwrap();
        clone.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn timed_out_reads_report_wouldblock_or_timedout() {
        let transport = TcpTransport;
        let acceptor = transport.bind("127.0.0.1:0").unwrap();
        let dialed = transport
            .connect(&acceptor.local_endpoint(), Duration::from_secs(2))
            .unwrap();
        dialed
            .set_read_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        let mut buf = [0u8; 1];
        let mut reader = dialed.try_clone().unwrap();
        let err = reader.read_exact(&mut buf).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "read timeout surfaced as {err:?}"
        );
    }
}
