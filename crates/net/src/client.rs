//! The client half of the wire protocol: pooled connections with
//! handshakes, timeouts, and bounded retry-with-backoff.
//!
//! A [`NetClient`] targets one remote daemon. Connections are dialed
//! lazily, handshaken once, and returned to an idle pool after each
//! successful call — so a burst of calls reuses sockets instead of
//! re-dialing. Failures are classified:
//!
//! * **retryable faults** (`Busy`, `Timeout`, `Shutdown`, or any fault the
//!   server flagged retryable) and transport errors trigger a bounded
//!   retry with exponential backoff plus *deterministic* jitter drawn from
//!   [`axml_support::rng`] — every client seeded identically backs off
//!   identically, which keeps the loopback tests and benches reproducible;
//! * non-retryable faults surface immediately as
//!   [`ClientError::Fault`].
//!
//! Every call is additionally bounded by a **total deadline**
//! ([`ClientConfig::deadline`]) spanning all attempts, backoff sleeps and
//! dials: per-attempt socket timeouts are clamped to the remaining
//! budget, and when it runs out the call fails with the typed
//! [`ClientError::Deadline`] instead of letting `attempts ×
//! read_timeout` of wall time accumulate.
//!
//! The client is generic over [`Transport`]: `NetClient::new` dials real
//! TCP, while [`NetClient::with_transport`] accepts any transport and
//! [`Clock`] — the deterministic simulator injects an in-memory network
//! and virtual time, exercising these exact retry/backoff/deadline paths.

use crate::transport::{Duplex, TcpTransport, Transport};
use crate::wire::{self, FrameType, WireError, WireFault};
use axml_support::clock::Clock;
use axml_support::hash::Fnv64;
use axml_support::rng::{RngExt, SeedableRng, StdRng};
use axml_support::sync::Mutex;
use std::io::BufReader;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tuning knobs for a [`NetClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Name announced in the `Hello` handshake frame.
    pub name: String,
    /// Dial timeout for new connections.
    pub connect_timeout: Duration,
    /// Socket read timeout while waiting for a reply.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Total per-call budget across *all* attempts, including backoff
    /// sleeps and re-dials. Attempt-level timeouts are clamped to what
    /// remains; an exhausted budget fails the call with
    /// [`ClientError::Deadline`].
    pub deadline: Duration,
    /// Maximum accepted frame payload, in bytes.
    pub max_frame: usize,
    /// Total attempts per call (1 = no retries).
    pub attempts: u32,
    /// Base backoff; attempt `n` sleeps `base * 2^n` plus jitter.
    pub backoff: Duration,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
    /// Idle connections kept for reuse.
    pub pool: usize,
    /// Metric registry the client publishes into (`client.*` catalogue
    /// entries). Defaults to the process-wide registry; tests inject a
    /// fresh one for isolation.
    pub metrics: axml_obs::Registry,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            name: "axml-client".to_owned(),
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            deadline: Duration::from_secs(30),
            max_frame: wire::DEFAULT_MAX_FRAME,
            attempts: 3,
            backoff: Duration::from_millis(10),
            seed: 0xA_0E11,
            pool: 4,
            metrics: axml_obs::global(),
        }
    }
}

/// Errors surfaced by [`NetClient::call`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The remote answered with a typed fault (after exhausting retries if
    /// it was retryable).
    Fault(WireFault),
    /// The transport failed (after exhausting retries).
    Wire(WireError),
    /// The handshake failed (bad magic/version/unexpected frame).
    Handshake(String),
    /// The total per-call deadline ([`ClientConfig::deadline`]) elapsed
    /// before any attempt succeeded.
    Deadline {
        /// The configured total budget.
        budget: Duration,
        /// The failure of the last attempt, if one completed.
        last: Option<Box<ClientError>>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Fault(fault) => write!(f, "{fault}"),
            ClientError::Wire(e) => write!(f, "transport: {e}"),
            ClientError::Handshake(m) => write!(f, "handshake failed: {m}"),
            ClientError::Deadline { budget, last } => {
                write!(f, "call deadline of {budget:?} exhausted")?;
                if let Some(last) = last {
                    write!(f, " (last attempt: {last})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ClientError {}

struct Conn {
    reader: BufReader<Box<dyn Duplex>>,
    writer: Box<dyn Duplex>,
    /// Name the remote daemon announced in its `Welcome`.
    server_name: String,
    /// Capability bits the remote daemon advertised (`CAP_*`). An old
    /// peer's legacy `Welcome` decodes as zero.
    server_caps: u8,
}

/// Pre-resolved handles onto the `client.*` catalogue entries.
struct Metrics {
    calls: axml_obs::Counter,
    attempts: axml_obs::Counter,
    retries: axml_obs::Counter,
    faults: axml_obs::Counter,
    call_ns: axml_obs::Histogram,
}

impl Metrics {
    fn new(r: &axml_obs::Registry) -> Self {
        Metrics {
            calls: r.counter("client.calls_total"),
            attempts: r.counter("client.attempts_total"),
            retries: r.counter("client.retries_total"),
            faults: r.counter("client.faults_total"),
            call_ns: r.histogram("client.call_ns", axml_obs::LATENCY_NS_BOUNDS),
        }
    }
}

/// A pooled client for one remote daemon.
pub struct NetClient {
    endpoint: String,
    tcp_addr: Option<SocketAddr>,
    transport: Arc<dyn Transport>,
    clock: Arc<dyn Clock>,
    config: ClientConfig,
    idle: Mutex<Vec<Conn>>,
    next_id: AtomicU64,
    jitter: Mutex<StdRng>,
    metrics: Metrics,
}

impl NetClient {
    /// Creates a TCP client for `addr` (connections are dialed lazily).
    pub fn new(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<NetClient, ClientError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| ClientError::Wire(e.into()))?
            .next()
            .ok_or_else(|| {
                ClientError::Wire(WireError::Malformed("address resolved to nothing".to_owned()))
            })?;
        let mut client = NetClient::with_transport(
            addr.to_string(),
            Arc::new(TcpTransport),
            axml_support::clock::system(),
            config,
        );
        client.tcp_addr = Some(addr);
        Ok(client)
    }

    /// Creates a client dialing `endpoint` through an explicit transport
    /// and clock — how the deterministic simulator runs this exact client
    /// over an in-memory network and virtual time.
    pub fn with_transport(
        endpoint: impl Into<String>,
        transport: Arc<dyn Transport>,
        clock: Arc<dyn Clock>,
        config: ClientConfig,
    ) -> NetClient {
        let seed = config.seed;
        let metrics = Metrics::new(&config.metrics);
        NetClient {
            endpoint: endpoint.into(),
            tcp_addr: None,
            transport,
            clock,
            config,
            idle: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            jitter: Mutex::new(StdRng::seed_from_u64(seed)),
            metrics,
        }
    }

    /// The endpoint this client dials, in the transport's notation.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// The remote socket address. Panics when the client was built over a
    /// non-TCP transport ([`NetClient::with_transport`]); use
    /// [`NetClient::endpoint`] there.
    pub fn remote_addr(&self) -> SocketAddr {
        self.tcp_addr.expect("client is not on a TCP transport")
    }

    /// Number of idle pooled connections (for tests).
    pub fn pooled(&self) -> usize {
        self.idle.lock().len()
    }

    /// Budget still available `started` nanoseconds into a call.
    fn remaining(&self, started: u64) -> Duration {
        let elapsed = Duration::from_nanos(self.clock.now_ns().saturating_sub(started));
        self.config.deadline.saturating_sub(elapsed)
    }

    fn dial(&self, remaining: Duration) -> Result<Conn, ClientError> {
        let stream = self
            .transport
            .connect(&self.endpoint, self.config.connect_timeout.min(remaining))
            .map_err(|e| ClientError::Wire(e.into()))?;
        stream
            .set_read_timeout(Some(self.config.read_timeout.min(remaining)))
            .and_then(|()| stream.set_write_timeout(Some(self.config.write_timeout)))
            .map_err(|e| ClientError::Wire(e.into()))?;
        let mut writer = stream
            .try_clone()
            .map_err(|e| ClientError::Wire(e.into()))?;
        let mut reader = BufReader::new(stream);
        wire::write_frame(
            &mut writer,
            &wire::hello_with(&self.config.name, wire::CAP_CHUNKED),
        )
        .map_err(ClientError::Wire)?;
        let frame = wire::read_frame(&mut reader, self.config.max_frame).map_err(|e| {
            ClientError::Handshake(format!("no Welcome from {}: {e}", self.endpoint))
        })?;
        match frame.kind {
            FrameType::Welcome => {
                let (version, server_name, server_caps) =
                    wire::decode_welcome_caps(&frame.payload).map_err(|e| {
                        ClientError::Handshake(format!("bad Welcome payload: {e}"))
                    })?;
                if version != wire::VERSION {
                    return Err(ClientError::Handshake(format!(
                        "server speaks version {version}, client {}",
                        wire::VERSION
                    )));
                }
                Ok(Conn {
                    reader,
                    writer,
                    server_name,
                    server_caps,
                })
            }
            FrameType::Fault => {
                let fault = wire::decode_fault(&frame.payload)
                    .unwrap_or_else(|e| WireFault::new(wire::FaultCode::BadFrame, e.to_string()));
                Err(ClientError::Handshake(fault.to_string()))
            }
            other => Err(ClientError::Handshake(format!(
                "expected Welcome, got {other:?}"
            ))),
        }
    }

    fn checkout(&self, remaining: Duration) -> Result<Conn, ClientError> {
        if let Some(conn) = self.idle.lock().pop() {
            return Ok(conn);
        }
        self.dial(remaining)
    }

    fn checkin(&self, conn: Conn) {
        let mut idle = self.idle.lock();
        if idle.len() < self.config.pool {
            idle.push(conn);
        }
    }

    /// The name of the remote daemon, learned from the handshake (dials a
    /// connection if none is pooled).
    pub fn server_name(&self) -> Result<String, ClientError> {
        let conn = self.checkout(self.config.deadline)?;
        let name = conn.server_name.clone();
        self.checkin(conn);
        Ok(name)
    }

    /// The capability bits the remote daemon advertised in its `Welcome`
    /// (dials a connection if none is pooled). An old peer that predates
    /// capabilities reports zero — callers fall back to single-frame
    /// shipping when [`wire::CAP_CHUNKED`] is absent.
    pub fn server_caps(&self) -> Result<u8, ClientError> {
        let conn = self.checkout(self.config.deadline)?;
        let caps = conn.server_caps;
        self.checkin(conn);
        Ok(caps)
    }

    /// Backoff before retry `attempt` (1-based): `base * 2^(attempt-1)`
    /// plus a deterministic jitter of up to one base interval.
    fn backoff_for(&self, attempt: u32) -> Duration {
        let base = self.config.backoff;
        let exp = base.saturating_mul(1u32 << (attempt - 1).min(10));
        let jitter_us = if base.as_micros() == 0 {
            0
        } else {
            self.jitter
                .lock()
                .random_range(0..base.as_micros() as u64)
        };
        exp + Duration::from_micros(jitter_us)
    }

    /// Sends one request envelope and waits for the matching reply.
    ///
    /// Retries transport failures and retryable faults up to the
    /// configured attempt budget, re-dialing as needed, all within the
    /// total [`ClientConfig::deadline`].
    pub fn call(&self, envelope: &str) -> Result<String, ClientError> {
        self.call_impl(None, envelope)
    }

    /// Like [`NetClient::call`], but stamps `id` on the request frame
    /// instead of drawing from the client's own sequence — used by the
    /// peer layer to correlate sender and receiver span trees. Retries
    /// reuse `id`: a failed attempt never leaves its connection in the
    /// pool, so a late reply can never be mistaken for a fresh one.
    pub fn call_with_id(&self, id: u64, envelope: &str) -> Result<String, ClientError> {
        self.call_impl(Some(id), envelope)
    }

    /// Ships one document as a chunked transfer
    /// (`DocChunkStart`/`DocChunk`/`DocChunkEnd`) and waits for the
    /// server's reply, retrying like [`NetClient::call`].
    ///
    /// `produce` is invoked once per attempt with an [`std::io::Write`]
    /// sink; whatever it writes is cut into `chunk_bytes`-sized frames as
    /// it streams — the client never materializes the document, so peak
    /// sender memory is O(`chunk_bytes`) plus whatever the producer
    /// itself buffers. The server must advertise [`wire::CAP_CHUNKED`];
    /// check [`NetClient::server_caps`] first to fall back to a
    /// single-frame call against old peers.
    pub fn send_document_chunked(
        &self,
        id: Option<u64>,
        name: &str,
        chunk_bytes: usize,
        mut produce: impl FnMut(&mut dyn std::io::Write) -> std::io::Result<()>,
    ) -> Result<String, ClientError> {
        // A chunk frame carries a 4-byte sequence number before the data.
        let chunk = chunk_bytes.clamp(1, self.config.max_frame.saturating_sub(4).max(1));
        self.run_call(|started| self.chunked_once(id, name, chunk, &mut produce, started))
    }

    fn chunked_once(
        &self,
        id: Option<u64>,
        name: &str,
        chunk: usize,
        produce: &mut impl FnMut(&mut dyn std::io::Write) -> std::io::Result<()>,
        started: u64,
    ) -> Result<String, ClientError> {
        let mut conn = self.checkout(self.remaining(started))?;
        if conn.server_caps & wire::CAP_CHUNKED == 0 {
            // Non-retryable: the peer will not grow the capability
            // between attempts. Callers use `server_caps` to pick the
            // single-frame path instead.
            return Err(ClientError::Handshake(format!(
                "server '{}' does not support chunked transfers",
                conn.server_name
            )));
        }
        let id = id.unwrap_or_else(|| self.next_id.fetch_add(1, Ordering::Relaxed));
        wire::write_frame(&mut conn.writer, &wire::doc_chunk_start(id, name))
            .map_err(ClientError::Wire)?;
        let (count, total, digest) = {
            let mut sink = ChunkSink {
                writer: &mut conn.writer,
                id,
                chunk,
                buf: Vec::new(),
                seq: 0,
                total: 0,
                digest: Fnv64::new(),
            };
            // A mid-stream producer failure leaves the transfer half-sent;
            // the connection is dropped (never pooled), which the server
            // accounts as an abort. The retry loop re-dials and re-invokes
            // the producer from the top.
            produce(&mut sink).map_err(|e| ClientError::Wire(e.into()))?;
            sink.finish().map_err(ClientError::Wire)?
        };
        wire::write_frame(
            &mut conn.writer,
            &wire::doc_chunk_end(id, count, total, digest),
        )
        .map_err(ClientError::Wire)?;
        self.read_reply(conn, id, started)
    }

    fn call_impl(&self, id: Option<u64>, envelope: &str) -> Result<String, ClientError> {
        self.run_call(|started| self.call_once(id, envelope, started))
    }

    /// The shared retry scaffold: counts the call, runs `attempt` under
    /// the attempt budget and total deadline with backoff between tries,
    /// and records the latency histogram. Both the single-frame and the
    /// chunked paths go through here so their retry/deadline semantics
    /// cannot drift.
    fn run_call(
        &self,
        mut attempt_once: impl FnMut(u64) -> Result<String, ClientError>,
    ) -> Result<String, ClientError> {
        let started = self.clock.now_ns();
        self.metrics.calls.inc();
        let deadline = |last: Option<ClientError>| ClientError::Deadline {
            budget: self.config.deadline,
            last: last.map(Box::new),
        };
        let result = (|| {
            let mut last: Option<ClientError> = None;
            for attempt in 1..=self.config.attempts.max(1) {
                if attempt > 1 {
                    // The backoff sleep itself must fit the budget; a
                    // retry we could start but never finish is wasted.
                    let pause = self.backoff_for(attempt - 1);
                    if pause >= self.remaining(started) {
                        return Err(deadline(last));
                    }
                    self.metrics.retries.inc();
                    self.clock.sleep(pause);
                }
                let remaining = self.remaining(started);
                if remaining.is_zero() {
                    return Err(deadline(last));
                }
                self.metrics.attempts.inc();
                match attempt_once(started) {
                    Ok(reply) => return Ok(reply),
                    Err(e) => {
                        let retryable = match &e {
                            ClientError::Fault(f) => f.retryable,
                            ClientError::Wire(_) => true,
                            ClientError::Handshake(_) => false,
                            ClientError::Deadline { .. } => false,
                        };
                        if !retryable {
                            return Err(e);
                        }
                        last = Some(e);
                    }
                }
            }
            Err(last.unwrap_or_else(|| {
                ClientError::Wire(WireError::Malformed("no attempts configured".to_owned()))
            }))
        })();
        if result.is_err() {
            self.metrics.faults.inc();
        }
        self.metrics
            .call_ns
            .observe(self.clock.now_ns().saturating_sub(started));
        result
    }

    fn call_once(&self, id: Option<u64>, envelope: &str, started: u64) -> Result<String, ClientError> {
        let mut conn = self.checkout(self.remaining(started))?;
        let id = id.unwrap_or_else(|| self.next_id.fetch_add(1, Ordering::Relaxed));
        if let Err(e) = wire::write_frame(&mut conn.writer, &wire::request(id, envelope)) {
            // A pooled connection may have been closed by the server;
            // the retry loop will re-dial.
            return Err(ClientError::Wire(e));
        }
        self.read_reply(conn, id, started)
    }

    /// Waits for the reply to request `id`, skipping frames other calls
    /// own, within the call's remaining deadline. Consumes the connection
    /// and pools it back only on a framed outcome (response, or a fault
    /// addressed to this request).
    fn read_reply(&self, mut conn: Conn, id: u64, started: u64) -> Result<String, ClientError> {
        loop {
            // Clamp every wait to the remaining call budget, so the total
            // deadline holds however many frames we must skip.
            let remaining = self.remaining(started);
            if remaining.is_zero() {
                return Err(ClientError::Wire(WireError::Stalled));
            }
            conn.reader
                .get_ref()
                .set_read_timeout(Some(self.config.read_timeout.min(remaining)))
                .map_err(|e| ClientError::Wire(e.into()))?;
            let frame = match wire::read_frame(&mut conn.reader, self.config.max_frame) {
                Ok(f) => f,
                Err(WireError::Idle | WireError::Stalled) => {
                    return Err(ClientError::Wire(WireError::Stalled));
                }
                Err(e) => return Err(ClientError::Wire(e)),
            };
            match frame.kind {
                FrameType::Response if frame.id == id => {
                    let reply =
                        wire::decode_envelope(&frame.payload).map_err(ClientError::Wire)?;
                    self.checkin(conn);
                    return Ok(reply);
                }
                // Faults with id 0 are connection-level (the stream is no
                // longer framed): terminal, and the connection is dropped.
                // A fault for *this* request leaves the connection framed
                // and reusable.
                FrameType::Fault if frame.id == id || frame.id == 0 => {
                    let fault = wire::decode_fault(&frame.payload).map_err(ClientError::Wire)?;
                    if frame.id == id {
                        self.checkin(conn);
                    }
                    return Err(ClientError::Fault(fault));
                }
                // A reply or fault for a request this call does not own —
                // pipelined by another thread's aborted call, or a
                // duplicate the network delivered twice: skip it. (Found
                // by the simulator's duplication fault: a stale fault
                // must not poison the next call on a pooled connection.)
                FrameType::Response | FrameType::Fault => continue,
                other => {
                    return Err(ClientError::Wire(WireError::Malformed(format!(
                        "unexpected {other:?} frame while awaiting a reply"
                    ))));
                }
            }
        }
    }

    /// Scrapes the remote daemon's metric registry over a `StatsRequest`
    /// frame and parses the JSON snapshot it answers with.
    pub fn stats(&self) -> Result<axml_obs::Snapshot, ClientError> {
        let text = self.stats_json()?;
        axml_obs::Snapshot::parse_json(&text)
            .map_err(|e| ClientError::Wire(WireError::Malformed(e.to_string())))
    }

    /// Like [`NetClient::stats`], but returns the raw JSON snapshot.
    pub fn stats_json(&self) -> Result<String, ClientError> {
        let mut conn = self.checkout(self.config.deadline)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        wire::write_frame(&mut conn.writer, &wire::stats_request(id))
            .map_err(ClientError::Wire)?;
        loop {
            let frame = match wire::read_frame(&mut conn.reader, self.config.max_frame) {
                Ok(f) => f,
                Err(WireError::Idle | WireError::Stalled) => {
                    return Err(ClientError::Wire(WireError::Stalled));
                }
                Err(e) => return Err(ClientError::Wire(e)),
            };
            match frame.kind {
                FrameType::StatsResponse if frame.id == id => {
                    let text =
                        wire::decode_envelope(&frame.payload).map_err(ClientError::Wire)?;
                    self.checkin(conn);
                    return Ok(text);
                }
                FrameType::Fault if frame.id == id || frame.id == 0 => {
                    let fault = wire::decode_fault(&frame.payload).map_err(ClientError::Wire)?;
                    if frame.id == id {
                        self.checkin(conn);
                    }
                    return Err(ClientError::Fault(fault));
                }
                // Stray replies/faults for aborted pipelined calls: skip.
                FrameType::Response | FrameType::StatsResponse | FrameType::Fault => continue,
                other => {
                    return Err(ClientError::Wire(WireError::Malformed(format!(
                        "unexpected {other:?} frame while awaiting a stats reply"
                    ))));
                }
            }
        }
    }
}

/// An [`std::io::Write`] that cuts its input into `DocChunk` frames as
/// bytes arrive, tracking the sequence number, cumulative length, and
/// running FNV-64 digest the closing `DocChunkEnd` must declare. Holds at
/// most one chunk of data at a time.
struct ChunkSink<'a> {
    writer: &'a mut Box<dyn Duplex>,
    id: u64,
    chunk: usize,
    buf: Vec<u8>,
    seq: u32,
    total: u64,
    digest: Fnv64,
}

impl ChunkSink<'_> {
    fn emit(&mut self, piece: &[u8]) -> Result<(), WireError> {
        self.digest.update(piece);
        self.total += piece.len() as u64;
        wire::write_frame(self.writer, &wire::doc_chunk(self.id, self.seq, piece))?;
        self.seq += 1;
        Ok(())
    }

    /// Flushes the final partial chunk and returns what `DocChunkEnd`
    /// must carry: `(count, total bytes, digest)`.
    fn finish(mut self) -> Result<(u32, u64, u64), WireError> {
        if !self.buf.is_empty() {
            let piece = std::mem::take(&mut self.buf);
            self.emit(&piece)?;
        }
        Ok((self.seq, self.total, self.digest.finish()))
    }
}

impl std::io::Write for ChunkSink<'_> {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        while self.buf.len() >= self.chunk {
            let rest = self.buf.split_off(self.chunk);
            let piece = std::mem::replace(&mut self.buf, rest);
            self.emit(&piece)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::Other, e.to_string()))?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        // Partial chunks are held until `finish`: flushing them early
        // would change the chunk boundaries the peer observes.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Handler, NetServer, ServerConfig};
    use crate::wire::FaultCode;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    fn echo() -> Arc<dyn Handler> {
        Arc::new(|_: u64, envelope: &str| Ok(format!("echo:{envelope}")))
    }

    #[test]
    fn call_reuses_pooled_connections() {
        let server = NetServer::bind("127.0.0.1:0", echo(), ServerConfig::default()).unwrap();
        let client = NetClient::new(server.local_addr(), ClientConfig::default()).unwrap();
        for i in 0..10 {
            assert_eq!(client.call(&format!("m{i}")).unwrap(), format!("echo:m{i}"));
        }
        assert_eq!(client.pooled(), 1, "all calls shared one socket");
        assert_eq!(
            server.stats().accepted.load(Ordering::Relaxed),
            1,
            "no re-dialing"
        );
        assert_eq!(client.server_name().unwrap(), "axml-peer");
        server.shutdown().unwrap();
    }

    #[test]
    fn retryable_faults_are_retried_with_backoff() {
        // Fails twice with a retryable fault, then succeeds.
        let calls = Arc::new(AtomicU32::new(0));
        let calls2 = Arc::clone(&calls);
        let handler: Arc<dyn Handler> = Arc::new(move |_: u64, envelope: &str| {
            if calls2.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(WireFault::new(FaultCode::Busy, "try later").retryable())
            } else {
                Ok(envelope.to_owned())
            }
        });
        let server = NetServer::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap();
        let registry = axml_obs::Registry::new();
        let client = NetClient::new(
            server.local_addr(),
            ClientConfig {
                attempts: 3,
                backoff: Duration::from_millis(1),
                metrics: registry.clone(),
                ..ClientConfig::default()
            },
        )
        .unwrap();
        assert_eq!(client.call("ok").unwrap(), "ok");
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("client.calls_total"), 1);
        assert_eq!(snap.counter("client.attempts_total"), 3);
        assert_eq!(snap.counter("client.retries_total"), 2);
        assert_eq!(snap.counter("client.faults_total"), 0);
        server.shutdown().unwrap();
    }

    #[test]
    fn non_retryable_faults_surface_immediately() {
        let calls = Arc::new(AtomicU32::new(0));
        let calls2 = Arc::clone(&calls);
        let handler: Arc<dyn Handler> = Arc::new(move |_: u64, _: &str| {
            calls2.fetch_add(1, Ordering::SeqCst);
            Err(WireFault::new(FaultCode::Client, "bad request"))
        });
        let server = NetServer::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap();
        let client = NetClient::new(server.local_addr(), ClientConfig::default()).unwrap();
        let err = client.call("x").unwrap_err();
        assert!(matches!(err, ClientError::Fault(ref f) if f.code == FaultCode::Client));
        assert_eq!(calls.load(Ordering::SeqCst), 1, "no retry");
        server.shutdown().unwrap();
    }

    #[test]
    fn retries_are_exhausted_against_a_dead_address() {
        // Bind a listener, learn its port, drop it: connections now fail.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = NetClient::new(
            addr,
            ClientConfig {
                attempts: 2,
                backoff: Duration::from_millis(1),
                connect_timeout: Duration::from_millis(200),
                ..ClientConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            client.call("x").unwrap_err(),
            ClientError::Wire(_)
        ));
    }

    #[test]
    fn deadline_bounds_total_call_time_across_retries() {
        // Every attempt faults retryably; a generous attempt budget must
        // still be cut short by the total deadline.
        let handler: Arc<dyn Handler> = Arc::new(move |_: u64, _: &str| {
            Err(WireFault::new(FaultCode::Busy, "always busy").retryable())
        });
        let server = NetServer::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap();
        let deadline = Duration::from_millis(120);
        let client = NetClient::new(
            server.local_addr(),
            ClientConfig {
                attempts: 1000,
                backoff: Duration::from_millis(20),
                deadline,
                metrics: axml_obs::Registry::new(),
                ..ClientConfig::default()
            },
        )
        .unwrap();
        let started = std::time::Instant::now();
        let err = client.call("x").unwrap_err();
        let elapsed = started.elapsed();
        assert!(
            matches!(err, ClientError::Deadline { budget, last: Some(_) } if budget == deadline),
            "expected a deadline error carrying the last fault, got {err:?}"
        );
        // Wall time is bounded by the deadline plus modest scheduling
        // slack — not by attempts × backoff.
        assert!(
            elapsed < deadline + Duration::from_secs(2),
            "call ran {elapsed:?} against a {deadline:?} deadline"
        );
        server.shutdown().unwrap();
    }

    struct StoreDoc;

    impl Handler for StoreDoc {
        fn handle(&self, _id: u64, envelope: &str) -> Result<String, WireFault> {
            Ok(format!("echo:{envelope}"))
        }
        fn handle_document(
            &self,
            _id: u64,
            name: &str,
            text: &str,
        ) -> Result<String, WireFault> {
            Ok(format!("got:{name}:{}", text.len()))
        }
    }

    #[test]
    fn chunked_send_streams_the_document_and_gets_the_reply() {
        let server =
            NetServer::bind("127.0.0.1:0", Arc::new(StoreDoc), ServerConfig::default()).unwrap();
        let client = NetClient::new(server.local_addr(), ClientConfig::default()).unwrap();
        assert_ne!(client.server_caps().unwrap() & wire::CAP_CHUNKED, 0);
        let doc = "<doc>".to_string() + &"payload ".repeat(20_000) + "</doc>";
        let reply = client
            .send_document_chunked(Some(42), "news.xml", 1024, |w| {
                // Stream in odd-sized pieces so chunk boundaries never
                // align with write boundaries.
                for piece in doc.as_bytes().chunks(333) {
                    w.write_all(piece)?;
                }
                Ok(())
            })
            .unwrap();
        assert_eq!(reply, format!("got:news.xml:{}", doc.len()));
        assert_eq!(client.pooled(), 1, "the transfer connection was pooled back");
        server.shutdown().unwrap();
    }

    #[test]
    fn chunked_send_against_a_legacy_peer_fails_fast() {
        // A hand-rolled peer that answers with a pre-capability Welcome.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let legacy = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let hello = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
            assert_eq!(hello.kind, FrameType::Hello);
            let mut writer = stream;
            wire::write_frame(&mut writer, &wire::welcome("old-peer")).unwrap();
            // Hold the socket open until the client has decided.
            let _ = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME);
        });
        let client = NetClient::new(addr, ClientConfig::default()).unwrap();
        assert_eq!(client.server_caps().unwrap(), 0);
        let err = client
            .send_document_chunked(None, "d.xml", 64, |w| w.write_all(b"<d/>"))
            .unwrap_err();
        assert!(
            matches!(err, ClientError::Handshake(ref m) if m.contains("chunked")),
            "expected a fast non-retryable refusal, got {err:?}"
        );
        drop(client);
        legacy.join().unwrap();
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let server = NetServer::bind("127.0.0.1:0", echo(), ServerConfig::default()).unwrap();
        let mk = |seed| {
            NetClient::new(
                server.local_addr(),
                ClientConfig {
                    seed,
                    ..ClientConfig::default()
                },
            )
            .unwrap()
        };
        let (a, b) = (mk(42), mk(42));
        let seq_a: Vec<Duration> = (1..=4).map(|i| a.backoff_for(i)).collect();
        let seq_b: Vec<Duration> = (1..=4).map(|i| b.backoff_for(i)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same jitter");
        // Exponential growth dominates the one-base-interval jitter.
        assert!(seq_a[3] > seq_a[0]);
        server.shutdown().unwrap();
    }
}
