//! From-scratch XML toolkit for the Active XML system.
//!
//! The SIGMOD 2003 paper exchanges *intensional* XML documents — ordinary,
//! well-formed XML in which embedded service calls are encoded as elements
//! in a dedicated namespace (`int:fun`, see Sec. 7 of the paper). This crate
//! supplies the XML substrate those documents live on:
//!
//! * a compact owned tree model ([`Document`], [`Element`], [`Node`]),
//! * qualified names and namespace scoping ([`QName`], [`NsScope`]),
//! * a streaming pull parser ([`Reader`], [`Event`]) plus a DOM builder
//!   ([`parse_document`]),
//! * a serializer with compact and pretty modes ([`write_document`],
//!   [`Element::to_xml`]).
//!
//! The parser covers the XML 1.0 features the system needs: prolog,
//! elements, attributes (both quote styles), character data, CDATA sections,
//! comments, processing instructions, the five predefined entities, numeric
//! character references, and namespace declarations. DTD internal subsets
//! are intentionally not supported (the paper's system types documents with
//! XML Schema, never DTD files).
//!
//! ```
//! use axml_xml::parse_document;
//!
//! let doc = parse_document(
//!     "<newspaper><title>The Sun</title><date>04/10/2002</date></newspaper>",
//! ).unwrap();
//! assert_eq!(doc.root.name.local, "newspaper");
//! assert_eq!(doc.root.children.len(), 2);
//! let round = doc.root.to_xml();
//! assert!(round.contains("<title>The Sun</title>"));
//! ```

#![warn(missing_docs)]

mod escape;
mod model;
mod reader;
mod writer;

pub use escape::{escape_attr, escape_text, unescape};
pub use model::{Attribute, Document, Element, Node, NsScope, QName};
pub use reader::{parse_document, Event, Reader, XmlError};
pub use writer::{element_to_string, write_document, StreamWriter, WriteOptions};
