//! Streaming pull parser and DOM builder.

use crate::escape::unescape;
use crate::model::{Attribute, Document, Element, Node, NsScope, QName};
use std::borrow::Cow;
use std::fmt;

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset where the error was detected.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at line {} (byte {}): {}",
            self.line, self.offset, self.message
        )
    }
}

impl std::error::Error for XmlError {}

/// A pull-parser event.
///
/// Character data, comments, and PI payloads borrow from the reader's input
/// where possible (`Cow::Borrowed` when no entity resolution was needed), so
/// the hot loop allocates nothing for extensional text runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<'a> {
    /// `<name attr="v">`; `self_closing` is true for `<name/>`.
    StartElement {
        /// Resolved element name.
        name: QName,
        /// Attributes (namespace declarations excluded).
        attributes: Vec<Attribute>,
        /// Namespace declarations written on this tag.
        ns_decls: Vec<(String, String)>,
        /// Whether the tag was self-closing.
        self_closing: bool,
    },
    /// `</name>` (also emitted synthetically after self-closing tags).
    EndElement {
        /// Resolved element name.
        name: QName,
    },
    /// Character data (unescaped, including CDATA content). Borrowed from
    /// the input unless entities forced a rebuild.
    Text(Cow<'a, str>),
    /// `<!-- … -->`.
    Comment(&'a str),
    /// `<?target data?>`.
    Pi {
        /// PI target.
        target: &'a str,
        /// PI data.
        data: &'a str,
    },
    /// End of input.
    Eof,
}

/// A streaming XML pull parser over a string slice.
pub struct Reader<'a> {
    input: &'a str,
    pos: usize,
    scope: NsScope,
    /// Stack of open element names (for matching end tags and ns scoping).
    stack: Vec<QName>,
    /// Pending synthetic end event for a self-closing tag.
    pending_end: Option<QName>,
    seen_root: bool,
    finished_root: bool,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `input`.
    pub fn new(input: &'a str) -> Self {
        Reader {
            input,
            pos: 0,
            scope: NsScope::new(),
            stack: Vec::new(),
            pending_end: None,
            seen_root: false,
            finished_root: false,
        }
    }

    /// Current byte offset into the input (the start of the next event).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// The full input slice the reader was created over; together with
    /// [`Reader::pos`] this gives callers raw-span access to the original
    /// bytes of already-consumed regions (used by the streaming enforcer
    /// for zero-copy splicing and buffer accounting).
    pub fn input(&self) -> &'a str {
        self.input
    }

    fn err(&self, message: impl Into<String>) -> XmlError {
        let line = 1 + self.input[..self.pos.min(self.input.len())]
            .bytes()
            .filter(|&b| b == b'\n')
            .count();
        XmlError {
            offset: self.pos,
            line,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start_matches([' ', '\t', '\r', '\n']);
        self.pos = self.input.len() - trimmed.len();
    }

    /// Pulls the next event.
    pub fn next_event(&mut self) -> Result<Event<'a>, XmlError> {
        if let Some(name) = self.pending_end.take() {
            self.scope.pop();
            if self.stack.is_empty() {
                self.finished_root = true;
            }
            return Ok(Event::EndElement { name });
        }
        if self.pos >= self.input.len() {
            if !self.stack.is_empty() {
                return Err(self.err(format!(
                    "unexpected end of input: <{}> not closed",
                    self.stack.last().expect("stack non-empty")
                )));
            }
            if !self.seen_root {
                return Err(self.err("document has no root element"));
            }
            return Ok(Event::Eof);
        }
        if self.stack.is_empty() {
            // Between top-level constructs only whitespace, comments, PIs.
            let before = self.pos;
            self.skip_ws();
            if self.pos >= self.input.len() {
                return self.next_event();
            }
            if !self.starts_with("<") {
                self.pos = before;
                return Err(self.err("character data outside the root element"));
            }
        }
        if self.starts_with("<?") {
            return self.parse_pi();
        }
        if self.starts_with("<!--") {
            return self.parse_comment();
        }
        if self.starts_with("<![CDATA[") {
            return self.parse_cdata();
        }
        if self.starts_with("<!") {
            return Err(self.err("DTD declarations are not supported"));
        }
        if self.starts_with("</") {
            return self.parse_end_tag();
        }
        if self.starts_with("<") {
            return self.parse_start_tag();
        }
        self.parse_text()
    }

    fn parse_pi(&mut self) -> Result<Event<'a>, XmlError> {
        self.pos += 2; // <?
        let end = self
            .rest()
            .find("?>")
            .ok_or_else(|| self.err("unterminated processing instruction"))?;
        let content = &self.rest()[..end];
        self.pos += end + 2;
        let (target, data) = match content.find(|c: char| c.is_whitespace()) {
            Some(i) => (&content[..i], content[i..].trim_start()),
            None => (content, ""),
        };
        if target.is_empty() {
            return Err(self.err("processing instruction without a target"));
        }
        if target.eq_ignore_ascii_case("xml") {
            // XML declaration: swallow it, it carries no tree content.
            return self.next_event();
        }
        Ok(Event::Pi { target, data })
    }

    fn parse_comment(&mut self) -> Result<Event<'a>, XmlError> {
        self.pos += 4; // <!--
        let end = self
            .rest()
            .find("-->")
            .ok_or_else(|| self.err("unterminated comment"))?;
        let text = &self.rest()[..end];
        self.pos += end + 3;
        Ok(Event::Comment(text))
    }

    fn parse_cdata(&mut self) -> Result<Event<'a>, XmlError> {
        if self.stack.is_empty() {
            return Err(self.err("CDATA section outside the root element"));
        }
        self.pos += 9; // <![CDATA[
        let end = self
            .rest()
            .find("]]>")
            .ok_or_else(|| self.err("unterminated CDATA section"))?;
        let text = &self.rest()[..end];
        self.pos += end + 3;
        Ok(Event::Text(Cow::Borrowed(text)))
    }

    fn parse_text(&mut self) -> Result<Event<'a>, XmlError> {
        let end = self.rest().find('<').unwrap_or(self.rest().len());
        let raw = &self.rest()[..end];
        let start = self.pos;
        self.pos += end;
        let text = unescape(raw).map_err(|m| {
            self.pos = start;
            self.err(m)
        })?;
        Ok(Event::Text(text))
    }

    fn read_name(&mut self) -> Result<&'a str, XmlError> {
        let rest = self.rest();
        let end = rest.find(|c: char| !is_name_char(c)).unwrap_or(rest.len());
        if end == 0 || !rest.starts_with(is_name_start) {
            return Err(self.err("expected an XML name"));
        }
        let name = &rest[..end];
        self.pos += end;
        Ok(name)
    }

    fn parse_start_tag(&mut self) -> Result<Event<'a>, XmlError> {
        if self.finished_root {
            return Err(self.err("multiple root elements"));
        }
        self.pos += 1; // <
        let raw_name = self.read_name()?;
        let mut attributes_raw: Vec<(&'a str, String)> = Vec::new();
        let mut ns_decls: Vec<(String, String)> = Vec::new();
        let self_closing;
        loop {
            self.skip_ws();
            if self.starts_with("/>") {
                self.pos += 2;
                self_closing = true;
                break;
            }
            if self.starts_with(">") {
                self.pos += 1;
                self_closing = false;
                break;
            }
            if self.pos >= self.input.len() {
                return Err(self.err(format!("unterminated start tag <{raw_name}>")));
            }
            let attr_name = self.read_name()?;
            self.skip_ws();
            if !self.starts_with("=") {
                return Err(self.err(format!("attribute '{attr_name}' is missing '='")));
            }
            self.pos += 1;
            self.skip_ws();
            let quote = match self.rest().chars().next() {
                Some(q @ ('"' | '\'')) => q,
                _ => return Err(self.err("attribute value must be quoted")),
            };
            self.pos += 1;
            let end = self
                .rest()
                .find(quote)
                .ok_or_else(|| self.err("unterminated attribute value"))?;
            let raw_value = &self.rest()[..end];
            let value = unescape(raw_value).map_err(|m| self.err(m))?.into_owned();
            self.pos += end + 1;
            if attr_name == "xmlns" {
                ns_decls.push((String::new(), value));
            } else if let Some(prefix) = attr_name.strip_prefix("xmlns:") {
                if prefix.is_empty() {
                    return Err(self.err("empty namespace prefix declaration"));
                }
                ns_decls.push((prefix.to_owned(), value));
            } else {
                if attributes_raw.iter().any(|(n, _)| *n == attr_name) {
                    return Err(self.err(format!("duplicate attribute '{attr_name}'")));
                }
                attributes_raw.push((attr_name, value));
            }
        }
        // Resolve namespaces with the new declarations in scope.
        self.scope.push(&ns_decls);
        let name = self.resolve_name(raw_name, true)?;
        let mut attributes = Vec::with_capacity(attributes_raw.len());
        for (n, v) in attributes_raw {
            // Unprefixed attributes are in no namespace, per the spec.
            let qn = if n.contains(':') {
                self.resolve_name(n, false)?
            } else {
                QName::local(n)
            };
            attributes.push(Attribute { name: qn, value: v });
        }
        self.seen_root = true;
        if self_closing {
            self.pending_end = Some(name.clone());
        } else {
            self.stack.push(name.clone());
        }
        Ok(Event::StartElement {
            name,
            attributes,
            ns_decls,
            self_closing,
        })
    }

    fn resolve_name(&self, raw: &str, use_default: bool) -> Result<QName, XmlError> {
        match raw.split_once(':') {
            Some((prefix, local)) => {
                if local.is_empty() || local.contains(':') {
                    return Err(self.err(format!("malformed qualified name '{raw}'")));
                }
                let ns = self
                    .scope
                    .resolve(prefix)
                    .ok_or_else(|| self.err(format!("undeclared namespace prefix '{prefix}'")))?;
                Ok(QName::prefixed(prefix, local, ns))
            }
            None => {
                let ns = if use_default {
                    self.scope.resolve("").unwrap_or("")
                } else {
                    ""
                };
                Ok(QName {
                    prefix: String::new(),
                    local: raw.to_owned(),
                    ns: ns.to_owned(),
                })
            }
        }
    }

    fn parse_end_tag(&mut self) -> Result<Event<'a>, XmlError> {
        self.pos += 2; // </
        let raw_name = self.read_name()?;
        self.skip_ws();
        if !self.starts_with(">") {
            return Err(self.err(format!("malformed end tag </{raw_name}>")));
        }
        self.pos += 1;
        let open = self
            .stack
            .pop()
            .ok_or_else(|| self.err(format!("unexpected end tag </{raw_name}>")))?;
        // Compare against the written form without allocating it.
        let matches = match open.prefix.as_str() {
            "" => raw_name == open.local,
            p => raw_name
                .strip_prefix(p)
                .and_then(|r| r.strip_prefix(':'))
                .is_some_and(|l| l == open.local),
        };
        if !matches {
            return Err(self.err(format!(
                "mismatched end tag: expected </{}>, found </{raw_name}>",
                open.as_written()
            )));
        }
        self.scope.pop();
        if self.stack.is_empty() {
            self.finished_root = true;
        }
        Ok(Event::EndElement { name: open })
    }
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')
}

/// Parses a complete document into a DOM tree.
///
/// Whitespace-only text between elements is dropped (element content
/// whitespace); mixed content keeps its text intact.
pub fn parse_document(input: &str) -> Result<Document, XmlError> {
    let mut reader = Reader::new(input);
    let mut prolog = Vec::new();
    let mut root: Option<Element> = None;
    // Stack of elements under construction.
    let mut stack: Vec<Element> = Vec::new();
    loop {
        match reader.next_event()? {
            Event::StartElement {
                name,
                attributes,
                ns_decls,
                ..
            } => {
                stack.push(Element {
                    name,
                    attributes,
                    ns_decls,
                    children: Vec::new(),
                });
            }
            Event::EndElement { .. } => {
                let done = stack.pop().expect("reader guarantees balance");
                match stack.last_mut() {
                    Some(parent) => parent.children.push(Node::Element(done)),
                    None => root = Some(done),
                }
            }
            Event::Text(t) => {
                if let Some(parent) = stack.last_mut() {
                    if !t.trim().is_empty() || parent.children.iter().any(|c| c.as_text().is_some())
                    {
                        // Merge adjacent text nodes.
                        if let Some(Node::Text(prev)) = parent.children.last_mut() {
                            prev.push_str(&t);
                        } else if !t.trim().is_empty() {
                            parent.children.push(Node::Text(t.into_owned()));
                        }
                    }
                }
            }
            Event::Comment(c) => {
                if let Some(parent) = stack.last_mut() {
                    parent.children.push(Node::Comment(c.to_owned()));
                } else if root.is_none() {
                    prolog.push(Node::Comment(c.to_owned()));
                }
            }
            Event::Pi { target, data } => {
                if let Some(parent) = stack.last_mut() {
                    parent.children.push(Node::Pi {
                        target: target.to_owned(),
                        data: data.to_owned(),
                    });
                } else if root.is_none() {
                    prolog.push(Node::Pi {
                        target: target.to_owned(),
                        data: data.to_owned(),
                    });
                }
            }
            Event::Eof => break,
        }
    }
    Ok(Document {
        prolog,
        root: root.expect("reader guarantees a root"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let doc = parse_document(
            "<?xml version=\"1.0\"?>\n<newspaper><title>The Sun</title><date>04/10/2002</date></newspaper>",
        )
        .unwrap();
        assert_eq!(doc.root.name.local, "newspaper");
        assert_eq!(doc.root.children.len(), 2);
        assert_eq!(
            doc.root.first_child("title").unwrap().text_content(),
            "The Sun"
        );
    }

    #[test]
    fn parses_paper_intensional_document() {
        // The exact document of Sec. 7 of the paper (typo-corrected closing tags).
        let text = r#"<?xml version="1.0"?>
<newspaper xmlns:int="http://www.activexml.com/ns/int">
  <title> The Sun </title>
  <date> 04/10/2002 </date>
  <int:fun endpointURL="http://www.forecast.com/soap"
           methodName="Get_Temp"
           namespaceURI="urn:xmethods-weather">
    <int:params>
      <int:param><city>Paris</city></int:param>
    </int:params>
  </int:fun>
</newspaper>"#;
        let doc = parse_document(text).unwrap();
        let fun = doc.root.child_elements().nth(2).unwrap();
        assert!(fun.name.matches("http://www.activexml.com/ns/int", "fun"));
        assert_eq!(fun.attribute("methodName"), Some("Get_Temp"));
        let city = fun
            .first_child("params")
            .unwrap()
            .first_child("param")
            .unwrap()
            .first_child("city")
            .unwrap();
        assert_eq!(city.text_content(), "Paris");
    }

    #[test]
    fn self_closing_and_attributes() {
        let doc = parse_document("<a x=\"1\" y='2'><b/><c  z = \"3\" /></a>").unwrap();
        assert_eq!(doc.root.attribute("x"), Some("1"));
        assert_eq!(doc.root.attribute("y"), Some("2"));
        assert_eq!(doc.root.child_elements().count(), 2);
        assert_eq!(doc.root.first_child("c").unwrap().attribute("z"), Some("3"));
    }

    #[test]
    fn namespace_scoping_and_shadowing() {
        let doc =
            parse_document("<a xmlns=\"urn:one\"><b xmlns=\"urn:two\"><c/></b><d/></a>").unwrap();
        assert_eq!(doc.root.name.ns, "urn:one");
        let b = doc.root.first_child("b").unwrap();
        assert_eq!(b.name.ns, "urn:two");
        assert_eq!(b.first_child("c").unwrap().name.ns, "urn:two");
        assert_eq!(doc.root.first_child("d").unwrap().name.ns, "urn:one");
    }

    #[test]
    fn entities_and_cdata() {
        let doc = parse_document("<t>a &lt; b &amp; <![CDATA[<raw> & stuff]]> c</t>").unwrap();
        assert_eq!(doc.root.text_content(), "a < b & <raw> & stuff c");
    }

    #[test]
    fn comments_and_pis() {
        let doc =
            parse_document("<!-- head --><?style css?><r><!-- in --><?p d?><x/></r>").unwrap();
        assert_eq!(doc.prolog.len(), 2);
        assert!(matches!(&doc.prolog[0], Node::Comment(c) if c.trim() == "head"));
        assert_eq!(doc.root.children.len(), 3);
    }

    #[test]
    fn error_mismatched_tags() {
        let e = parse_document("<a><b></a></b>").unwrap_err();
        assert!(e.message.contains("mismatched"), "{e}");
    }

    #[test]
    fn error_multiple_roots_and_trailing_text() {
        assert!(parse_document("<a/><b/>").is_err());
        assert!(parse_document("<a/>junk").is_err());
        assert!(parse_document("").is_err());
        assert!(parse_document("   ").is_err());
    }

    #[test]
    fn error_undeclared_prefix() {
        let e = parse_document("<x:a/>").unwrap_err();
        assert!(e.message.contains("undeclared"), "{e}");
    }

    #[test]
    fn error_duplicate_attribute() {
        assert!(parse_document("<a x=\"1\" x=\"2\"/>").is_err());
    }

    #[test]
    fn error_unterminated() {
        assert!(parse_document("<a><b>").is_err());
        assert!(parse_document("<a").is_err());
        assert!(parse_document("<a x=1/>").is_err());
        assert!(parse_document("<!-- never ends").is_err());
    }

    #[test]
    fn dtd_rejected() {
        let e = parse_document("<!DOCTYPE a><a/>").unwrap_err();
        assert!(e.message.contains("DTD"), "{e}");
    }

    #[test]
    fn line_numbers_in_errors() {
        let e = parse_document("<a>\n\n<b></c>\n</a>").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn whitespace_between_elements_dropped_mixed_kept() {
        let doc = parse_document("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(doc.root.children.len(), 2);
        let doc = parse_document("<a>hello <b/> world</a>").unwrap();
        assert_eq!(doc.root.children.len(), 3);
    }
}
