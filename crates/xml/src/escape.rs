//! Escaping and unescaping of XML character data.

use std::borrow::Cow;

/// Escapes text content: `&`, `<`, `>`.
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape(s, false)
}

/// Escapes attribute values: `&`, `<`, `>`, `"`, `'`.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape(s, true)
}

/// Finds the first byte at or after `from` that needs escaping, scanning a
/// word at a time (memchr-style: all special characters are ASCII, so plain
/// byte positions are always valid UTF-8 boundaries).
fn find_special(bytes: &[u8], from: usize, attr: bool) -> Option<usize> {
    const CHUNK: usize = 8;
    let is_special = |b: u8| matches!(b, b'&' | b'<' | b'>') || (attr && matches!(b, b'"' | b'\''));
    let mut i = from;
    while i + CHUNK <= bytes.len() {
        let w = u64::from_ne_bytes(bytes[i..i + CHUNK].try_into().expect("chunk is 8 bytes"));
        // A zero byte in `x ^ splat(c)` marks an occurrence of `c`; the
        // classic SWAR has-zero test flags the chunk for the precise scan.
        let mut hit = has_zero_byte(w ^ splat(b'&'))
            | has_zero_byte(w ^ splat(b'<'))
            | has_zero_byte(w ^ splat(b'>'));
        if attr {
            hit |= has_zero_byte(w ^ splat(b'"')) | has_zero_byte(w ^ splat(b'\''));
        }
        if hit {
            for (j, &b) in bytes[i..i + CHUNK].iter().enumerate() {
                if is_special(b) {
                    return Some(i + j);
                }
            }
        }
        i += CHUNK;
    }
    bytes[i..].iter().position(|&b| is_special(b)).map(|j| i + j)
}

fn splat(b: u8) -> u64 {
    u64::from_ne_bytes([b; 8])
}

fn has_zero_byte(w: u64) -> bool {
    w.wrapping_sub(0x0101_0101_0101_0101) & !w & 0x8080_8080_8080_8080 != 0
}

fn escape(s: &str, attr: bool) -> Cow<'_, str> {
    let bytes = s.as_bytes();
    let Some(first) = find_special(bytes, 0, attr) else {
        return Cow::Borrowed(s);
    };
    let mut out = String::with_capacity(s.len() + 8);
    let mut start = 0;
    let mut i = first;
    loop {
        out.push_str(&s[start..i]);
        match bytes[i] {
            b'&' => out.push_str("&amp;"),
            b'<' => out.push_str("&lt;"),
            b'>' => out.push_str("&gt;"),
            b'"' => out.push_str("&quot;"),
            b'\'' => out.push_str("&apos;"),
            other => unreachable!("find_special returned non-special byte {other}"),
        }
        start = i + 1;
        match find_special(bytes, start, attr) {
            Some(j) => i = j,
            None => {
                out.push_str(&s[start..]);
                break;
            }
        }
    }
    Cow::Owned(out)
}

/// Resolves the five predefined entities and numeric character references.
///
/// Unknown entities are an error, reported as `Err(entity_name)`.
pub fn unescape(s: &str) -> Result<Cow<'_, str>, String> {
    if !s.contains('&') {
        return Ok(Cow::Borrowed(s));
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos + 1..];
        let end = rest
            .find(';')
            .ok_or_else(|| format!("unterminated entity near '&{rest}'"))?;
        let name = &rest[..end];
        match name {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => {
                if let Some(hex) = name.strip_prefix("#x").or_else(|| name.strip_prefix("#X")) {
                    let cp = u32::from_str_radix(hex, 16)
                        .map_err(|_| format!("bad hex character reference '&{name};'"))?;
                    out.push(
                        char::from_u32(cp)
                            .ok_or_else(|| format!("invalid code point in '&{name};'"))?,
                    );
                } else if let Some(dec) = name.strip_prefix('#') {
                    let cp: u32 = dec
                        .parse()
                        .map_err(|_| format!("bad character reference '&{name};'"))?;
                    out.push(
                        char::from_u32(cp)
                            .ok_or_else(|| format!("invalid code point in '&{name};'"))?,
                    );
                } else {
                    return Err(format!("unknown entity '&{name};'"));
                }
            }
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping() {
        assert_eq!(escape_text("plain"), "plain");
        assert!(matches!(escape_text("plain"), Cow::Borrowed(_)));
        assert_eq!(escape_text("a < b & c > d"), "a &lt; b &amp; c &gt; d");
        // Quotes untouched in text context.
        assert_eq!(escape_text("\"q\""), "\"q\"");
    }

    #[test]
    fn attr_escaping() {
        assert_eq!(escape_attr("a\"b'c"), "a&quot;b&apos;c");
        assert_eq!(escape_attr("x<y"), "x&lt;y");
    }

    #[test]
    fn unescape_predefined() {
        assert_eq!(unescape("a &lt; b &amp; c").unwrap(), "a < b & c");
        assert_eq!(unescape("&quot;&apos;&gt;").unwrap(), "\"'>");
        assert!(matches!(unescape("no entities").unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn unescape_numeric() {
        assert_eq!(unescape("&#65;&#x42;&#x63;").unwrap(), "ABc");
        assert_eq!(unescape("&#x20AC;").unwrap(), "€");
    }

    #[test]
    fn unescape_errors() {
        assert!(unescape("&nbsp;").is_err());
        assert!(unescape("&#xZZ;").is_err());
        assert!(unescape("&#1114112;").is_err()); // beyond char::MAX
        assert!(unescape("&unterminated").is_err());
    }

    #[test]
    fn byte_scan_chunk_boundaries() {
        // Specials at every offset relative to the 8-byte SWAR chunks.
        for n in 0..40 {
            let mut s = "x".repeat(n);
            s.push('<');
            s.push_str(&"y".repeat(40 - n));
            let escaped = escape_text(&s);
            assert_eq!(escaped, s.replace('<', "&lt;"));
        }
        // Multi-byte UTF-8 around specials survives the byte-level scan.
        let s = "héllo <wörld> & “quotes”";
        assert_eq!(
            escape_text(s),
            "héllo &lt;wörld&gt; &amp; “quotes”"
        );
        let clean = "ünïcodé only, no specials, long enough to cross chunks……";
        assert!(matches!(escape_text(clean), Cow::Borrowed(_)));
    }

    #[test]
    fn roundtrip() {
        let nasty = "a<b>&\"'\u{20AC}";
        assert_eq!(unescape(&escape_attr(nasty)).unwrap(), nasty);
        assert_eq!(unescape(&escape_text(nasty)).unwrap(), nasty);
    }
}
