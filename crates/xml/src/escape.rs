//! Escaping and unescaping of XML character data.

use std::borrow::Cow;

/// Escapes text content: `&`, `<`, `>`.
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape(s, false)
}

/// Escapes attribute values: `&`, `<`, `>`, `"`, `'`.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape(s, true)
}

fn escape(s: &str, attr: bool) -> Cow<'_, str> {
    let needs = s
        .bytes()
        .any(|b| matches!(b, b'&' | b'<' | b'>') || (attr && matches!(b, b'"' | b'\'')));
    if !needs {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            '\'' if attr => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

/// Resolves the five predefined entities and numeric character references.
///
/// Unknown entities are an error, reported as `Err(entity_name)`.
pub fn unescape(s: &str) -> Result<Cow<'_, str>, String> {
    if !s.contains('&') {
        return Ok(Cow::Borrowed(s));
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos + 1..];
        let end = rest
            .find(';')
            .ok_or_else(|| format!("unterminated entity near '&{rest}'"))?;
        let name = &rest[..end];
        match name {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => {
                if let Some(hex) = name.strip_prefix("#x").or_else(|| name.strip_prefix("#X")) {
                    let cp = u32::from_str_radix(hex, 16)
                        .map_err(|_| format!("bad hex character reference '&{name};'"))?;
                    out.push(
                        char::from_u32(cp)
                            .ok_or_else(|| format!("invalid code point in '&{name};'"))?,
                    );
                } else if let Some(dec) = name.strip_prefix('#') {
                    let cp: u32 = dec
                        .parse()
                        .map_err(|_| format!("bad character reference '&{name};'"))?;
                    out.push(
                        char::from_u32(cp)
                            .ok_or_else(|| format!("invalid code point in '&{name};'"))?,
                    );
                } else {
                    return Err(format!("unknown entity '&{name};'"));
                }
            }
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping() {
        assert_eq!(escape_text("plain"), "plain");
        assert!(matches!(escape_text("plain"), Cow::Borrowed(_)));
        assert_eq!(escape_text("a < b & c > d"), "a &lt; b &amp; c &gt; d");
        // Quotes untouched in text context.
        assert_eq!(escape_text("\"q\""), "\"q\"");
    }

    #[test]
    fn attr_escaping() {
        assert_eq!(escape_attr("a\"b'c"), "a&quot;b&apos;c");
        assert_eq!(escape_attr("x<y"), "x&lt;y");
    }

    #[test]
    fn unescape_predefined() {
        assert_eq!(unescape("a &lt; b &amp; c").unwrap(), "a < b & c");
        assert_eq!(unescape("&quot;&apos;&gt;").unwrap(), "\"'>");
        assert!(matches!(unescape("no entities").unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn unescape_numeric() {
        assert_eq!(unescape("&#65;&#x42;&#x63;").unwrap(), "ABc");
        assert_eq!(unescape("&#x20AC;").unwrap(), "€");
    }

    #[test]
    fn unescape_errors() {
        assert!(unescape("&nbsp;").is_err());
        assert!(unescape("&#xZZ;").is_err());
        assert!(unescape("&#1114112;").is_err()); // beyond char::MAX
        assert!(unescape("&unterminated").is_err());
    }

    #[test]
    fn roundtrip() {
        let nasty = "a<b>&\"'\u{20AC}";
        assert_eq!(unescape(&escape_attr(nasty)).unwrap(), nasty);
        assert_eq!(unescape(&escape_text(nasty)).unwrap(), nasty);
    }
}
