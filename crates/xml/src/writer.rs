//! XML serialization.

use crate::escape::{escape_attr, escape_text};
use crate::model::{Document, Element, Node};

/// Serialization options.
#[derive(Debug, Clone)]
pub struct WriteOptions {
    /// Indentation unit; `None` writes everything on one line.
    pub indent: Option<String>,
    /// Whether to emit an `<?xml version="1.0"?>` declaration
    /// (documents only).
    pub declaration: bool,
}

impl WriteOptions {
    /// Single-line output, with declaration.
    pub fn compact() -> Self {
        WriteOptions {
            indent: None,
            declaration: true,
        }
    }

    /// Two-space indentation, with declaration.
    pub fn pretty() -> Self {
        WriteOptions {
            indent: Some("  ".to_owned()),
            declaration: true,
        }
    }
}

/// Serializes a whole document.
pub fn write_document(doc: &Document, options: &WriteOptions) -> String {
    let mut out = String::new();
    if options.declaration {
        out.push_str("<?xml version=\"1.0\"?>");
        if options.indent.is_some() {
            out.push('\n');
        }
    }
    for node in &doc.prolog {
        write_node(node, options, 0, &mut out);
        if options.indent.is_some() {
            out.push('\n');
        }
    }
    write_element(&doc.root, options, 0, &mut out);
    out
}

/// Serializes a single element (used by [`Element::to_xml`]).
pub fn element_to_string(e: &Element, options: &WriteOptions) -> String {
    let mut out = String::new();
    write_element(e, options, 0, &mut out);
    out
}

fn write_indent(options: &WriteOptions, depth: usize, out: &mut String) {
    if let Some(unit) = &options.indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_element(e: &Element, options: &WriteOptions, depth: usize, out: &mut String) {
    out.push('<');
    out.push_str(&e.name.as_written());
    for (prefix, uri) in &e.ns_decls {
        if prefix.is_empty() {
            out.push_str(" xmlns=\"");
        } else {
            out.push_str(" xmlns:");
            out.push_str(prefix);
            out.push_str("=\"");
        }
        out.push_str(&escape_attr(uri));
        out.push('"');
    }
    for attr in &e.attributes {
        out.push(' ');
        out.push_str(&attr.name.as_written());
        out.push_str("=\"");
        out.push_str(&escape_attr(&attr.value));
        out.push('"');
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    // Mixed content (any direct text child) is written inline to preserve
    // the text exactly; element-only content may be indented.
    let mixed = e.children.iter().any(|c| matches!(c, Node::Text(_)));
    for child in &e.children {
        if !mixed {
            write_indent(options, depth + 1, out);
        }
        write_node(child, options, depth + 1, out);
    }
    if !mixed {
        write_indent(options, depth, out);
    }
    out.push_str("</");
    out.push_str(&e.name.as_written());
    out.push('>');
}

fn write_node(node: &Node, options: &WriteOptions, depth: usize, out: &mut String) {
    match node {
        Node::Element(e) => write_element(e, options, depth, out),
        Node::Text(t) => out.push_str(&escape_text(t)),
        Node::Comment(c) => {
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
        Node::Pi { target, data } => {
            out.push_str("<?");
            out.push_str(target);
            if !data.is_empty() {
                out.push(' ');
                out.push_str(data);
            }
            out.push_str("?>");
        }
    }
}

/// An incremental serializer for the compact single-line normal form.
///
/// Produces byte-for-byte what [`element_to_string`] with
/// [`WriteOptions::compact`] emits for attribute-free elements: tags are
/// closed lazily so childless elements collapse to `<name/>`, nothing is
/// indented, and text must arrive already escaped (callers decide between
/// zero-copy spans and re-escaped runs). Used by the streaming enforcement
/// path to splice rewritten subtree serializations between streamed regions.
pub struct StreamWriter<W: std::io::Write> {
    w: W,
    tag_open: bool,
    bytes: u64,
}

impl<W: std::io::Write> StreamWriter<W> {
    /// Wraps `w`; nothing is written until the first event.
    pub fn new(w: W) -> Self {
        StreamWriter {
            w,
            tag_open: false,
            bytes: 0,
        }
    }

    fn put(&mut self, s: &str) -> std::io::Result<usize> {
        self.w.write_all(s.as_bytes())?;
        self.bytes += s.len() as u64;
        Ok(s.len())
    }

    /// Closes a pending start tag, if any, with `>`.
    fn close_tag(&mut self) -> std::io::Result<usize> {
        if self.tag_open {
            self.tag_open = false;
            return self.put(">");
        }
        Ok(0)
    }

    /// Opens `<name`, deferring the closing `>` until content arrives.
    /// Returns the number of bytes written.
    pub fn start(&mut self, name: &str) -> std::io::Result<usize> {
        let mut n = self.close_tag()?;
        n += self.put("<")?;
        n += self.put(name)?;
        self.tag_open = true;
        Ok(n)
    }

    /// Closes the current element: `/>` if it had no content, `</name>`
    /// otherwise. Returns the number of bytes written.
    pub fn end(&mut self, name: &str) -> std::io::Result<usize> {
        if self.tag_open {
            self.tag_open = false;
            return self.put("/>");
        }
        let mut n = self.put("</")?;
        n += self.put(name)?;
        n += self.put(">")?;
        Ok(n)
    }

    /// Writes pre-serialized content verbatim (escaped text or a spliced
    /// subtree serialization), closing any pending start tag first.
    /// Returns the number of bytes written.
    pub fn raw(&mut self, s: &str) -> std::io::Result<usize> {
        let mut n = self.close_tag()?;
        n += self.put(s)?;
        Ok(n)
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Unwraps the underlying sink.
    pub fn into_inner(self) -> W {
        self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_document;

    #[test]
    fn stream_writer_matches_compact_form() {
        let mut sw = StreamWriter::new(Vec::new());
        sw.start("a").unwrap();
        sw.start("b").unwrap();
        sw.raw("text &amp; more").unwrap();
        sw.end("b").unwrap();
        sw.start("c").unwrap();
        sw.end("c").unwrap();
        sw.end("a").unwrap();
        let out = String::from_utf8(sw.into_inner()).unwrap();
        assert_eq!(out, "<a><b>text &amp; more</b><c/></a>");
        let doc = parse_document(&out).unwrap();
        assert_eq!(doc.root.to_xml(), out);
    }

    #[test]
    fn roundtrip_compact() {
        let src = "<a x=\"1\"><b>text &amp; more</b><c/></a>";
        let doc = parse_document(src).unwrap();
        let out = doc.root.to_xml();
        assert_eq!(out, src);
    }

    #[test]
    fn pretty_indents_element_content() {
        let doc = parse_document("<a><b><c/></b></a>").unwrap();
        let out = doc.root.to_pretty_xml();
        assert_eq!(out, "<a>\n  <b>\n    <c/>\n  </b>\n</a>");
    }

    #[test]
    fn mixed_content_not_indented() {
        let doc = parse_document("<p>hello <b>bold</b> world</p>").unwrap();
        assert_eq!(doc.root.to_pretty_xml(), "<p>hello <b>bold</b> world</p>");
    }

    #[test]
    fn namespace_declarations_serialized() {
        let doc = parse_document("<a xmlns=\"urn:d\" xmlns:i=\"urn:i\"><i:b/></a>").unwrap();
        let out = doc.root.to_xml();
        assert!(out.contains("xmlns=\"urn:d\""));
        assert!(out.contains("xmlns:i=\"urn:i\""));
        assert!(out.contains("<i:b/>"));
        // Reparse must resolve identically.
        let again = parse_document(&out).unwrap();
        assert_eq!(again.root, doc.root);
    }

    #[test]
    fn document_declaration_and_prolog() {
        let doc = parse_document("<!--hi--><r/>").unwrap();
        let out = write_document(&doc, &WriteOptions::compact());
        assert!(out.starts_with("<?xml version=\"1.0\"?>"));
        assert!(out.contains("<!--hi-->"));
        assert!(out.ends_with("<r/>"));
    }

    #[test]
    fn escaping_in_attributes_roundtrips() {
        let src = "<a v=\"x &lt; y &quot;q&quot;\"/>";
        let doc = parse_document(src).unwrap();
        assert_eq!(doc.root.attribute("v"), Some("x < y \"q\""));
        let again = parse_document(&doc.root.to_xml()).unwrap();
        assert_eq!(again.root, doc.root);
    }

    #[test]
    fn pi_and_comment_children_roundtrip() {
        let src = "<r><?t d?><!--c--><x/></r>";
        let doc = parse_document(src).unwrap();
        assert_eq!(doc.root.to_xml(), src);
    }
}
