//! The owned XML tree model.

use std::collections::HashMap;
use std::fmt;

/// A qualified name: optional prefix, local part, and the namespace URI the
/// prefix resolved to at parse time (empty string = no namespace).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct QName {
    /// The prefix as written (`int` in `int:fun`), empty if none.
    pub prefix: String,
    /// The local part (`fun` in `int:fun`).
    pub local: String,
    /// The resolved namespace URI, empty if none.
    pub ns: String,
}

impl QName {
    /// A name with no prefix and no namespace.
    pub fn local(name: &str) -> Self {
        QName {
            prefix: String::new(),
            local: name.to_owned(),
            ns: String::new(),
        }
    }

    /// A prefixed name bound to namespace `ns`.
    pub fn prefixed(prefix: &str, local: &str, ns: &str) -> Self {
        QName {
            prefix: prefix.to_owned(),
            local: local.to_owned(),
            ns: ns.to_owned(),
        }
    }

    /// The name as written in markup: `prefix:local` or just `local`.
    pub fn as_written(&self) -> String {
        if self.prefix.is_empty() {
            self.local.clone()
        } else {
            format!("{}:{}", self.prefix, self.local)
        }
    }

    /// True if local part and namespace match (prefixes are irrelevant for
    /// XML name identity).
    pub fn matches(&self, ns: &str, local: &str) -> bool {
        self.ns == ns && self.local == local
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_written())
    }
}

/// An attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name.
    pub name: QName,
    /// Unescaped value.
    pub value: String,
}

/// A child node of an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// Character data (already unescaped).
    Text(String),
    /// A comment (without the `<!--`/`-->` delimiters).
    Comment(String),
    /// A processing instruction.
    Pi {
        /// PI target.
        target: String,
        /// PI data.
        data: String,
    },
}

impl Node {
    /// The element inside, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Mutable access to the element inside, if this node is one.
    pub fn as_element_mut(&mut self) -> Option<&mut Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }

    /// The text inside, if this node is character data.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) => Some(t),
            _ => None,
        }
    }
}

/// An element: name, attributes, namespace declarations and ordered children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Element name.
    pub name: QName,
    /// Attributes in document order (excluding `xmlns` declarations).
    pub attributes: Vec<Attribute>,
    /// Namespace declarations written on this element:
    /// `(prefix, uri)`; the default namespace uses an empty prefix.
    pub ns_decls: Vec<(String, String)>,
    /// Ordered children.
    pub children: Vec<Node>,
}

impl Element {
    /// Creates an element with an unprefixed name and no content.
    pub fn new(name: &str) -> Self {
        Element {
            name: QName::local(name),
            ..Default::default()
        }
    }

    /// Creates an element with a namespaced name.
    pub fn with_ns(prefix: &str, local: &str, ns: &str) -> Self {
        Element {
            name: QName::prefixed(prefix, local, ns),
            ..Default::default()
        }
    }

    /// Builder: adds an attribute.
    pub fn attr(mut self, name: &str, value: &str) -> Self {
        self.attributes.push(Attribute {
            name: QName::local(name),
            value: value.to_owned(),
        });
        self
    }

    /// Builder: adds a child element.
    pub fn child(mut self, e: Element) -> Self {
        self.children.push(Node::Element(e));
        self
    }

    /// Builder: adds a text child.
    pub fn text(mut self, t: &str) -> Self {
        self.children.push(Node::Text(t.to_owned()));
        self
    }

    /// Builder: declares a namespace on this element.
    pub fn xmlns(mut self, prefix: &str, uri: &str) -> Self {
        self.ns_decls.push((prefix.to_owned(), uri.to_owned()));
        self
    }

    /// Looks up an attribute value by its written name.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|a| a.name.as_written() == name)
            .map(|a| a.value.as_str())
    }

    /// Iterates over child elements.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// First child element with the given local name.
    pub fn first_child(&self, local: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name.local == local)
    }

    /// All child elements with the given local name.
    pub fn children_named<'a>(&'a self, local: &'a str) -> impl Iterator<Item = &'a Element> {
        self.child_elements().filter(move |e| e.name.local == local)
    }

    /// Concatenated text content of this element's direct text children,
    /// trimmed.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            if let Node::Text(t) = c {
                out.push_str(t);
            }
        }
        out.trim().to_owned()
    }

    /// Number of element nodes in the subtree rooted here (including self).
    pub fn subtree_size(&self) -> usize {
        1 + self
            .child_elements()
            .map(Element::subtree_size)
            .sum::<usize>()
    }

    /// Serializes this element compactly; see [`crate::write_document`] for
    /// options.
    pub fn to_xml(&self) -> String {
        crate::writer::element_to_string(self, &crate::WriteOptions::compact())
    }

    /// Serializes with indentation.
    pub fn to_pretty_xml(&self) -> String {
        crate::writer::element_to_string(self, &crate::WriteOptions::pretty())
    }
}

/// A parsed document: optional XML declaration captured as-is, leading
/// comments/PIs, and the single root element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Nodes appearing before the root (comments, PIs).
    pub prolog: Vec<Node>,
    /// The root element.
    pub root: Element,
}

impl Document {
    /// Wraps a root element into a document.
    pub fn new(root: Element) -> Self {
        Document {
            prolog: Vec::new(),
            root,
        }
    }

    /// Serializes the document with an XML declaration.
    pub fn to_xml(&self) -> String {
        crate::writer::write_document(self, &crate::WriteOptions::compact())
    }
}

/// A stack of in-scope namespace bindings used during parsing and writing.
#[derive(Debug, Clone, Default)]
pub struct NsScope {
    frames: Vec<HashMap<String, String>>,
}

impl NsScope {
    /// A scope with the implicit `xml` prefix bound.
    pub fn new() -> Self {
        let mut base = HashMap::new();
        base.insert(
            "xml".to_owned(),
            "http://www.w3.org/XML/1998/namespace".to_owned(),
        );
        NsScope { frames: vec![base] }
    }

    /// Pushes a new frame of declarations.
    pub fn push(&mut self, decls: &[(String, String)]) {
        let mut frame = HashMap::new();
        for (p, u) in decls {
            frame.insert(p.clone(), u.clone());
        }
        self.frames.push(frame);
    }

    /// Pops the innermost frame.
    pub fn pop(&mut self) {
        self.frames.pop();
    }

    /// Resolves `prefix` (empty = default namespace) to a URI.
    pub fn resolve(&self, prefix: &str) -> Option<&str> {
        self.frames
            .iter()
            .rev()
            .find_map(|f| f.get(prefix))
            .map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let e = Element::new("newspaper")
            .child(Element::new("title").text("The Sun"))
            .child(Element::new("date").text("04/10/2002"))
            .attr("lang", "en");
        assert_eq!(e.attribute("lang"), Some("en"));
        assert_eq!(e.first_child("title").unwrap().text_content(), "The Sun");
        assert_eq!(e.child_elements().count(), 2);
        assert_eq!(e.subtree_size(), 3);
        assert!(e.first_child("absent").is_none());
    }

    #[test]
    fn qname_matching_ignores_prefix() {
        let a = QName::prefixed("int", "fun", "urn:axml:int");
        let b = QName::prefixed("x", "fun", "urn:axml:int");
        assert!(a.matches("urn:axml:int", "fun"));
        assert!(b.matches("urn:axml:int", "fun"));
        assert_ne!(a, b); // structural equality still sees the prefix
        assert_eq!(a.as_written(), "int:fun");
    }

    #[test]
    fn ns_scope_resolution() {
        let mut scope = NsScope::new();
        assert_eq!(
            scope.resolve("xml"),
            Some("http://www.w3.org/XML/1998/namespace")
        );
        scope.push(&[("".to_owned(), "urn:default".to_owned())]);
        scope.push(&[("a".to_owned(), "urn:a".to_owned())]);
        assert_eq!(scope.resolve(""), Some("urn:default"));
        assert_eq!(scope.resolve("a"), Some("urn:a"));
        scope.pop();
        assert_eq!(scope.resolve("a"), None);
        assert_eq!(scope.resolve(""), Some("urn:default"));
    }

    #[test]
    fn text_content_concatenates_and_trims() {
        let mut e = Element::new("t");
        e.children.push(Node::Text("  hello ".to_owned()));
        e.children.push(Node::Comment("ignored".to_owned()));
        e.children.push(Node::Text("world  ".to_owned()));
        assert_eq!(e.text_content(), "hello world");
    }

    #[test]
    fn children_named_filters() {
        let e = Element::new("r")
            .child(Element::new("a"))
            .child(Element::new("b"))
            .child(Element::new("a"));
        assert_eq!(e.children_named("a").count(), 2);
        assert_eq!(e.children_named("b").count(), 1);
    }
}
