//! Per-crate property tests for the XML substrate, under the in-repo
//! harness (`axml-support`): escaping and element trees must round-trip
//! through serialize → parse for arbitrary content.

use axml_support::prelude::*;
use axml_xml::{escape_attr, escape_text, parse_document, unescape, Document, Element};

/// Random element trees with arbitrary text content and attributes.
fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = ("[a-z]{1,8}", "[ -~]{0,12}").prop_map(|(name, text)| {
        let mut e = Element::new(&name);
        if !text.is_empty() {
            e = e.text(&text);
        }
        e
    });
    leaf.prop_recursive(3, 24, 3, |inner| {
        ("[a-z]{1,8}", "[ -~]{0,8}", prop::collection::vec(inner, 0..4)).prop_map(
            |(name, attr, children)| {
                let mut e = Element::new(&name).attr("k", &attr);
                for c in children {
                    e = e.child(c);
                }
                e
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Text escaping round-trips arbitrary strings, including markup
    /// characters and non-ASCII.
    #[test]
    fn escape_text_roundtrips(s in ".{0,200}") {
        prop_assume!(!s.chars().any(|c| c == '\r'));
        let escaped = escape_text(&s);
        prop_assert_eq!(unescape(&escaped).unwrap().into_owned(), s);
    }

    /// Attribute escaping round-trips arbitrary strings.
    #[test]
    fn escape_attr_roundtrips(s in ".{0,200}") {
        prop_assume!(!s.chars().any(|c| c == '\r'));
        let escaped = escape_attr(&s);
        prop_assert_eq!(unescape(&escaped).unwrap().into_owned(), s);
    }

    /// Serialize → parse preserves structure, names, and attributes of
    /// random element trees.
    #[test]
    fn document_roundtrips(root in element_strategy()) {
        prop_assume!(!contains_cr(&root));
        let doc = Document::new(root);
        let xml = doc.to_xml();
        let parsed = parse_document(&xml)
            .map_err(|e| TestCaseError::fail(format!("parse failed on {xml:?}: {e}")))?;
        prop_assert!(
            elements_equivalent(&doc.root, &parsed.root),
            "round-trip changed the tree\n ours: {:?}\n back: {:?}\n xml: {xml:?}",
            doc.root, parsed.root
        );
    }
}

/// Carriage returns are normalized to '\n' by XML line-ending rules, so
/// trees containing them legitimately round-trip modulo that rewrite; the
/// properties simply skip them.
fn contains_cr(e: &Element) -> bool {
    e.attributes.iter().any(|a| a.value.contains('\r'))
        || e.children.iter().any(|n| match n {
            axml_xml::Node::Text(t) => t.contains('\r'),
            axml_xml::Node::Element(c) => contains_cr(c),
            _ => false,
        })
}

/// Structural equality modulo text-node merging (adjacent text nodes are
/// indistinguishable once serialized) and dropped empty text.
fn elements_equivalent(a: &Element, b: &Element) -> bool {
    if a.name.local != b.name.local {
        return false;
    }
    let attrs = |e: &Element| -> Vec<(String, String)> {
        e.attributes
            .iter()
            .map(|at| (at.name.local.clone(), at.value.clone()))
            .collect()
    };
    if attrs(a) != attrs(b) {
        return false;
    }
    let a_kids = merged_children(a);
    let b_kids = merged_children(b);
    if a_kids.len() != b_kids.len() {
        return false;
    }
    a_kids.iter().zip(&b_kids).all(|(x, y)| match (x, y) {
        (Merged::Text(s), Merged::Text(t)) => s == t,
        (Merged::Elem(e1), Merged::Elem(e2)) => elements_equivalent(e1, e2),
        _ => false,
    })
}

enum Merged<'a> {
    Text(String),
    Elem(&'a Element),
}

fn merged_children(e: &Element) -> Vec<Merged<'_>> {
    let mut out: Vec<Merged<'_>> = Vec::new();
    for n in &e.children {
        match n {
            axml_xml::Node::Text(t) => {
                if t.is_empty() {
                    continue;
                }
                if let Some(Merged::Text(prev)) = out.last_mut() {
                    prev.push_str(t);
                } else {
                    out.push(Merged::Text(t.clone()));
                }
            }
            axml_xml::Node::Element(c) => out.push(Merged::Elem(c)),
            _ => {}
        }
    }
    out
}
