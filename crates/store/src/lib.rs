//! Persistent warm state for Active XML peers (DESIGN.md §11).
//!
//! PR 4's [`SolveCache`] makes warm enforcement several times faster
//! than cold, but a process restart throws the cache away — and a
//! production fleet restarts constantly, paying full cold-solve
//! latency exactly when traffic is least forgiving. This crate gives
//! a peer a durable home for two artifacts:
//!
//! * **Solver-cache snapshots** ([`Store::persist_cache`] /
//!   [`Store::load_cache`]): every solved safe/possible game and
//!   complement/target DFA, serialized under its full structural key.
//!   Keys embed the schema fingerprint, so invalidation is safe by
//!   construction, and a loaded entry is bit-identical to a cold
//!   solve — a restarted daemon resumes at warm hit-rates.
//! * **The schema compatibility matrix** ([`CompatMatrix`]): the
//!   precomputed Sec. 6 schema-to-schema safe-rewriting relation over
//!   a peer's schema portfolio, consulted during exchange negotiation
//!   so "can I safely send to you?" costs a table lookup, not a game.
//!
//! Both live in one versioned, checksummed, little-endian on-disk
//! format (see [`format`]); writes are atomic (tmp + rename) and every
//! read is verified, so a torn, truncated, bit-flipped, version-skewed
//! or foreign-schema file loads as a *cold miss* with
//! `store.corrupt_discarded_total` incremented — never a panic, never
//! a stale answer.
//!
//! [`SolveCache`]: axml_core::solve_cache::SolveCache

#![warn(missing_docs)]

pub mod format;
pub mod matrix;
pub mod snapshot;
mod store;

pub use matrix::{CompatMatrix, MATRIX_MAGIC};
pub use snapshot::{decode_entries, encode_entries, CACHE_MAGIC};
pub use store::{LoadReport, Store, CACHE_SNAPSHOT_FILE, MATRIX_FILE};
