//! The on-disk container format shared by every store artifact.
//!
//! A store file is one fixed-size little-endian header followed by one
//! checksummed payload (DESIGN.md §11):
//!
//! ```text
//! offset  size  field
//!      0     4  magic        artifact kind (b"AXSC" cache, b"AXCM" matrix)
//!      4     4  version      format version (u32 LE)
//!      8     8  fingerprint  schema fingerprint the artifact was captured
//!                            under (0 when not applicable)
//!     16     8  payload_len  exact payload byte count (u64 LE)
//!     24     8  checksum     FNV-1a 64 of the payload bytes
//!     32     …  payload      artifact-specific encoding
//! ```
//!
//! Fixed-width LE fields and a length-prefixed payload make the layout
//! mmap-friendly: a reader can validate the header, then hand the
//! payload slice to the decoder without copying. Loading is paranoid by
//! design — a file that is truncated, bit-flipped, version-skewed, or
//! captured under another schema is reported as [`Corrupt`] and the
//! caller falls back to a cold cache. Corruption is *never* an error
//! that propagates: warm state is an optimization, losing it is safe.
//!
//! [`Corrupt`]: FileError::Corrupt

use axml_support::hash::fnv64;
use std::io::Write;
use std::path::Path;

/// Current snapshot format version. Bump on any payload layout change;
/// old files then load as cold misses instead of being misdecoded.
pub const FORMAT_VERSION: u32 = 1;

/// Header size in bytes (see the module docs for the layout).
pub const HEADER_LEN: usize = 32;

/// Why a store file could not be used.
#[derive(Debug)]
pub enum FileError {
    /// The file does not exist — a normal cold start, not corruption.
    Missing,
    /// The file exists but cannot be trusted: torn write, bit flip,
    /// version skew, or captured under a different schema. The reason
    /// is diagnostic only; every corrupt file is handled identically
    /// (discard, count, run cold).
    Corrupt(String),
    /// An I/O error other than the file being absent.
    Io(std::io::Error),
}

impl std::fmt::Display for FileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileError::Missing => write!(f, "no snapshot on disk"),
            FileError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
            FileError::Io(e) => write!(f, "snapshot i/o: {e}"),
        }
    }
}

impl std::error::Error for FileError {}

/// Serializes `payload` under a checksummed header and writes it
/// atomically: the bytes go to `<path>.tmp` first and are renamed into
/// place, so a crash mid-write can tear only the temporary — the
/// published file is always a complete, old-or-new artifact.
pub fn write_file(
    path: &Path,
    magic: [u8; 4],
    fingerprint: u64,
    payload: &[u8],
) -> std::io::Result<u64> {
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(&magic);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&fingerprint.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv64(payload).to_le_bytes());
    bytes.extend_from_slice(payload);

    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(bytes.len() as u64)
}

/// Reads and verifies a store file, returning its payload.
///
/// `expected_fingerprint` pins the artifact to the schema the caller is
/// about to serve; `None` skips that check (the compatibility matrix
/// carries per-schema fingerprints in its payload instead).
pub fn read_file(
    path: &Path,
    magic: [u8; 4],
    expected_fingerprint: Option<u64>,
) -> Result<Vec<u8>, FileError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(FileError::Missing),
        Err(e) => return Err(FileError::Io(e)),
    };
    if bytes.len() < HEADER_LEN {
        return Err(FileError::Corrupt(format!(
            "file is {} bytes, shorter than the {HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if bytes[0..4] != magic {
        return Err(FileError::Corrupt(format!(
            "magic {:02x?} != expected {:02x?}",
            &bytes[0..4],
            magic
        )));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(FileError::Corrupt(format!(
            "format version {version} != supported {FORMAT_VERSION}"
        )));
    }
    let fingerprint = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if let Some(expected) = expected_fingerprint {
        if fingerprint != expected {
            return Err(FileError::Corrupt(format!(
                "schema fingerprint {fingerprint:#018x} != serving schema {expected:#018x}"
            )));
        }
    }
    let payload_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let checksum = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != payload_len {
        return Err(FileError::Corrupt(format!(
            "payload is {} bytes, header declares {payload_len}",
            payload.len()
        )));
    }
    let actual = fnv64(payload);
    if actual != checksum {
        return Err(FileError::Corrupt(format!(
            "checksum {actual:#018x} != recorded {checksum:#018x}"
        )));
    }
    Ok(payload.to_vec())
}

/// A little-endian payload encoder. All multi-byte integers are
/// fixed-width LE; collections are length-prefixed with a `u32`.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// A fresh, empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// The encoded payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` (LE).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (LE).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64` (LE).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// A bounds-checked payload decoder over a byte slice. Every read can
/// fail; none can panic or read past the end — a decoder over hostile
/// bytes degenerates to `Err`, never to undefined behavior or an
/// attacker-sized allocation.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32` (LE).
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64` (LE).
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` and converts to `usize`.
    pub fn usize(&mut self) -> Result<usize, String> {
        usize::try_from(self.u64()?).map_err(|_| "length overflows usize".to_owned())
    }

    /// Reads a bool byte (strictly 0 or 1, so flipped padding is caught).
    pub fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("invalid bool byte {b:#04x}")),
        }
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "string is not UTF-8".to_owned())
    }

    /// Reads a `u32` element count for a collection whose elements each
    /// occupy at least `min_bytes` — rejecting counts the remaining
    /// bytes cannot possibly hold, so a corrupted count can never drive
    /// a huge allocation.
    pub fn count(&mut self, min_bytes: usize) -> Result<usize, String> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_bytes.max(1)) > remaining {
            return Err(format!(
                "count {n} needs ≥{} bytes but only {remaining} remain",
                n.saturating_mul(min_bytes.max(1))
            ));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xdead_beef);
        e.u64(u64::MAX - 1);
        e.bool(true);
        e.str("héllo");
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert!(d.bool().unwrap());
        assert_eq!(d.str().unwrap(), "héllo");
        assert!(d.is_done());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut e = Enc::new();
        e.u64(42);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes[..5]);
        assert!(d.u64().is_err());
    }

    #[test]
    fn hostile_count_rejected_before_allocation() {
        let mut e = Enc::new();
        e.u32(u32::MAX);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert!(d.count(4).is_err());
    }

    #[test]
    fn file_roundtrip_and_corruption() {
        let dir = std::env::temp_dir().join(format!("axsn-fmt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.axsc");
        let magic = *b"AXSC";
        write_file(&path, magic, 0xfeed, b"payload bytes").unwrap();
        assert_eq!(read_file(&path, magic, Some(0xfeed)).unwrap(), b"payload bytes");
        // Wrong expected fingerprint.
        assert!(matches!(
            read_file(&path, magic, Some(0xbeef)),
            Err(FileError::Corrupt(_))
        ));
        // Wrong magic.
        assert!(matches!(
            read_file(&path, *b"XXXX", None),
            Err(FileError::Corrupt(_))
        ));
        // Bit flip in the payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_file(&path, magic, None),
            Err(FileError::Corrupt(_))
        ));
        // Missing file.
        assert!(matches!(
            read_file(&dir.join("absent"), magic, None),
            Err(FileError::Missing)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
