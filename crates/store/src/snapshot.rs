//! Serialization of [`SolveCache`] entries (DESIGN.md §11.2).
//!
//! A snapshot is the cache's [`CacheEntry`] export — full structural
//! keys plus solved values — encoded entry-by-entry in LRU order
//! (least-recently used first). Loading replays the entries through
//! [`SolveCache::preload`] in the same order, reconstructing both the
//! contents and the relative eviction order of the persisted cache.
//!
//! What is persisted per value:
//!
//! * DFAs (`Comp`/`Target`) — all four fields verbatim.
//! * Solved games — the expansion automaton `A_w^k`, the opponent DFA,
//!   and the product graph *with its solution* (`marked`/`viable`
//!   sets, node pairs, adjacency in original order, stats). Derived
//!   indexes (pair→node map, reverse adjacency) are rebuilt on load.
//!   Memoized [`Decision`] plans are *not* persisted: extraction is
//!   deterministic, so the first warm request recomputes an identical
//!   plan.
//!
//! Decode goes through the validating `from_parts` constructors, so a
//! payload that passed the checksum but is structurally impossible
//! (only reachable through a format bug, not disk corruption) still
//! becomes a load error, never a panic in the solver.
//!
//! [`Decision`]: axml_core::safe::Decision

use crate::format::{Dec, Enc};
use axml_automata::Dfa;
use axml_core::awk::{Awk, Direction, Edge, StateKind};
use axml_core::possible::PossibleGame;
use axml_core::safe::{BuildMode, GameStats, SafeGame};
use axml_core::solve_cache::{CacheEntry, SolvedPossible, SolvedSafe, TargetSlot};
use std::sync::Arc;

/// Magic for solver-cache snapshot files.
pub const CACHE_MAGIC: [u8; 4] = *b"AXSC";

const TAG_COMP: u8 = 0;
const TAG_TARGET: u8 = 1;
const TAG_SAFE: u8 = 2;
const TAG_POSSIBLE: u8 = 3;

/// Encodes exported cache entries into a snapshot payload.
pub fn encode_entries(entries: &[CacheEntry]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(entries.len() as u32);
    for entry in entries {
        match entry {
            CacheEntry::CompDfa { schema, slot, dfa } => {
                e.u8(TAG_COMP);
                e.u64(*schema);
                slot_enc(&mut e, *slot);
                dfa_enc(&mut e, dfa);
            }
            CacheEntry::TargetDfa { schema, slot, dfa } => {
                e.u8(TAG_TARGET);
                e.u64(*schema);
                slot_enc(&mut e, *slot);
                dfa_enc(&mut e, dfa);
            }
            CacheEntry::SafeGame {
                schema,
                slot,
                word,
                k,
                mode,
                max_states,
                game,
            } => {
                e.u8(TAG_SAFE);
                e.u64(*schema);
                slot_enc(&mut e, *slot);
                word_enc(&mut e, word);
                e.u32(*k);
                e.u8(match mode {
                    BuildMode::Eager => 0,
                    BuildMode::Lazy => 1,
                });
                e.usize(*max_states);
                safe_enc(&mut e, game);
            }
            CacheEntry::PossibleGame {
                schema,
                slot,
                word,
                k,
                max_states,
                game,
            } => {
                e.u8(TAG_POSSIBLE);
                e.u64(*schema);
                slot_enc(&mut e, *slot);
                word_enc(&mut e, word);
                e.u32(*k);
                e.usize(*max_states);
                possible_enc(&mut e, game);
            }
        }
    }
    e.finish()
}

/// Decodes a snapshot payload back into cache entries (LRU order).
pub fn decode_entries(payload: &[u8]) -> Result<Vec<CacheEntry>, String> {
    let mut d = Dec::new(payload);
    let n = d.count(13)?; // tag + schema + slot is the minimum entry
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = d.u8()?;
        let schema = d.u64()?;
        let slot = slot_dec(&mut d)?;
        let entry = match tag {
            TAG_COMP => CacheEntry::CompDfa {
                schema,
                slot,
                dfa: Arc::new(dfa_dec(&mut d)?),
            },
            TAG_TARGET => CacheEntry::TargetDfa {
                schema,
                slot,
                dfa: Arc::new(dfa_dec(&mut d)?),
            },
            TAG_SAFE => {
                let word = word_dec(&mut d)?;
                let k = d.u32()?;
                let mode = match d.u8()? {
                    0 => BuildMode::Eager,
                    1 => BuildMode::Lazy,
                    b => return Err(format!("invalid build mode {b}")),
                };
                let max_states = d.usize()?;
                let game = safe_dec(&mut d)?;
                CacheEntry::SafeGame {
                    schema,
                    slot,
                    word,
                    k,
                    mode,
                    max_states,
                    game: Arc::new(SolvedSafe::new(game)),
                }
            }
            TAG_POSSIBLE => {
                let word = word_dec(&mut d)?;
                let k = d.u32()?;
                let max_states = d.usize()?;
                let game = possible_dec(&mut d)?;
                CacheEntry::PossibleGame {
                    schema,
                    slot,
                    word,
                    k,
                    max_states,
                    game: Arc::new(SolvedPossible::new(game)),
                }
            }
            t => return Err(format!("unknown entry tag {t}")),
        };
        entries.push(entry);
    }
    if !d.is_done() {
        return Err("trailing bytes after the last entry".to_owned());
    }
    Ok(entries)
}

fn slot_enc(e: &mut Enc, slot: TargetSlot) {
    match slot {
        TargetSlot::Content(s) => {
            e.u8(0);
            e.u32(s);
        }
        TargetSlot::Input(s) => {
            e.u8(1);
            e.u32(s);
        }
        TargetSlot::Output(s) => {
            e.u8(2);
            e.u32(s);
        }
    }
}

fn slot_dec(d: &mut Dec<'_>) -> Result<TargetSlot, String> {
    let tag = d.u8()?;
    let sym = d.u32()?;
    match tag {
        0 => Ok(TargetSlot::Content(sym)),
        1 => Ok(TargetSlot::Input(sym)),
        2 => Ok(TargetSlot::Output(sym)),
        t => Err(format!("invalid target slot tag {t}")),
    }
}

fn word_enc(e: &mut Enc, word: &[u32]) {
    e.u32(word.len() as u32);
    for &s in word {
        e.u32(s);
    }
}

fn word_dec(d: &mut Dec<'_>) -> Result<Box<[u32]>, String> {
    let n = d.count(4)?;
    let mut w = Vec::with_capacity(n);
    for _ in 0..n {
        w.push(d.u32()?);
    }
    Ok(w.into_boxed_slice())
}

fn dfa_enc(e: &mut Enc, dfa: &Dfa) {
    e.u32(dfa.num_symbols as u32);
    e.u32(dfa.num_states() as u32);
    e.u32(dfa.start);
    for &f in &dfa.finals {
        e.bool(f);
    }
    for &t in &dfa.table {
        e.u32(t);
    }
}

fn dfa_dec(d: &mut Dec<'_>) -> Result<Dfa, String> {
    let num_symbols = d.u32()? as usize;
    let states = d.u32()? as usize;
    let start = d.u32()?;
    let table_len = states
        .checked_mul(num_symbols)
        .ok_or("DFA dimensions overflow")?;
    if states > 0 && (start as usize) >= states {
        return Err(format!("DFA start {start} out of range ({states} states)"));
    }
    let mut finals = Vec::with_capacity(states.min(1 << 20));
    for _ in 0..states {
        finals.push(d.bool()?);
    }
    let mut table = Vec::with_capacity(table_len.min(1 << 24));
    for _ in 0..table_len {
        let t = d.u32()?;
        if t != axml_automata::NO_STATE && (t as usize) >= states {
            return Err(format!("DFA transition to unknown state {t}"));
        }
        table.push(t);
    }
    Ok(Dfa {
        num_symbols,
        table,
        start,
        finals,
    })
}

fn awk_enc(e: &mut Enc, awk: &Awk) {
    e.u32(awk.num_symbols as u32);
    e.u32(awk.k);
    e.u8(match awk.direction {
        Direction::LeftToRight => 0,
        Direction::RightToLeft => 1,
    });
    e.u32(awk.start);
    e.u32(awk.finish);
    e.u32(awk.num_states() as u32);
    for s in 0..awk.num_states() as u32 {
        match awk.kind(s) {
            StateKind::Regular => e.u8(0),
            StateKind::Fork {
                func,
                skip,
                invoke,
                depth,
            } => {
                e.u8(1);
                e.u32(func);
                e.u32(skip);
                e.u32(invoke);
                e.u32(depth);
            }
        }
    }
    e.u32(awk.num_edges() as u32);
    for id in 0..awk.num_edges() as u32 {
        let edge = awk.edge(id);
        e.u32(edge.from);
        e.u32(edge.to);
        match edge.label {
            None => e.u8(0),
            Some(sym) => {
                e.u8(1);
                e.u32(sym);
            }
        }
    }
    // The adjacency is order-significant (fork expansion reorders it in
    // place), so it is written explicitly rather than derived.
    for s in 0..awk.num_states() as u32 {
        let out = awk.out_edges(s);
        e.u32(out.len() as u32);
        for &id in out {
            e.u32(id);
        }
    }
}

fn awk_dec(d: &mut Dec<'_>) -> Result<Awk, String> {
    let num_symbols = d.u32()? as usize;
    let k = d.u32()?;
    let direction = match d.u8()? {
        0 => Direction::LeftToRight,
        1 => Direction::RightToLeft,
        b => return Err(format!("invalid direction byte {b}")),
    };
    let start = d.u32()?;
    let finish = d.u32()?;
    let states = d.count(1)?;
    let mut kinds = Vec::with_capacity(states);
    for _ in 0..states {
        kinds.push(match d.u8()? {
            0 => StateKind::Regular,
            1 => StateKind::Fork {
                func: d.u32()?,
                skip: d.u32()?,
                invoke: d.u32()?,
                depth: d.u32()?,
            },
            b => return Err(format!("invalid state kind {b}")),
        });
    }
    let num_edges = d.count(9)?;
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let from = d.u32()?;
        let to = d.u32()?;
        let label = match d.u8()? {
            0 => None,
            1 => Some(d.u32()?),
            b => return Err(format!("invalid edge label flag {b}")),
        };
        edges.push(Edge { from, to, label });
    }
    let mut out = Vec::with_capacity(states);
    for _ in 0..states {
        let n = d.count(4)?;
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(d.u32()?);
        }
        out.push(ids);
    }
    Awk::from_parts(num_symbols, kinds, edges, out, start, finish, k, direction)
}

fn stats_enc(e: &mut Enc, stats: &GameStats) {
    e.usize(stats.nodes);
    e.usize(stats.edges);
    e.usize(stats.sink_pruned);
    e.usize(stats.mark_pruned);
}

fn stats_dec(d: &mut Dec<'_>) -> Result<GameStats, String> {
    Ok(GameStats {
        nodes: d.usize()?,
        edges: d.usize()?,
        sink_pruned: d.usize()?,
        mark_pruned: d.usize()?,
    })
}

fn product_enc(e: &mut Enc, nodes: usize, pair: impl Fn(u32) -> (u32, u32), succs: impl Fn(u32) -> Vec<(u32, u32)>, flag: impl Fn(u32) -> bool) {
    e.u32(nodes as u32);
    for n in 0..nodes as u32 {
        let (s, q) = pair(n);
        e.u32(s);
        e.u32(q);
    }
    for n in 0..nodes as u32 {
        let out = succs(n);
        e.u32(out.len() as u32);
        for (eid, m) in out {
            e.u32(eid);
            e.u32(m);
        }
    }
    for n in 0..nodes as u32 {
        e.bool(flag(n));
    }
}

#[allow(clippy::type_complexity)]
fn product_dec(d: &mut Dec<'_>) -> Result<(Vec<(u32, u32)>, Vec<Vec<(u32, u32)>>, Vec<bool>), String> {
    let nodes = d.count(8)?;
    let mut pairs = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        pairs.push((d.u32()?, d.u32()?));
    }
    let mut out = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        let n = d.count(8)?;
        let mut succs = Vec::with_capacity(n);
        for _ in 0..n {
            succs.push((d.u32()?, d.u32()?));
        }
        out.push(succs);
    }
    let mut flags = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        flags.push(d.bool()?);
    }
    Ok((pairs, out, flags))
}

fn safe_enc(e: &mut Enc, game: &SafeGame) {
    awk_enc(e, &game.awk);
    dfa_enc(e, &game.comp);
    product_enc(
        e,
        game.num_nodes(),
        |n| game.pair(n),
        |n| game.successors(n).to_vec(),
        |n| game.is_marked(n),
    );
    e.u32(game.start);
    stats_enc(e, &game.stats);
}

fn safe_dec(d: &mut Dec<'_>) -> Result<SafeGame, String> {
    let awk = awk_dec(d)?;
    let comp = dfa_dec(d)?;
    let (pairs, out, marked) = product_dec(d)?;
    let start = d.u32()?;
    let stats = stats_dec(d)?;
    SafeGame::from_solved_parts(awk, comp, pairs, out, marked, start, stats)
}

fn possible_enc(e: &mut Enc, game: &PossibleGame) {
    awk_enc(e, &game.awk);
    dfa_enc(e, &game.target);
    product_enc(
        e,
        game.num_nodes(),
        |n| game.pair(n),
        |n| game.successors(n).to_vec(),
        |n| game.is_viable(n),
    );
    e.u32(game.start);
    stats_enc(e, &game.stats);
}

fn possible_dec(d: &mut Dec<'_>) -> Result<PossibleGame, String> {
    let awk = awk_dec(d)?;
    let target = dfa_dec(d)?;
    let (pairs, out, viable) = product_dec(d)?;
    let start = d.u32()?;
    let stats = stats_dec(d)?;
    PossibleGame::from_solved_parts(awk, target, pairs, out, viable, start, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_core::awk::AwkLimits;
    use axml_core::safe::complement_of;
    use axml_schema::{Compiled, NoOracle, Schema};

    fn paper_compiled() -> Compiled {
        Compiled::new(
            Schema::builder()
                .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.(Get_Date|date)")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap()
    }

    fn solved_entries() -> Vec<CacheEntry> {
        let c = paper_compiled();
        let names = ["title", "date", "Get_Temp", "TimeOut"];
        let w: Vec<u32> = names
            .iter()
            .map(|n| c.alphabet().lookup(n).unwrap())
            .collect();
        let mut ab = c.alphabet().clone();
        let re = axml_automata::Regex::parse("title.date.temp.(TimeOut|exhibit*)", &mut ab).unwrap();
        let n = c.alphabet().len();
        let comp = complement_of(&re, n);
        let awk = Awk::build(&w, &c, 1, &AwkLimits::default()).unwrap();
        let safe = SafeGame::solve_in(awk, comp.clone(), BuildMode::Lazy, &axml_obs::Registry::new());
        let awk2 = Awk::build(&w, &c, 1, &AwkLimits::default()).unwrap();
        let target = axml_core::possible::target_of(&re, n);
        let possible = PossibleGame::solve_in(awk2, target.clone(), &axml_obs::Registry::new());
        vec![
            CacheEntry::CompDfa {
                schema: c.fingerprint(),
                slot: TargetSlot::Content(0),
                dfa: Arc::new(comp),
            },
            CacheEntry::TargetDfa {
                schema: c.fingerprint(),
                slot: TargetSlot::Content(0),
                dfa: Arc::new(target),
            },
            CacheEntry::SafeGame {
                schema: c.fingerprint(),
                slot: TargetSlot::Content(0),
                word: w.clone().into_boxed_slice(),
                k: 1,
                mode: BuildMode::Lazy,
                max_states: 500_000,
                game: Arc::new(SolvedSafe::new(safe)),
            },
            CacheEntry::PossibleGame {
                schema: c.fingerprint(),
                slot: TargetSlot::Content(0),
                word: w.into_boxed_slice(),
                k: 1,
                max_states: 500_000,
                game: Arc::new(SolvedPossible::new(possible)),
            },
        ]
    }

    #[test]
    fn entries_roundtrip_byte_identically() {
        let entries = solved_entries();
        let payload = encode_entries(&entries);
        let decoded = decode_entries(&payload).unwrap();
        // Re-encoding the decode reproduces the payload bit-for-bit —
        // the round-trip loses nothing the encoder can see.
        assert_eq!(encode_entries(&decoded), payload);
        // And the decoded games carry the same verdicts.
        match (&entries[2], &decoded[2]) {
            (CacheEntry::SafeGame { game: a, .. }, CacheEntry::SafeGame { game: b, .. }) => {
                assert_eq!(a.is_safe(), b.is_safe());
                assert_eq!(a.num_nodes(), b.num_nodes());
                assert_eq!(a.plan_cached(), b.plan_cached());
            }
            _ => panic!("entry kind drifted through the roundtrip"),
        }
        match (&entries[3], &decoded[3]) {
            (
                CacheEntry::PossibleGame { game: a, .. },
                CacheEntry::PossibleGame { game: b, .. },
            ) => {
                assert_eq!(a.is_possible(), b.is_possible());
                assert_eq!(a.plan_cached(), b.plan_cached());
            }
            _ => panic!("entry kind drifted through the roundtrip"),
        }
    }

    #[test]
    fn truncated_payload_is_an_error() {
        let payload = encode_entries(&solved_entries());
        for cut in [1usize, 7, payload.len() / 2, payload.len() - 1] {
            assert!(decode_entries(&payload[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let mut payload = encode_entries(&solved_entries());
        payload.push(0);
        assert!(decode_entries(&payload).is_err());
    }
}
