//! The precomputed schema compatibility matrix (DESIGN.md §11.3).
//!
//! Sec. 6 of the paper lifts safe rewriting from documents to schemas:
//! `S safely rewrites into S'` iff *every* document of `S` can be
//! safely enforced into `S'`. That relation is a pairwise property of
//! a peer's schema portfolio — it does not depend on any document — so
//! a fleet that upgrades schemas over time can compute it *offline*,
//! persist it, and answer "can I still safely send to you?" during
//! negotiation without solving a single game on the hot path.
//!
//! Each portfolio member is pinned by its [`Compiled::fingerprint`].
//! A consult with a fingerprint that no longer matches (the named
//! schema changed since the matrix was built) returns `None` — the
//! caller falls back to the live Sec. 6 check, so a stale matrix can
//! delay but never corrupt a negotiation.

use crate::format::{Dec, Enc};
use axml_core::schema_rw::schema_safe_rewrites;
use axml_schema::{Compiled, PatternOracle, Schema, SchemaError};

/// Magic for compatibility-matrix files.
pub const MATRIX_MAGIC: [u8; 4] = *b"AXCM";

/// The precomputed Sec. 6 safe-rewriting relation over one schema
/// portfolio: for every ordered pair `(from, to)`, whether `from`
/// safely rewrites into `to` at depth `k`, and if not, why not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompatMatrix {
    k: u32,
    root: String,
    /// Portfolio members: name and compiled structural fingerprint.
    schemas: Vec<(String, u64)>,
    /// Row-major verdicts; `None` = compatible, `Some(reason)` = not.
    verdicts: Vec<Option<String>>,
}

impl CompatMatrix {
    /// Computes the full pairwise relation over `portfolio` by running
    /// the Sec. 6 check (`schema_safe_rewrites`) for every ordered
    /// pair — `n²` solver runs, intended for offline/startup use; the
    /// hot path only ever calls [`CompatMatrix::can_send`].
    pub fn build(
        portfolio: &[(String, Schema)],
        root: &str,
        k: u32,
        oracle: &dyn PatternOracle,
    ) -> Result<CompatMatrix, SchemaError> {
        let mut schemas = Vec::with_capacity(portfolio.len());
        for (name, schema) in portfolio {
            let compiled = Compiled::new(schema.clone(), oracle)?;
            schemas.push((name.clone(), compiled.fingerprint()));
        }
        let mut verdicts = Vec::with_capacity(portfolio.len() * portfolio.len());
        for (_, from) in portfolio {
            for (_, to) in portfolio {
                let report = schema_safe_rewrites(from, root, to, k, oracle)?;
                verdicts.push(if report.compatible() {
                    None
                } else {
                    report.failures.first().map(|f| f.to_string())
                });
            }
        }
        Ok(CompatMatrix {
            k,
            root: root.to_owned(),
            schemas,
            verdicts,
        })
    }

    /// The depth bound the relation was computed at.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The root element the relation was computed for.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// Portfolio member names, in matrix order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.schemas.iter().map(|(n, _)| n.as_str())
    }

    /// Number of portfolio members.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// True when the portfolio is empty.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// The recorded fingerprint of a named member.
    pub fn fingerprint_of(&self, name: &str) -> Option<u64> {
        self.index_of(name).map(|i| self.schemas[i].1)
    }

    fn index_of(&self, name: &str) -> Option<usize> {
        self.schemas.iter().position(|(n, _)| n == name)
    }

    /// The precomputed verdict for "documents of `from` can be safely
    /// enforced into `to`". `None` when either name is not in the
    /// portfolio — the caller must fall back to the live check.
    pub fn can_send(&self, from: &str, to: &str) -> Option<bool> {
        let i = self.index_of(from)?;
        let j = self.index_of(to)?;
        Some(self.verdicts[i * self.schemas.len() + j].is_none())
    }

    /// Like [`CompatMatrix::can_send`], but additionally pins both
    /// members to live fingerprints: a name whose schema has changed
    /// since the matrix was built yields `None` (stale — recompute),
    /// never a wrong verdict.
    pub fn can_send_pinned(
        &self,
        from: &str,
        from_fingerprint: u64,
        to: &str,
        to_fingerprint: u64,
    ) -> Option<bool> {
        if self.fingerprint_of(from)? != from_fingerprint
            || self.fingerprint_of(to)? != to_fingerprint
        {
            return None;
        }
        self.can_send(from, to)
    }

    /// Why `from` cannot safely rewrite into `to` (first recorded
    /// incompatibility), if the pair is known and incompatible.
    pub fn reason(&self, from: &str, to: &str) -> Option<&str> {
        let i = self.index_of(from)?;
        let j = self.index_of(to)?;
        self.verdicts[i * self.schemas.len() + j].as_deref()
    }

    /// Encodes the matrix into a store payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(self.k);
        e.str(&self.root);
        e.u32(self.schemas.len() as u32);
        for (name, fp) in &self.schemas {
            e.str(name);
            e.u64(*fp);
        }
        for v in &self.verdicts {
            match v {
                None => e.u8(0),
                Some(reason) => {
                    e.u8(1);
                    e.str(reason);
                }
            }
        }
        e.finish()
    }

    /// Decodes a store payload back into a matrix.
    pub fn decode(payload: &[u8]) -> Result<CompatMatrix, String> {
        let mut d = Dec::new(payload);
        let k = d.u32()?;
        let root = d.str()?;
        let n = d.count(12)?;
        let mut schemas = Vec::with_capacity(n);
        for _ in 0..n {
            let name = d.str()?;
            let fp = d.u64()?;
            schemas.push((name, fp));
        }
        let cells = n
            .checked_mul(n)
            .ok_or("matrix dimensions overflow")?;
        let mut verdicts = Vec::with_capacity(cells);
        for _ in 0..cells {
            verdicts.push(match d.u8()? {
                0 => None,
                1 => Some(d.str()?),
                b => return Err(format!("invalid verdict flag {b}")),
            });
        }
        if !d.is_done() {
            return Err("trailing bytes after the last verdict".to_owned());
        }
        Ok(CompatMatrix {
            k,
            root,
            schemas,
            verdicts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_schema::NoOracle;

    /// The paper's (*) schema: temp and the guide may stay intensional.
    fn star() -> Schema {
        Schema::builder()
            .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .element("exhibit", "title.(Get_Date|date)")
            .data_element("performance")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit|performance)*")
            .function("Get_Date", "title", "date")
            .build()
            .unwrap()
    }

    /// The paper's (**) schema: temp must be materialized.
    fn star_star() -> Schema {
        Schema::builder()
            .element("newspaper", "title.date.temp.(TimeOut|exhibit*)")
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .element("exhibit", "title.(Get_Date|date)")
            .data_element("performance")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit|performance)*")
            .function("Get_Date", "title", "date")
            .build()
            .unwrap()
    }

    fn portfolio() -> Vec<(String, Schema)> {
        vec![
            ("star".to_owned(), star()),
            ("star_star".to_owned(), star_star()),
        ]
    }

    #[test]
    fn matrix_matches_live_sec6_checks() {
        let m = CompatMatrix::build(&portfolio(), "newspaper", 1, &NoOracle).unwrap();
        for (from, fs) in portfolio() {
            for (to, ts) in portfolio() {
                let live = schema_safe_rewrites(&fs, "newspaper", &ts, 1, &NoOracle)
                    .unwrap()
                    .compatible();
                assert_eq!(
                    m.can_send(&from, &to),
                    Some(live),
                    "matrix and live check disagree on {from} -> {to}"
                );
            }
        }
        // The paper's pair: (*) safely rewrites into (**).
        assert_eq!(m.can_send("star", "star_star"), Some(true));
        // Unknown members are a miss, not a verdict.
        assert_eq!(m.can_send("star", "ghost"), None);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = CompatMatrix::build(&portfolio(), "newspaper", 2, &NoOracle).unwrap();
        let payload = m.encode();
        let back = CompatMatrix::decode(&payload).unwrap();
        assert_eq!(m, back);
        assert_eq!(back.encode(), payload);
    }

    #[test]
    fn pinned_consult_rejects_stale_fingerprints() {
        let m = CompatMatrix::build(&portfolio(), "newspaper", 1, &NoOracle).unwrap();
        let fp_star = m.fingerprint_of("star").unwrap();
        let fp_ss = m.fingerprint_of("star_star").unwrap();
        assert_eq!(
            m.can_send_pinned("star", fp_star, "star_star", fp_ss),
            Some(true)
        );
        // A drifted schema (wrong fingerprint) must miss, not answer.
        assert_eq!(m.can_send_pinned("star", fp_star ^ 1, "star_star", fp_ss), None);
    }
}
