//! The [`Store`] handle: one directory of warm-state artifacts plus
//! the `store.*` observability instruments.

use crate::format::{self, FileError};
use crate::matrix::{CompatMatrix, MATRIX_MAGIC};
use crate::snapshot::{decode_entries, encode_entries, CACHE_MAGIC};
use axml_core::solve_cache::SolveCache;
use axml_obs::{Counter, Gauge, Registry};
use std::path::{Path, PathBuf};

/// File name of the solver-cache snapshot inside a store directory.
pub const CACHE_SNAPSHOT_FILE: &str = "solve_cache.axsc";
/// File name of the compatibility matrix inside a store directory.
pub const MATRIX_FILE: &str = "compat_matrix.axcm";

/// What one load attempt did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Entries decoded and preloaded into the cache.
    pub entries: usize,
    /// Bytes of snapshot consumed.
    pub bytes: u64,
    /// True when a file existed but was discarded as corrupt/stale.
    pub discarded: bool,
}

/// A directory of persistent warm state for one peer: the solver-cache
/// snapshot and the schema compatibility matrix, with every operation
/// accounted under `store.*` metrics.
///
/// All writes are atomic (tmp + rename), so a crash can never publish
/// a torn file; all reads are checksum-verified, so a torn or
/// bit-flipped file is discarded and counted, never served.
pub struct Store {
    dir: PathBuf,
    loads: Counter,
    persists: Counter,
    entries_loaded: Counter,
    corrupt_discarded: Counter,
    bytes: Gauge,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store").field("dir", &self.dir).finish()
    }
}

impl Store {
    /// Opens (creating if needed) a store directory, publishing
    /// `store.*` instruments into the process-wide registry.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Store> {
        Self::open_with(dir, &axml_obs::global())
    }

    /// Like [`Store::open`], but publishing into the given registry.
    pub fn open_with(dir: impl Into<PathBuf>, registry: &Registry) -> std::io::Result<Store> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Store {
            dir,
            loads: registry.counter("store.load_total"),
            persists: registry.counter("store.persist_total"),
            entries_loaded: registry.counter("store.entries_loaded_total"),
            corrupt_discarded: registry.counter("store.corrupt_discarded_total"),
            bytes: registry.gauge("store.bytes"),
        })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the solver-cache snapshot.
    pub fn cache_snapshot_path(&self) -> PathBuf {
        self.dir.join(CACHE_SNAPSHOT_FILE)
    }

    /// Path of the compatibility matrix.
    pub fn matrix_path(&self) -> PathBuf {
        self.dir.join(MATRIX_FILE)
    }

    /// Persists every entry of `cache` as a snapshot captured under
    /// `fingerprint` (the serving schema's [`Compiled::fingerprint`]).
    /// Returns the bytes written. Atomic: concurrent readers and a
    /// crash mid-write both observe either the old or the new file.
    ///
    /// [`Compiled::fingerprint`]: axml_schema::Compiled::fingerprint
    pub fn persist_cache(&self, cache: &SolveCache, fingerprint: u64) -> std::io::Result<u64> {
        let payload = encode_entries(&cache.export_entries());
        let written = format::write_file(
            &self.cache_snapshot_path(),
            CACHE_MAGIC,
            fingerprint,
            &payload,
        )?;
        self.persists.inc();
        self.refresh_bytes();
        Ok(written)
    }

    /// Loads the snapshot (if any) into `cache`, verifying it was
    /// captured under `fingerprint`. Missing file → cold start; torn,
    /// corrupt, version-skewed, or foreign-schema file → discarded
    /// (and deleted, so the next persist starts clean) with
    /// `store.corrupt_discarded_total` incremented. Never panics,
    /// never loads an entry the checksum does not vouch for.
    pub fn load_cache(&self, cache: &SolveCache, fingerprint: u64) -> LoadReport {
        self.loads.inc();
        let path = self.cache_snapshot_path();
        let payload = match format::read_file(&path, CACHE_MAGIC, Some(fingerprint)) {
            Ok(p) => p,
            Err(e) => return self.discard(&path, e),
        };
        let entries = match decode_entries(&payload) {
            Ok(entries) => entries,
            Err(why) => return self.discard(&path, FileError::Corrupt(why)),
        };
        let installed = cache.preload(entries);
        self.entries_loaded.add(installed as u64);
        self.refresh_bytes();
        LoadReport {
            entries: installed,
            bytes: (payload.len() + format::HEADER_LEN) as u64,
            discarded: false,
        }
    }

    /// Persists the compatibility matrix. The header fingerprint is 0:
    /// the matrix spans many schemas and pins each by fingerprint in
    /// its own payload.
    pub fn persist_matrix(&self, matrix: &CompatMatrix) -> std::io::Result<u64> {
        let written = format::write_file(&self.matrix_path(), MATRIX_MAGIC, 0, &matrix.encode())?;
        self.persists.inc();
        self.refresh_bytes();
        Ok(written)
    }

    /// Loads the compatibility matrix, if a valid one is on disk.
    /// Corrupt files are discarded and counted, like cache snapshots.
    pub fn load_matrix(&self) -> Option<CompatMatrix> {
        self.loads.inc();
        let path = self.matrix_path();
        let payload = match format::read_file(&path, MATRIX_MAGIC, None) {
            Ok(p) => p,
            Err(e) => {
                self.discard(&path, e);
                return None;
            }
        };
        match CompatMatrix::decode(&payload) {
            Ok(m) => {
                self.refresh_bytes();
                Some(m)
            }
            Err(why) => {
                self.discard(&path, FileError::Corrupt(why));
                None
            }
        }
    }

    fn discard(&self, path: &Path, err: FileError) -> LoadReport {
        if matches!(err, FileError::Corrupt(_)) {
            self.corrupt_discarded.inc();
            // Remove the bad file so the next persist starts clean and
            // a later load doesn't re-count the same corpse.
            std::fs::remove_file(path).ok();
        }
        self.refresh_bytes();
        LoadReport {
            discarded: matches!(err, FileError::Corrupt(_)),
            ..LoadReport::default()
        }
    }

    /// Points `store.bytes` at the current on-disk footprint.
    fn refresh_bytes(&self) {
        let total: u64 = [self.cache_snapshot_path(), self.matrix_path()]
            .iter()
            .filter_map(|p| std::fs::metadata(p).ok())
            .map(|m| m.len())
            .sum();
        self.bytes.set(total as i64);
    }
}
