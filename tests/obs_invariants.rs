//! Invariants of the observability subsystem (DESIGN.md §8).
//!
//! * Solver accounting: on any instance, the lazy product never visits
//!   more nodes than the eager one; pruning counters never exceed the
//!   visit count; the published registry counters agree with the public
//!   `GameStats` figures.
//! * Server accounting: every request is answered exactly once, so
//!   `server.requests_total = server.responses_ok_total +
//!   server.faults_total` — including under Busy backpressure.
//! * Client accounting: `retries = attempts - calls`, bounded by
//!   `calls x (attempts_per_call - 1)`.
//! * Snapshots: concurrent snapshots while writers hammer the registry
//!   serialize to parseable JSON and read monotonically per counter.

use axml::core::awk::{Awk, AwkLimits};
use axml::core::possible::PossibleGame;
use axml::core::safe::{complement_of, BuildMode, SafeGame};
use axml::core::solve_cache::{SolveCache, TargetSlot};
use axml::net::{wire, ClientConfig, NetClient, NetServer, ServerConfig};
use axml::obs::{register_catalogue, Registry, Snapshot};
use axml::schema::{Compiled, NoOracle, Schema};
use axml_support::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Star-free regex over names drawn from `syms`.
fn starfree_regex(syms: &'static [&'static str]) -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        select(syms).prop_map(str::to_owned),
        Just("ε".to_owned()),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3)
                .prop_map(|parts| format!("({})", parts.join("."))),
            prop::collection::vec(inner.clone(), 1..3)
                .prop_map(|parts| format!("({})", parts.join("|"))),
            inner.prop_map(|r| format!("({r})?")),
        ]
    })
}

const DATA_SYMS: &[&str] = &["a", "b"];
const ALL_SYMS: &[&str] = &["a", "b", "f", "g"];

fn build_schema(out_f: &str, out_g: &str) -> Option<Compiled> {
    let schema = Schema::builder()
        .allow_ambiguous()
        .data_element("a")
        .data_element("b")
        .function("f", "", out_f)
        .function("g", "", out_g)
        .build()
        .ok()?;
    Compiled::new(schema, &NoOracle).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lazy-mode safe games never visit more product nodes than eager
    /// ones, pruning never outruns visiting, and the per-registry
    /// counters published by `solve_in` agree with `GameStats`.
    #[test]
    fn solver_counters_obey_the_game_bounds(
        out_f in starfree_regex(ALL_SYMS),
        out_g in starfree_regex(DATA_SYMS),
        word_names in prop::collection::vec(select(ALL_SYMS), 0..4),
        target_text in starfree_regex(ALL_SYMS),
        k in 0u32..3,
    ) {
        let Some(compiled) = build_schema(&out_f, &out_g) else {
            return Ok(());
        };
        let word: Vec<axml::automata::Symbol> = word_names
            .iter()
            .map(|n| compiled.alphabet().lookup(n).unwrap())
            .collect();
        let mut ab = compiled.alphabet().clone();
        let Ok(target) = axml::automata::Regex::parse(&target_text, &mut ab) else {
            return Ok(());
        };
        prop_assume!(ab.len() == compiled.alphabet().len());

        let n = compiled.alphabet().len();
        let awk = Awk::build(&word, &compiled, k, &AwkLimits::default()).unwrap();

        let eager_reg = Registry::new();
        let lazy_reg = Registry::new();
        let eager = SafeGame::solve_in(
            awk.clone(), complement_of(&target, n), BuildMode::Eager, &eager_reg);
        let lazy = SafeGame::solve_in(
            awk.clone(), complement_of(&target, n), BuildMode::Lazy, &lazy_reg);

        // The lazy frontier is a subset of the full product.
        prop_assert!(lazy.stats.nodes <= eager.stats.nodes,
            "lazy visited {} nodes, eager {}", lazy.stats.nodes, eager.stats.nodes);

        // Published counters mirror the public stats exactly.
        for (registry, game) in [(&eager_reg, &eager), (&lazy_reg, &lazy)] {
            let snap = registry.snapshot();
            prop_assert_eq!(snap.counter("solver.safe.solves_total"), 1);
            prop_assert_eq!(snap.counter("solver.safe.nodes_total"),
                game.stats.nodes as u64);
            prop_assert_eq!(snap.counter("solver.safe.edges_total"),
                game.stats.edges as u64);
            prop_assert_eq!(snap.counter("solver.safe.sink_pruned_total"),
                game.stats.sink_pruned as u64);
            prop_assert_eq!(snap.counter("solver.safe.mark_pruned_total"),
                game.stats.mark_pruned as u64);
            // Pruning can only skip nodes that were up for visiting.
            prop_assert!(
                snap.counter("solver.safe.sink_pruned_total")
                    + snap.counter("solver.safe.mark_pruned_total")
                    <= snap.counter("solver.safe.nodes_total"),
                "pruned more nodes than visited");
        }

        // The possible-game counters mirror their stats too.
        let poss_reg = Registry::new();
        let dfa = axml::automata::Dfa::determinize(
            &axml::automata::Nfa::thompson(&target, n));
        let poss = PossibleGame::solve_in(awk, dfa, &poss_reg);
        let snap = poss_reg.snapshot();
        prop_assert_eq!(snap.counter("solver.possible.solves_total"), 1);
        prop_assert_eq!(snap.counter("solver.possible.nodes_total"),
            poss.stats.nodes as u64);
        prop_assert_eq!(snap.counter("solver.possible.edges_total"),
            poss.stats.edges as u64);
    }
}

/// One server registry: every accepted request is accounted exactly once,
/// as a success or as a fault — mixed ok / handler-fault traffic.
#[test]
fn server_accounts_every_request_exactly_once() {
    let metrics = Registry::new();
    register_catalogue(&metrics);
    let handler = Arc::new(|_id: u64, envelope: &str| {
        if envelope.contains("fail") {
            Err(wire::WireFault::new(wire::FaultCode::Client, "told to fail"))
        } else {
            Ok(format!("<ok>{envelope}</ok>"))
        }
    });
    let server = NetServer::bind(
        "127.0.0.1:0",
        handler,
        ServerConfig {
            metrics: metrics.clone(),
            ..Default::default()
        },
    )
    .unwrap();
    let client = NetClient::new(server.local_addr(), ClientConfig::default()).unwrap();

    for i in 0..7 {
        assert!(client.call(&format!("<r>{i}</r>")).is_ok());
    }
    for _ in 0..5 {
        assert!(client.call("<r>fail</r>").is_err());
    }

    let snap = metrics.snapshot();
    assert_eq!(snap.counter("server.responses_ok_total"), 7);
    assert_eq!(snap.counter("server.faults_total"), 5);
    assert_eq!(
        snap.counter("server.requests_total"),
        snap.counter("server.responses_ok_total") + snap.counter("server.faults_total"),
        "every request answered exactly once"
    );
    assert_eq!(snap.gauge("server.queue_depth"), 0, "queue drained at rest");
    server.shutdown().unwrap();
}

/// The accounting identity survives Busy backpressure: a one-slot queue
/// under concurrent fire still answers (ok or Busy) every request.
#[test]
fn server_accounting_holds_under_busy_backpressure() {
    let metrics = Registry::new();
    register_catalogue(&metrics);
    let handler = Arc::new(|_id: u64, envelope: &str| {
        std::thread::sleep(Duration::from_millis(20));
        Ok(envelope.to_owned())
    });
    let server = NetServer::bind(
        "127.0.0.1:0",
        handler,
        ServerConfig {
            workers: 1,
            queue: 1,
            metrics: metrics.clone(),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let threads: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                // attempts=1 so a Busy fault surfaces instead of retrying.
                let client = NetClient::new(
                    addr,
                    ClientConfig {
                        attempts: 1,
                        ..Default::default()
                    },
                )
                .unwrap();
                let outcome = client.call(&format!("<r>{t}</r>"));
                match outcome {
                    Ok(_) => true,
                    Err(axml::net::ClientError::Fault(f)) => {
                        assert_eq!(f.code, wire::FaultCode::Busy, "{f}");
                        false
                    }
                    Err(other) => panic!("unexpected error: {other}"),
                }
            })
        })
        .collect();
    let ok_count = threads
        .into_iter()
        .map(|t| t.join().unwrap())
        .filter(|ok| *ok)
        .count() as u64;

    let snap = metrics.snapshot();
    assert_eq!(snap.counter("server.responses_ok_total"), ok_count);
    assert_eq!(snap.counter("server.busy_total"), 8 - ok_count);
    assert_eq!(
        snap.counter("server.requests_total"),
        snap.counter("server.responses_ok_total") + snap.counter("server.faults_total"),
    );
    server.shutdown().unwrap();
}

/// Client-side accounting: `retries = attempts - calls`, and retries
/// never exceed `calls x (attempts_per_call - 1)`.
#[test]
fn client_retries_are_bounded_by_the_attempt_budget() {
    let handler = Arc::new(|_id: u64, _env: &str| {
        Err(wire::WireFault::new(wire::FaultCode::Server, "always down").retryable())
    });
    let server = NetServer::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap();
    let metrics = Registry::new();
    register_catalogue(&metrics);
    const ATTEMPTS: u64 = 3;
    let client = NetClient::new(
        server.local_addr(),
        ClientConfig {
            attempts: ATTEMPTS as u32,
            backoff: Duration::from_millis(1),
            metrics: metrics.clone(),
            ..Default::default()
        },
    )
    .unwrap();

    const CALLS: u64 = 4;
    for _ in 0..CALLS {
        assert!(client.call("<r/>").is_err());
    }

    let snap = metrics.snapshot();
    assert_eq!(snap.counter("client.calls_total"), CALLS);
    assert_eq!(snap.counter("client.faults_total"), CALLS);
    assert_eq!(
        snap.counter("client.retries_total"),
        snap.counter("client.attempts_total") - snap.counter("client.calls_total"),
    );
    assert!(
        snap.counter("client.retries_total") <= CALLS * (ATTEMPTS - 1),
        "retries {} exceed the attempt budget",
        snap.counter("client.retries_total"),
    );
    server.shutdown().unwrap();
}

/// A small deterministic DFA per slot, so cache reads can be checked
/// against a fresh rebuild (any divergence would mean a torn or aliased
/// entry).
fn slot_dfa(slot: usize) -> axml::automata::Dfa {
    let mut ab = axml::automata::Alphabet::new();
    let pattern = ["a", "a*", "(a|b)", "a.b", "(a.b)?", "b*"][slot % 6];
    let re = axml::automata::Regex::parse(pattern, &mut ab).unwrap();
    axml::automata::Dfa::determinize(&axml::automata::Nfa::thompson(&re, ab.len()))
}

/// Cache accounting identities after heavy single-threaded churn well
/// past capacity: `hits + misses = lookups`, the entry count never
/// exceeds capacity, `entries = insertions - evictions`, and the
/// published registry instruments agree with [`SolveCache::stats`].
#[test]
fn solve_cache_accounting_identities_survive_churn() {
    let registry = Registry::new();
    let cache = SolveCache::with_registry(4, &registry);
    for round in 0..50usize {
        for slot in 0..6usize {
            let d = cache.comp_dfa(
                (slot % 2) as u64,
                TargetSlot::Content(slot as axml::automata::Symbol),
                || slot_dfa(slot),
            );
            assert_eq!(d.num_states(), slot_dfa(slot).num_states(), "round {round}");
        }
    }
    let s = cache.stats();
    assert_eq!(s.lookups, s.hits + s.misses, "every lookup is a hit or a miss");
    assert!(s.entries <= s.capacity, "{} entries > capacity {}", s.entries, s.capacity);
    assert_eq!(s.entries as u64, s.insertions - s.evictions);
    assert!(s.evictions > 0, "churn past capacity must evict");
    let snap = registry.snapshot();
    assert_eq!(snap.counter("solve_cache.lookups_total"), s.lookups);
    assert_eq!(snap.counter("solve_cache.hits_total"), s.hits);
    assert_eq!(snap.counter("solve_cache.misses_total"), s.misses);
    assert_eq!(snap.counter("solve_cache.insertions_total"), s.insertions);
    assert_eq!(snap.counter("solve_cache.evictions_total"), s.evictions);
    assert_eq!(snap.gauge("solve_cache.entries") as usize, cache.len());
}

/// N threads hammering one under-sized cache with overlapping keys:
/// no deadlock, every read hands back the artifact its key was built
/// from, and the accounting identities hold at rest.
#[test]
fn solve_cache_hammering_is_deadlock_free_and_consistent() {
    const THREADS: usize = 8;
    const OPS: usize = 400;
    let registry = Registry::new();
    let cache = SolveCache::with_registry(3, &registry);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = cache.clone();
            scope.spawn(move || {
                for i in 0..OPS {
                    let slot = (t + i) % 6;
                    let d = cache.comp_dfa(
                        7,
                        TargetSlot::Content(slot as axml::automata::Symbol),
                        || slot_dfa(slot),
                    );
                    assert_eq!(d.num_states(), slot_dfa(slot).num_states());
                }
            });
        }
    });
    let s = cache.stats();
    assert_eq!(s.lookups, (THREADS * OPS) as u64);
    assert_eq!(s.lookups, s.hits + s.misses);
    assert!(s.entries <= s.capacity);
    assert_eq!(s.entries as u64, s.insertions - s.evictions);
    // Racing builders may duplicate work, but lost races never insert.
    assert!(s.insertions <= s.misses);
}

/// Concurrent snapshots while writers hammer the registry: every
/// serialized snapshot re-parses, and each counter reads monotonically
/// across successive snapshots.
#[test]
fn concurrent_snapshots_parse_and_read_monotonically() {
    const WRITERS: usize = 4;
    const INCS: u64 = 20_000;

    let registry = Registry::new();
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let own = registry.counter(&format!("tear.writer{w}_total"));
            let shared = registry.counter("tear.shared_total");
            let gauge = registry.gauge("tear.level");
            std::thread::spawn(move || {
                for _ in 0..INCS {
                    own.inc();
                    shared.inc();
                    gauge.add(1);
                }
            })
        })
        .collect();

    let mut previous: Option<Snapshot> = None;
    for _ in 0..200 {
        let json = registry.snapshot().to_json();
        let parsed = Snapshot::parse_json(&json).expect("snapshot JSON re-parses");
        if let Some(prev) = &previous {
            for w in 0..WRITERS {
                let name = format!("tear.writer{w}_total");
                assert!(
                    parsed.counter(&name) >= prev.counter(&name),
                    "{name} went backwards"
                );
            }
            assert!(parsed.counter("tear.shared_total") >= prev.counter("tear.shared_total"));
        }
        previous = Some(parsed);
    }
    for t in writers {
        t.join().unwrap();
    }

    // At rest the totals are exact — no lost updates, no phantom reads.
    let last = Snapshot::parse_json(&registry.snapshot().to_json()).unwrap();
    for w in 0..WRITERS {
        assert_eq!(last.counter(&format!("tear.writer{w}_total")), INCS);
    }
    assert_eq!(last.counter("tear.shared_total"), WRITERS as u64 * INCS);
    assert_eq!(last.gauge("tear.level"), (WRITERS as u64 * INCS) as i64);
}
