//! Restart fidelity (DESIGN.md §11): a peer that persists its warm
//! state, dies, and comes back must be *indistinguishable* from one
//! that never restarted — the first post-restart request is answered
//! entirely from the reloaded cache (zero solver misses), enforcement
//! output is byte-identical, and the two peers' caches re-export to
//! the same snapshot bytes after identical traffic.

use axml::core::invoke::{InvokeError, Invoker};
use axml::core::rewrite::{RewriteReport, Rewriter};
use axml::core::solve_cache::SolveCache;
use axml::schema::{
    generate_output_instance, validate, Compiled, GenConfig, ITree, NoOracle, Schema,
};
use axml::services::Registry as ServiceRegistry;
use axml::store::{encode_entries, Store};
use axml::peer::Peer;
use axml_support::hash::fx_hash_one;
use axml_support::rng::SeedableRng;
use std::sync::Arc;

struct PureInvoker<'c> {
    compiled: &'c Compiled,
    salt: u64,
}

impl Invoker for PureInvoker<'_> {
    fn invoke(&mut self, function: &str, params: &[ITree]) -> Result<Vec<ITree>, InvokeError> {
        let seed = fx_hash_one(&(self.salt, function, format!("{params:?}")));
        let mut rng = axml_support::rng::StdRng::seed_from_u64(seed);
        let output = self.compiled.sig_of(function).output.clone();
        generate_output_instance(self.compiled, &output, &mut rng, &GenConfig::default()).map_err(
            |e| InvokeError {
                function: function.to_owned(),
                message: e.to_string(),
            },
        )
    }
}

fn exchange_compiled() -> Arc<Compiled> {
    Arc::new(
        Compiled::new(
            Schema::builder()
                .element("r", "exhibit*")
                .element("exhibit", "title.date")
                .data_element("title")
                .data_element("date")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap(),
    )
}

fn exhibit(title: &str, intensional: bool) -> ITree {
    let date = if intensional {
        ITree::func("Get_Date", vec![ITree::data("title", title)])
    } else {
        ITree::data("date", "mon")
    };
    ITree::elem("exhibit", vec![ITree::data("title", title), date])
}

/// Enforces `doc` through the peer's own solver cache (exactly what
/// `Peer::handle` and `Peer::send_document` do internally).
fn enforce(peer: &Peer, compiled: &Compiled, doc: &ITree, salt: u64) -> (String, RewriteReport) {
    let mut inv = PureInvoker { compiled, salt };
    let (out, report) = Rewriter::new(compiled)
        .with_k(peer.enforce.k)
        .with_cache(peer.solve_cache())
        .rewrite_safe(doc, &mut inv)
        .unwrap();
    validate(&out, compiled).unwrap();
    (out.to_xml().to_xml(), report)
}

#[test]
fn restarted_peer_is_indistinguishable_from_uninterrupted() {
    let c = exchange_compiled();
    let dir = std::env::temp_dir().join(format!("axml-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();
    let salt = 11;

    let warmup = vec![
        ITree::elem("r", vec![exhibit("monet", true)]),
        ITree::elem("r", vec![exhibit("rodin", false), exhibit("redon", true)]),
    ];

    // The uninterrupted daemon: serves the warm-up traffic, persists
    // its warm state (a periodic snapshot), and keeps running.
    let original = Peer::new(
        "gallery",
        Arc::clone(&c),
        Arc::new(ServiceRegistry::new()),
    )
    .with_solve_cache(SolveCache::unpublished(256));
    let warm_outputs: Vec<_> = warmup
        .iter()
        .map(|d| enforce(&original, &c, d, salt))
        .collect();
    assert!(original.solve_cache().stats().misses > 0);
    let written = original.persist_warm_state(&store).unwrap();
    assert!(written > 0);

    // The restarted daemon: a brand-new process image, warm-started
    // from the snapshot the old one left behind.
    let restarted = Peer::new(
        "gallery",
        Arc::clone(&c),
        Arc::new(ServiceRegistry::new()),
    )
    .with_solve_cache(SolveCache::unpublished(256));
    let report = restarted.warm_start(&store);
    assert!(!report.discarded);
    assert!(report.entries > 0, "restart must find the snapshot");
    assert_eq!(
        encode_entries(&restarted.solve_cache().export_entries()),
        encode_entries(&original.solve_cache().export_entries()),
        "reloaded warm state must match the running daemon's bit-for-bit"
    );

    // The FIRST post-restart request is answered from warm state:
    // identical bytes, identical report, not one solver miss.
    let (xml, rep) = enforce(&restarted, &c, &warmup[0], salt);
    assert_eq!((&xml, &rep), (&warm_outputs[0].0, &warm_outputs[0].1));
    let stats = restarted.solve_cache().stats();
    assert_eq!(stats.misses, 0, "first post-restart request must be warm");
    assert!(stats.hits > 0);

    // From here on the two daemons stay in lock-step: fresh traffic
    // (same shapes, new data) gets byte-identical treatment, and the
    // caches keep re-exporting identical snapshots.
    let fresh = vec![
        ITree::elem("r", vec![exhibit("klimt", true)]),
        ITree::elem(
            "r",
            vec![exhibit("goya", false), exhibit("miro", true)],
        ),
    ];
    // Replay the rest of the warm-up on the restarted daemon so both
    // have seen identical traffic before comparing exports.
    for d in &warmup[1..] {
        enforce(&restarted, &c, d, salt);
    }
    for d in &fresh {
        let a = enforce(&original, &c, d, salt);
        let b = enforce(&restarted, &c, d, salt);
        assert_eq!(a, b, "uninterrupted and restarted daemons diverged");
    }
    assert_eq!(
        encode_entries(&original.solve_cache().export_entries()),
        encode_entries(&restarted.solve_cache().export_entries()),
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Snapshots compose across restarts: state persisted by a restarted
/// daemon (warm-loaded + new work) reloads into a third generation
/// with everything both ancestors learned.
#[test]
fn warm_state_survives_generations()  {
    let c = exchange_compiled();
    let dir = std::env::temp_dir().join(format!("axml-restart-gen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();

    let gen1 = Peer::new("g", Arc::clone(&c), Arc::new(ServiceRegistry::new()))
        .with_solve_cache(SolveCache::unpublished(256));
    enforce(&gen1, &c, &ITree::elem("r", vec![exhibit("a", true)]), 1);
    gen1.persist_warm_state(&store).unwrap();

    let gen2 = Peer::new("g", Arc::clone(&c), Arc::new(ServiceRegistry::new()))
        .with_solve_cache(SolveCache::unpublished(256));
    gen2.warm_start(&store);
    // New shape: two exhibits — more games, learned on top of gen1's.
    enforce(
        &gen2,
        &c,
        &ITree::elem("r", vec![exhibit("b", true), exhibit("c", true)]),
        1,
    );
    gen2.persist_warm_state(&store).unwrap();

    let gen3 = Peer::new("g", Arc::clone(&c), Arc::new(ServiceRegistry::new()))
        .with_solve_cache(SolveCache::unpublished(256));
    let report = gen3.warm_start(&store);
    assert_eq!(report.entries, gen2.solve_cache().export_entries().len());

    // Both ancestors' traffic is warm for generation 3.
    enforce(&gen3, &c, &ITree::elem("r", vec![exhibit("a", true)]), 1);
    enforce(
        &gen3,
        &c,
        &ITree::elem("r", vec![exhibit("b", true), exhibit("c", true)]),
        1,
    );
    assert_eq!(gen3.solve_cache().stats().misses, 0);

    let _ = std::fs::remove_dir_all(&dir);
}
