//! Deterministic fault scenarios on the simulated network.
//!
//! The first three tests are ports of the ad-hoc TCP fault tests that
//! used to live in `tests/net_exchange.rs` (oversized frame, mid-frame
//! stall, malformed envelope): same protocol semantics, but driven over
//! the in-memory transport under virtual time, so a "50 ms" server
//! timeout costs no wall clock and the interleaving is identical on
//! every run. The rest pin behavior only a simulator can reach
//! deterministically: the client's total-deadline bound across retries,
//! stale duplicated frames on pooled connections, crash-restart, and
//! link partitions.

use axml::net::wire::{self, FaultCode, WireFault};
use axml::net::{ClientConfig, ClientError, Handler, NetClient};
use axml::peer::{envelope_handler, Peer, Query};
use axml::schema::{Compiled, ITree, NoOracle, Schema};
use axml::services::{soap, Registry, ServiceDef};
use axml::sim::{Crash, FaultPlan, Partition, SimServerConfig, SimWorld};
use std::io::{BufReader, Read, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const LISTINGS: &str = "listings.example.org";

fn vocab() -> Schema {
    Schema::builder()
        .element("newspaper", "title.date.(Listings|exhibit*)")
        .data_element("title")
        .data_element("date")
        .element("exhibit", "title.date")
        .function("Listings", "data", "exhibit*")
        .build()
        .unwrap()
}

/// The listings-provider peer from the TCP suite, served as a sim actor.
fn listings_peer() -> Arc<Peer> {
    let peer = Arc::new(Peer::new(
        LISTINGS,
        Arc::new(Compiled::new(vocab(), &NoOracle).unwrap()),
        Arc::new(Registry::new()),
    ));
    peer.repository.store(
        "program",
        ITree::elem(
            "listings",
            vec![
                ITree::elem(
                    "exhibit",
                    vec![ITree::data("title", "Monet"), ITree::data("date", "Mon")],
                ),
                ITree::elem(
                    "exhibit",
                    vec![ITree::data("title", "Rodin"), ITree::data("date", "Tue")],
                ),
            ],
        ),
    );
    peer.declare(
        ServiceDef::new("Listings", "data", "exhibit*"),
        Query::Children("program".to_owned()),
    );
    peer
}

fn sim_client(world: &SimWorld, endpoint: &str, config: ClientConfig) -> NetClient {
    NetClient::with_transport(endpoint, world.transport("tester"), world.clock(), config)
}

#[test]
fn oversized_frames_are_faulted_and_refused() {
    let world = SimWorld::new(1, FaultPlan::default());
    world.listen(
        LISTINGS,
        envelope_handler(listings_peer()),
        SimServerConfig {
            max_frame: 2048,
            ..Default::default()
        },
    );
    let client = sim_client(&world, LISTINGS, ClientConfig::default());
    let huge = format!("<x>{}</x>", "a".repeat(64 << 10));
    let err = client.call(&huge).unwrap_err();
    match err {
        ClientError::Fault(f) => {
            assert_eq!(f.code, FaultCode::TooLarge);
            assert!(!f.retryable, "an oversized request will never fit");
        }
        other => panic!("expected a TooLarge fault, got {other}"),
    }
    // The daemon survives and keeps serving well-sized requests (on a
    // fresh connection — the faulted one was closed).
    let small = client
        .call(&soap::request("Listings", &[ITree::text("x")]).to_xml())
        .unwrap();
    assert!(small.contains("exhibit"));
}

#[test]
fn stalled_connections_hit_the_read_timeout() {
    let world = SimWorld::new(2, FaultPlan::default());
    world.listen(
        LISTINGS,
        envelope_handler(listings_peer()),
        SimServerConfig {
            read_timeout: Duration::from_millis(50),
            ..Default::default()
        },
    );
    let transport = world.transport("slowpoke");
    let mut stream = transport
        .connect(LISTINGS, Duration::from_secs(1))
        .unwrap();
    wire::write_frame(&mut stream, &wire::hello("slowpoke")).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let welcome = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(welcome.kind, wire::FrameType::Welcome);

    // Write half a frame header, then stall: the server must fault with
    // Timeout and close rather than wait forever — and under virtual
    // time "forever" is checked without a single real sleep.
    stream
        .write_all(&[wire::FrameType::Request as u8, 0, 0])
        .unwrap();
    stream.flush().unwrap();
    let fault_frame = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(fault_frame.kind, wire::FrameType::Fault);
    let fault = wire::decode_fault(&fault_frame.payload).unwrap();
    assert_eq!(fault.code, FaultCode::Timeout);
    // ...and the connection is closed afterwards.
    let mut rest = Vec::new();
    let closed = reader.get_mut().read_to_end(&mut rest);
    assert!(matches!(closed, Ok(0)), "{closed:?} / {} bytes", rest.len());
    // The stall was detected at the configured virtual timeout, not by a
    // wall-clock sleep.
    assert!(world.now_ns() >= 50_000_000, "timeout fired early");
}

#[test]
fn malformed_envelopes_fault_without_wedging_the_daemon() {
    let world = SimWorld::new(3, FaultPlan::default());
    world.listen(
        LISTINGS,
        envelope_handler(listings_peer()),
        SimServerConfig::default(),
    );
    let client = sim_client(&world, LISTINGS, ClientConfig::default());
    for bad in [
        "this is not xml",
        "<notsoap/>",
        "<soap:Envelope xmlns:soap=\"http://schemas.xmlsoap.org/soap/envelope/\"/>",
    ] {
        let err = client.call(bad).unwrap_err();
        match err {
            ClientError::Fault(f) => {
                assert_eq!(f.code, FaultCode::Client, "{bad}: {f}");
                assert!(!f.retryable);
            }
            other => panic!("{bad}: expected a Client fault, got {other}"),
        }
    }
    // The connection stays usable after per-request faults.
    let ok = client
        .call(&soap::request("Listings", &[ITree::text("x")]).to_xml())
        .unwrap();
    assert!(ok.contains("exhibit"));
}

/// The client's per-call deadline bounds *total* time — dials, attempts,
/// and backoff sleeps included — not each attempt separately. Against an
/// always-Busy daemon with a generous attempt budget, the call must stop
/// at the deadline; the sim clock pins the bound exactly, with no
/// tolerance for scheduler noise and no wall-clock cost.
#[test]
fn deadline_bounds_total_call_time_across_retries() {
    let world = SimWorld::new(4, FaultPlan::default());
    world.listen(
        "busy.example.org",
        Arc::new(|_id: u64, _envelope: &str| -> Result<String, WireFault> {
            Err(WireFault::new(FaultCode::Busy, "queue full").retryable())
        }),
        SimServerConfig::default(),
    );
    let deadline = Duration::from_millis(500);
    let client = sim_client(
        &world,
        "busy.example.org",
        ClientConfig {
            attempts: 1000,
            backoff: Duration::from_millis(20),
            deadline,
            ..ClientConfig::default()
        },
    );
    let started = world.now_ns();
    let wall = std::time::Instant::now();
    let err = client.call("<x/>").unwrap_err();
    match err {
        ClientError::Deadline { budget, last } => {
            assert_eq!(budget, deadline);
            assert!(last.is_some(), "the last attempt's error is preserved");
        }
        other => panic!("expected Deadline, got {other}"),
    }
    let elapsed = world.now_ns() - started;
    assert!(
        elapsed <= deadline.as_nanos() as u64 + 1_000_000,
        "call consumed {elapsed}ns of virtual time against a {deadline:?} deadline"
    );
    assert!(
        elapsed >= deadline.as_nanos() as u64 / 2,
        "call gave up far too early: {elapsed}ns"
    );
    // All those backoff sleeps and read timeouts were virtual.
    assert!(wall.elapsed() < Duration::from_secs(2));
}

/// Regression for a bug the simulator's duplication fault found (seed 84
/// of `regressions/sim/invariants.seeds`): with every frame delivered
/// twice, the duplicate of a Fault reply lingers in the pooled
/// connection's read buffer after the call it answered has finished. The
/// next call on that connection must skip the stale frame — the old
/// client treated any Fault on the stream as the current call's answer
/// and failed a perfectly healthy request.
#[test]
fn stale_fault_frames_do_not_poison_pooled_connections() {
    let world = SimWorld::new(5, FaultPlan::default());
    let calls = Arc::new(AtomicUsize::new(0));
    let calls_in_handler = Arc::clone(&calls);
    // Deterministic per *content*, not per call count: a request carrying
    // "doomed" always faults, so the duplicated copy of it faults too.
    world.listen(
        "flaky.example.org",
        Arc::new(move |_id: u64, envelope: &str| -> Result<String, WireFault> {
            let n = calls_in_handler.fetch_add(1, Ordering::SeqCst);
            if envelope.contains("doomed") {
                Err(WireFault::new(FaultCode::Server, "injected failure"))
            } else {
                Ok(format!("<ok n=\"{n}\"/>"))
            }
        }),
        SimServerConfig::default(),
    );
    let client = sim_client(&world, "flaky.example.org", ClientConfig::default());

    // Handshake and pool a connection while the network is clean.
    let ok = client.call("<warmup/>").unwrap();
    assert!(ok.starts_with("<ok"), "{ok}");

    // Now every frame is delivered twice. The doomed request reaches the
    // handler twice; both replies are Faults carrying the same request
    // id. The client consumes one, reports the (non-retryable) fault, and
    // returns the connection to the pool — with the second, now-stale
    // Fault frame still in flight toward it.
    world.with_plan(|p| p.dup_prob = 1.0);
    let err = client.call("<doomed/>").unwrap_err();
    assert!(
        matches!(err, ClientError::Fault(ref f) if f.code == FaultCode::Server),
        "{err}"
    );
    world.run_until_idle(); // let the stale duplicate land in the pooled conn
    world.with_plan(|p| p.dup_prob = 0.0);

    // The next call reuses that connection and must skip the stale frame
    // (mismatched request id) instead of failing a healthy request — the
    // bug seed 84 of regressions/sim/invariants.seeds originally exposed.
    let ok = client.call("<healthy/>").unwrap();
    assert!(ok.starts_with("<ok"), "{ok}");
    assert!(
        calls.load(Ordering::SeqCst) >= 4,
        "expected warmup + doomed + duplicate + healthy handler calls, saw {}",
        calls.load(Ordering::SeqCst)
    );
}

/// A chunk-accepting handler that records every document it stores, so a
/// scenario can assert nothing partial ever reached the application.
struct DocStore {
    docs: std::sync::Mutex<Vec<(String, String)>>,
}

impl Handler for DocStore {
    fn handle(&self, _id: u64, _envelope: &str) -> Result<String, WireFault> {
        Ok("<ok/>".to_owned())
    }

    fn handle_document(&self, _id: u64, name: &str, text: &str) -> Result<String, WireFault> {
        self.docs
            .lock()
            .unwrap()
            .push((name.to_owned(), text.to_owned()));
        Ok(format!("<stored name=\"{name}\" bytes=\"{}\"/>", text.len()))
    }
}

/// Duplicated chunk frames break the transfer's sequence numbers: the
/// server faults the transfer *typed* (BadFrame, out of sequence) and
/// keeps the connection; the handler never sees a partial document; a
/// retry on the healed link delivers the document byte-identically.
#[test]
fn duplicated_chunk_frames_fault_typed_and_never_store_partials() {
    let world = SimWorld::new(41, FaultPlan::default());
    let store = Arc::new(DocStore {
        docs: std::sync::Mutex::new(Vec::new()),
    });
    let server_metrics = axml::obs::Registry::new();
    world.listen(
        "store.example.org",
        Arc::clone(&store) as Arc<dyn Handler>,
        SimServerConfig {
            metrics: server_metrics.clone(),
            ..Default::default()
        },
    );
    let client = sim_client(&world, "store.example.org", ClientConfig::default());
    let doc = format!("<doc>{}</doc>", "chunky ".repeat(500));

    // Handshake on a clean link, then duplicate every chunk frame.
    // Control frames (Hello, Fault, Response) stay reliable — only the
    // transfer path is targeted.
    let ok = client.call("<warmup/>").unwrap();
    assert_eq!(ok, "<ok/>");
    world.with_plan(|p| p.chunk_dup_prob = 1.0);
    let err = client
        .send_document_chunked(None, "dup.xml", 64, |sink| sink.write_all(doc.as_bytes()))
        .unwrap_err();
    match err {
        ClientError::Fault(f) => {
            assert_eq!(f.code, FaultCode::BadFrame, "{f}");
            assert!(!f.retryable, "a corrupted transfer is not retryable as-is");
        }
        other => panic!("expected a typed BadFrame fault, got {other}"),
    }
    assert!(
        store.docs.lock().unwrap().is_empty(),
        "no partial document may reach the handler"
    );
    world.run_until_idle(); // drain the duplicated remains of the transfer
    world.with_plan(|p| p.chunk_dup_prob = 0.0);

    // Clean retry on the same client: a fresh transfer id clears the
    // server's drain state and the document lands whole.
    let reply = client
        .send_document_chunked(None, "dup.xml", 64, |sink| sink.write_all(doc.as_bytes()))
        .unwrap();
    assert!(reply.contains("stored"), "{reply}");
    let docs = store.docs.lock().unwrap();
    assert_eq!(docs.len(), 1, "exactly one complete document stored");
    assert_eq!(docs[0].0, "dup.xml");
    assert_eq!(docs[0].1, doc, "stored bytes must be identical");
    drop(docs);
    let snap = server_metrics.snapshot();
    assert!(
        snap.counter("net.chunk.aborts_total") >= 1,
        "the corrupted transfer must be accounted as aborted"
    );
    assert_eq!(
        snap.counter("server.requests_total"),
        snap.counter("server.responses_ok_total") + snap.counter("server.faults_total"),
        "requests = ok + faults must hold through chunk faults"
    );
}

/// Dropped chunk frames starve the transfer: the client times out
/// reading the reply (a retryable wire failure), retries are equally
/// starved, and the call fails typed — with nothing stored. Healing the
/// link lets the same client deliver the document.
#[test]
fn dropped_chunk_frames_time_out_and_retry_cleanly_after_heal() {
    let world = SimWorld::new(42, FaultPlan::default());
    let store = Arc::new(DocStore {
        docs: std::sync::Mutex::new(Vec::new()),
    });
    world.listen(
        "store.example.org",
        Arc::clone(&store) as Arc<dyn Handler>,
        SimServerConfig::default(),
    );
    let client = sim_client(
        &world,
        "store.example.org",
        ClientConfig {
            attempts: 2,
            backoff: Duration::from_millis(5),
            read_timeout: Duration::from_millis(25),
            ..ClientConfig::default()
        },
    );
    let doc = format!("<doc>{}</doc>", "lost ".repeat(400));
    world.with_plan(|p| p.chunk_drop_prob = 1.0);
    let err = client
        .send_document_chunked(None, "lost.xml", 128, |sink| sink.write_all(doc.as_bytes()))
        .unwrap_err();
    assert!(
        matches!(err, ClientError::Wire(_)),
        "expected a typed wire failure after starved retries, got {err}"
    );
    assert!(store.docs.lock().unwrap().is_empty());
    world.with_plan(|p| p.chunk_drop_prob = 0.0);
    let reply = client
        .send_document_chunked(None, "lost.xml", 128, |sink| sink.write_all(doc.as_bytes()))
        .unwrap();
    assert!(reply.contains("stored"), "{reply}");
    let docs = store.docs.lock().unwrap();
    assert_eq!(docs.as_slice(), &[("lost.xml".to_owned(), doc)]);
}

/// Mid-frame connection resets targeted at chunk frames kill the
/// transfer's connection; the client sees a retryable transport failure,
/// nothing partial is stored, the server accounts the abandoned
/// reassembly as an abort, and the healed link serves the retry.
#[test]
fn chunk_frame_resets_abort_the_transfer_without_partials() {
    let world = SimWorld::new(43, FaultPlan::default());
    let store = Arc::new(DocStore {
        docs: std::sync::Mutex::new(Vec::new()),
    });
    let server_metrics = axml::obs::Registry::new();
    world.listen(
        "store.example.org",
        Arc::clone(&store) as Arc<dyn Handler>,
        SimServerConfig {
            metrics: server_metrics.clone(),
            ..Default::default()
        },
    );
    let client = sim_client(
        &world,
        "store.example.org",
        ClientConfig {
            attempts: 2,
            backoff: Duration::from_millis(5),
            read_timeout: Duration::from_millis(25),
            ..ClientConfig::default()
        },
    );
    let doc = format!("<doc>{}</doc>", "reset ".repeat(400));
    world.with_plan(|p| p.chunk_reset_prob = 1.0);
    let err = client
        .send_document_chunked(None, "reset.xml", 96, |sink| sink.write_all(doc.as_bytes()))
        .unwrap_err();
    assert!(
        matches!(err, ClientError::Wire(_)),
        "expected a typed wire failure, got {err}"
    );
    assert!(store.docs.lock().unwrap().is_empty());
    world.run_until_idle();
    world.with_plan(|p| p.chunk_reset_prob = 0.0);
    let reply = client
        .send_document_chunked(None, "reset.xml", 96, |sink| sink.write_all(doc.as_bytes()))
        .unwrap();
    assert!(reply.contains("stored"), "{reply}");
    let docs = store.docs.lock().unwrap();
    assert_eq!(docs.as_slice(), &[("reset.xml".to_owned(), doc)]);
    drop(docs);
    // The reassembly gauge must read zero at rest — aborted transfers
    // give their buffered bytes back.
    let snap = server_metrics.snapshot();
    assert_eq!(
        snap.gauge("net.chunk.reassembly_bytes"),
        0,
        "aborted transfers must release their reassembly bytes"
    );
}

/// A daemon crash mid-conversation resets every connection and loses
/// in-flight requests; the client's bounded retry rides out the outage
/// once the daemon restarts.
#[test]
fn crash_restart_is_survived_by_bounded_retry() {
    let world = SimWorld::new(6, FaultPlan {
        crashes: vec![Crash {
            endpoint: LISTINGS.to_owned(),
            at_ns: 5_000_000,       // 5 ms: between the handshake and the call
            down_ns: 40_000_000,    // down for 40 ms
        }],
        ..FaultPlan::default()
    });
    world.listen(
        LISTINGS,
        envelope_handler(listings_peer()),
        SimServerConfig::default(),
    );
    let metrics = axml::obs::Registry::new();
    let client = sim_client(
        &world,
        LISTINGS,
        ClientConfig {
            attempts: 6,
            backoff: Duration::from_millis(25),
            metrics: metrics.clone(),
            ..ClientConfig::default()
        },
    );
    // Handshake before the crash so a live pooled connection gets reset.
    let ok = client
        .call(&soap::request("Listings", &[ITree::text("x")]).to_xml())
        .unwrap();
    assert!(ok.contains("exhibit"));
    world.advance(Duration::from_millis(10)); // now inside the outage
    let ok = client
        .call(&soap::request("Listings", &[ITree::text("y")]).to_xml())
        .unwrap();
    assert!(ok.contains("exhibit"));
    assert!(
        metrics.snapshot().counter("client.retries_total") >= 1,
        "the second call should have had to retry across the outage"
    );
}

/// A partitioned link times out connects and loses frames until it
/// heals; afterwards the same client reaches the daemon again.
#[test]
fn partitions_heal_and_calls_succeed_afterwards() {
    let world = SimWorld::new(7, FaultPlan {
        partitions: vec![Partition::symmetric("tester", LISTINGS, 0, 60_000_000)],
        ..FaultPlan::default()
    });
    world.listen(
        LISTINGS,
        envelope_handler(listings_peer()),
        SimServerConfig::default(),
    );
    let client = sim_client(
        &world,
        LISTINGS,
        ClientConfig {
            attempts: 8,
            backoff: Duration::from_millis(20),
            connect_timeout: Duration::from_millis(10),
            ..ClientConfig::default()
        },
    );
    // Dials during the partition time out and are retried; once the link
    // heals the call lands.
    let ok = client
        .call(&soap::request("Listings", &[ITree::text("x")]).to_xml())
        .unwrap();
    assert!(ok.contains("exhibit"));
    assert!(
        world.now_ns() >= 60_000_000,
        "the call cannot have completed while partitioned"
    );
}

/// An asymmetric cut of the *request* direction: the client's dials and
/// frames toward the daemon vanish, so every attempt times out until the
/// window closes, and the retry loop carries the call across the heal.
#[test]
fn oneway_request_partition_is_retried_until_heal() {
    let world = SimWorld::new(8, FaultPlan {
        partitions: vec![Partition::oneway("tester", LISTINGS, 0, 60_000_000)],
        ..FaultPlan::default()
    });
    world.listen(
        LISTINGS,
        envelope_handler(listings_peer()),
        SimServerConfig::default(),
    );
    let metrics = axml::obs::Registry::new();
    let client = sim_client(
        &world,
        LISTINGS,
        ClientConfig {
            attempts: 8,
            backoff: Duration::from_millis(20),
            connect_timeout: Duration::from_millis(10),
            metrics: metrics.clone(),
            ..ClientConfig::default()
        },
    );
    let ok = client
        .call(&soap::request("Listings", &[ITree::text("x")]).to_xml())
        .unwrap();
    assert!(ok.contains("exhibit"));
    assert!(
        world.now_ns() >= 60_000_000,
        "no request can land while the forward direction is cut"
    );
    assert!(
        metrics.snapshot().counter("client.retries_total") >= 1,
        "the call must have retried across the outage"
    );
}

/// An asymmetric cut of the *response* direction: requests still land and
/// the daemon answers, but every reply vanishes until the window closes.
/// The in-window call does server-side work that is never acknowledged
/// (the client times out reading, retries on a fresh dial, and fails
/// *typed* because the Welcome frame is lost too — handshake failures
/// are terminal by design). The server accounting identity
/// `requests = ok + faults` must hold despite the orphaned work, and the
/// link must serve again once healed.
#[test]
fn oneway_response_partition_orphans_work_but_keeps_accounting() {
    let world = SimWorld::new(9, FaultPlan {
        // Cut starts at 10 ms, after the first call's handshake pools a
        // live connection, and heals at 60 ms.
        partitions: vec![Partition::oneway(LISTINGS, "tester", 10_000_000, 60_000_000)],
        ..FaultPlan::default()
    });
    let server_metrics = axml::obs::Registry::new();
    world.listen(
        LISTINGS,
        envelope_handler(listings_peer()),
        SimServerConfig {
            metrics: server_metrics.clone(),
            ..Default::default()
        },
    );
    let client_metrics = axml::obs::Registry::new();
    let client = sim_client(
        &world,
        LISTINGS,
        ClientConfig {
            attempts: 4,
            backoff: Duration::from_millis(5),
            connect_timeout: Duration::from_millis(10),
            read_timeout: Duration::from_millis(25),
            metrics: client_metrics.clone(),
            ..ClientConfig::default()
        },
    );
    // Before the cut: normal round trip, connection pooled.
    let ok = client
        .call(&soap::request("Listings", &[ITree::text("x")]).to_xml())
        .unwrap();
    assert!(ok.contains("exhibit"));
    world.advance(Duration::from_millis(15)); // now inside the window
    // In-window: the request reaches the daemon on the pooled connection
    // and is served, but the response is lost; the retry's fresh dial
    // never sees a Welcome, which is a terminal typed failure.
    let err = client
        .call(&soap::request("Listings", &[ITree::text("y")]).to_xml())
        .unwrap_err();
    assert!(
        matches!(err, ClientError::Handshake(_)),
        "expected a typed handshake failure, got {err}"
    );
    assert!(client_metrics.snapshot().counter("client.retries_total") >= 1);
    let server = server_metrics.snapshot();
    let requests = server.counter("server.requests_total");
    assert!(
        requests >= 2,
        "the in-window request must have reached the daemon (saw {requests})"
    );
    assert_eq!(
        requests,
        server.counter("server.responses_ok_total") + server.counter("server.faults_total"),
        "requests = ok + faults must hold even for orphaned responses"
    );
    // After the heal the same client serves again on a fresh dial.
    while world.now_ns() < 60_000_000 {
        world.advance(Duration::from_millis(10));
    }
    let ok = client
        .call(&soap::request("Listings", &[ITree::text("z")]).to_xml())
        .unwrap();
    assert!(ok.contains("exhibit"));
}
