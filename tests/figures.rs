//! Executable reproductions of every figure in the paper.
//!
//! The paper's evaluation artifacts are worked examples (Figs. 2, 4–8,
//! 10–12) rather than measurement tables; each test here regenerates one
//! figure's content and asserts the paper's stated conclusion.

use axml::automata::{Dfa, Nfa, Regex};
use axml::core::awk::{Awk, AwkLimits, StateKind};
use axml::core::invoke::ScriptedInvoker;
use axml::core::possible::{target_of, PossibleGame};
use axml::core::rewrite::Rewriter;
use axml::core::safe::{complement_of, BuildMode, SafeGame};
use axml::schema::{newspaper_example, validate, Compiled, ITree, NoOracle, Schema};

/// The paper's schema (*) of Sec. 2, compiled.
fn paper_compiled() -> Compiled {
    Compiled::new(
        Schema::builder()
            .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .element("exhibit", "title.(Get_Date|date)")
            .data_element("performance")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit|performance)*")
            .function("Get_Date", "title", "date")
            .root("newspaper")
            .build()
            .unwrap(),
        &NoOracle,
    )
    .unwrap()
}

fn newspaper_word(c: &Compiled) -> Vec<u32> {
    ["title", "date", "Get_Temp", "TimeOut"]
        .iter()
        .map(|n| c.alphabet().lookup(n).unwrap())
        .collect()
}

fn target(c: &Compiled, model: &str) -> Regex {
    let mut ab = c.alphabet().clone();
    let re = Regex::parse(model, &mut ab).unwrap();
    assert_eq!(ab.len(), c.alphabet().len(), "targets use declared names");
    re
}

/// Figure 2: the document before and after invoking Get_Temp.
#[test]
fn figure2_before_after() {
    let c = paper_compiled();
    let before = newspaper_example();
    validate(&before, &c).unwrap();
    assert_eq!(before.num_funcs(), 2);

    let mut rewriter = Rewriter::new(&c).with_k(1);
    // Target: schema (**) — Fig. 2.b's shape.
    let c2 = Compiled::new(
        Schema::builder()
            .element("newspaper", "title.date.temp.(TimeOut|exhibit*)")
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .element("exhibit", "title.(Get_Date|date)")
            .data_element("performance")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit|performance)*")
            .function("Get_Date", "title", "date")
            .build()
            .unwrap(),
        &NoOracle,
    )
    .unwrap();
    let mut rewriter2 = Rewriter::new(&c2).with_k(1);
    let mut invoker = ScriptedInvoker::new().answer("Get_Temp", vec![ITree::data("temp", "15 C")]);
    let (after, report) = rewriter2.rewrite_safe(&before, &mut invoker).unwrap();
    // Fig. 2.b: temp element in place of the call, TimeOut untouched.
    assert_eq!(report.invoked, vec!["Get_Temp".to_owned()]);
    assert_eq!(after.children()[2], ITree::data("temp", "15 C"));
    assert_eq!(after.num_funcs(), 1);
    let _ = rewriter.analyze_safe(&before);
}

/// Figure 4: `A_w^1` for w = title.date.Get_Temp.TimeOut.
#[test]
fn figure4_awk_structure() {
    let c = paper_compiled();
    let awk = Awk::build(&newspaper_word(&c), &c, 1, &AwkLimits::default()).unwrap();
    // Two forks — q2 (Get_Temp) and q3 (TimeOut) in the figure.
    assert_eq!(awk.num_forks(), 2);
    // The Get_Temp fork's copy reads exactly one 'temp'; TimeOut's copy
    // loops over exhibit|performance.
    let temp = c.alphabet().lookup("temp").unwrap();
    let exhibit = c.alphabet().lookup("exhibit").unwrap();
    let performance = c.alphabet().lookup("performance").unwrap();
    let mut copy_symbols = Vec::new();
    for e in 0..awk.num_edges() as u32 {
        if let Some(sym) = awk.edge(e).label {
            copy_symbols.push(sym);
        }
    }
    assert!(copy_symbols.contains(&temp));
    assert!(copy_symbols.contains(&exhibit));
    assert!(copy_symbols.contains(&performance));
    // The 1-depth language matches the figure: both fork options per call.
    let words = awk.enumerate_words(6, 2_000);
    let w = |names: &[&str]| -> Vec<u32> {
        names
            .iter()
            .map(|n| c.alphabet().lookup(n).unwrap())
            .collect()
    };
    assert!(words.contains(&w(&["title", "date", "Get_Temp", "TimeOut"])));
    assert!(words.contains(&w(&["title", "date", "temp", "TimeOut"])));
    assert!(words.contains(&w(&["title", "date", "temp", "performance"])));
    assert!(words.contains(&w(&["title", "date", "Get_Temp"])));
}

/// Figure 5: the complement automaton Ā for schema (**) — complete,
/// deterministic, with the accepting sink p6.
#[test]
fn figure5_complement_automaton() {
    let c = paper_compiled();
    let re = target(&c, "title.date.temp.(TimeOut|exhibit*)");
    let comp = complement_of(&re, c.alphabet().len());
    assert!(comp.is_complete());
    // Minimal form has exactly the 7 states of Fig. 5 (p0..p6).
    let min = comp.minimized();
    assert_eq!(min.num_states(), 7);
    // Exactly one accepting sink (p6), and the non-accepting states of the
    // complement are the 2 accepting states of the original (p3 ~ p4 merge
    // is NOT possible: p3 accepts exhibit*, p4 = after TimeOut accepts ε).
    let sinks: Vec<u32> = (0..min.num_states() as u32)
        .filter(|&s| min.is_accepting_sink(s))
        .collect();
    assert_eq!(sinks.len(), 1);
    let accepting = min.finals.iter().filter(|&&f| f).count();
    assert_eq!(accepting, 4, "p0, p1, p2 and p6 accept in Ā (Fig. 5)");
    // Words in / out of the complement.
    let w = |names: &[&str]| -> Vec<u32> {
        names
            .iter()
            .map(|n| c.alphabet().lookup(n).unwrap())
            .collect()
    };
    assert!(!min.accepts(&w(&["title", "date", "temp", "TimeOut"])));
    assert!(!min.accepts(&w(&["title", "date", "temp", "exhibit", "exhibit"])));
    assert!(min.accepts(&w(&["title", "date", "Get_Temp", "TimeOut"])));
    assert!(min.accepts(&w(&["title", "date"])));
}

/// Figure 6: the product automaton and its marking — safe, with the
/// rewriting sequence "invoke Get_Temp, do not invoke TimeOut".
#[test]
fn figure6_product_marking_and_plan() {
    let c = paper_compiled();
    let awk = Awk::build(&newspaper_word(&c), &c, 1, &AwkLimits::default()).unwrap();
    let comp = complement_of(
        &target(&c, "title.date.temp.(TimeOut|exhibit*)"),
        c.alphabet().len(),
    );
    let game = SafeGame::solve(awk, comp, BuildMode::Eager);
    assert!(game.is_safe(), "the initial state is not marked");
    let plan = game.plan().unwrap();
    let names: Vec<(String, bool)> = plan
        .iter()
        .map(|d| (c.alphabet().name(d.func).to_owned(), d.invoke))
        .collect();
    assert_eq!(
        names,
        vec![("Get_Temp".to_owned(), true), ("TimeOut".to_owned(), false)]
    );
    // Fork nodes exist and are unmarked, like [q2,p2] and [q3,p3] in the
    // figure.
    let mut unmarked_forks = 0;
    for n in 0..game.num_nodes() as u32 {
        let (s, _) = game.pair(n);
        if matches!(game.awk.kind(s), StateKind::Fork { .. }) && !game.is_marked(n) {
            unmarked_forks += 1;
        }
    }
    assert!(unmarked_forks >= 2);
}

/// Figures 7 and 8: complement for schema (***) and the fully marked
/// product — no safe rewriting.
#[test]
fn figure7_8_unsafe_product() {
    let c = paper_compiled();
    let re = target(&c, "title.date.temp.exhibit*");
    let comp = complement_of(&re, c.alphabet().len());
    // Fig. 7's automaton has 5 states (p0..p3 + sink p6) in minimal form.
    assert_eq!(comp.minimized().num_states(), 5);
    let awk = Awk::build(&newspaper_word(&c), &c, 1, &AwkLimits::default()).unwrap();
    let game = SafeGame::solve(awk, comp, BuildMode::Eager);
    assert!(!game.is_safe(), "initial state is marked (Fig. 8)");
    // Both fork nodes have both options marked: every fork node reachable
    // on the spine is marked.
    for n in 0..game.num_nodes() as u32 {
        let (s, _) = game.pair(n);
        if matches!(game.awk.kind(s), StateKind::Fork { depth: 1, .. }) {
            assert!(game.is_marked(n), "depth-1 forks are all marked in Fig. 8");
        }
    }
}

/// Figure 10: the (non-complemented) automaton A for schema (***).
#[test]
fn figure10_target_automaton() {
    let c = paper_compiled();
    let re = target(&c, "title.date.temp.exhibit*");
    let dfa = target_of(&re, c.alphabet().len());
    // p0..p4 of the figure: 5 states, accepting p3 and p4.
    assert_eq!(dfa.num_states(), 5);
    assert_eq!(dfa.finals.iter().filter(|&&f| f).count(), 2);
    let w = |names: &[&str]| -> Vec<u32> {
        names
            .iter()
            .map(|n| c.alphabet().lookup(n).unwrap())
            .collect()
    };
    assert!(dfa.accepts(&w(&["title", "date", "temp"])));
    assert!(dfa.accepts(&w(&["title", "date", "temp", "exhibit"])));
    assert!(!dfa.accepts(&w(&["title", "date", "temp", "performance"])));
}

/// Figure 11: the possible-rewriting product — a rewriting may exist, and
/// the only viable fork options invoke both functions.
#[test]
fn figure11_possible_product() {
    let c = paper_compiled();
    let awk = Awk::build(&newspaper_word(&c), &c, 1, &AwkLimits::default()).unwrap();
    let dfa = target_of(&target(&c, "title.date.temp.exhibit*"), c.alphabet().len());
    let game = PossibleGame::solve(awk, dfa);
    assert!(game.is_possible(), "the initial state is marked viable");
    let plan = game.plan().unwrap();
    assert_eq!(plan.len(), 2);
    assert!(
        plan.iter().all(|d| d.invoke),
        "the only fork options left invoke both Get_Temp and TimeOut"
    );
}

/// Figure 12: the pruned (lazy) construction explores strictly less than
/// the eager one on the Fig. 6 instance, thanks to sink pruning.
#[test]
fn figure12_pruning() {
    let c = paper_compiled();
    let mk = |mode| {
        let awk = Awk::build(&newspaper_word(&c), &c, 1, &AwkLimits::default()).unwrap();
        let comp = complement_of(
            &target(&c, "title.date.temp.(TimeOut|exhibit*)"),
            c.alphabet().len(),
        );
        SafeGame::solve(awk, comp, mode)
    };
    let eager = mk(BuildMode::Eager);
    let lazy = mk(BuildMode::Lazy);
    assert_eq!(eager.is_safe(), lazy.is_safe());
    assert!(
        lazy.stats.nodes < eager.stats.nodes,
        "lazy {} vs eager {}",
        lazy.stats.nodes,
        eager.stats.nodes
    );
    assert!(lazy.stats.sink_pruned > 0, "sink-node rule fired");
}

/// Sanity check tying Figs. 5/7 together: the same word is in the
/// complement of (***) but not of (**) after invoking both calls the
/// lucky way.
#[test]
fn complements_disagree_on_lucky_word() {
    let c = paper_compiled();
    let lucky: Vec<u32> = ["title", "date", "temp", "exhibit"]
        .iter()
        .map(|n| c.alphabet().lookup(n).unwrap())
        .collect();
    let comp2 = complement_of(
        &target(&c, "title.date.temp.(TimeOut|exhibit*)"),
        c.alphabet().len(),
    );
    let comp3 = complement_of(&target(&c, "title.date.temp.exhibit*"), c.alphabet().len());
    assert!(!comp2.accepts(&lucky));
    assert!(!comp3.accepts(&lucky));
    // A kept TimeOut call is fine for (**) but not for (***).
    let kept: Vec<u32> = ["title", "date", "temp", "TimeOut"]
        .iter()
        .map(|n| c.alphabet().lookup(n).unwrap())
        .collect();
    assert!(!comp2.accepts(&kept));
    assert!(comp3.accepts(&kept));
    // A performance is outside both.
    let unlucky: Vec<u32> = ["title", "date", "temp", "performance"]
        .iter()
        .map(|n| c.alphabet().lookup(n).unwrap())
        .collect();
    assert!(comp2.accepts(&unlucky));
    assert!(comp3.accepts(&unlucky));
}

/// Figure 1: the exchange scenario — among the increasingly materialized
/// versions of the document, the sender picks one conforming to the
/// agreed schema.
#[test]
fn figure1_exchange_scenario() {
    let c = paper_compiled();
    let doc = newspaper_example();
    // The fully intensional version conforms to (*)…
    validate(&doc, &c).unwrap();
    // …a partially materialized version conforms to (**)…
    let dashed = ITree::elem(
        "newspaper",
        vec![
            ITree::data("title", "The Sun"),
            ITree::data("date", "04/10/2002"),
            ITree::data("temp", "15 C"),
            ITree::func("TimeOut", vec![ITree::text("exhibits")]),
        ],
    );
    let c2 = Compiled::new(
        Schema::builder()
            .element("newspaper", "title.date.temp.(TimeOut|exhibit*)")
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .element("exhibit", "title.(Get_Date|date)")
            .data_element("performance")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit|performance)*")
            .function("Get_Date", "title", "date")
            .build()
            .unwrap(),
        &NoOracle,
    )
    .unwrap();
    validate(&dashed, &c2).unwrap();
    assert!(validate(&doc, &c2).is_err());
    // …and the fully materialized one conforms to both.
    let full = ITree::elem(
        "newspaper",
        vec![
            ITree::data("title", "The Sun"),
            ITree::data("date", "04/10/2002"),
            ITree::data("temp", "15 C"),
        ],
    );
    validate(&full, &c).unwrap();
    validate(&full, &c2).unwrap();
}

/// The complement construction agrees with NFA semantics on random words
/// (backing the Fig. 5/7 automata).
#[test]
fn complement_agrees_with_nfa() {
    let c = paper_compiled();
    let n = c.alphabet().len();
    for model in [
        "title.date.temp.(TimeOut|exhibit*)",
        "title.date.temp.exhibit*",
        "title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
    ] {
        let re = target(&c, model);
        let nfa = Nfa::thompson(&re, n);
        let dfa = Dfa::determinize(&nfa);
        let comp = complement_of(&re, n);
        use axml::automata::{sample_word, SampleConfig};
        use axml_support::rng::SeedableRng;
        let mut rng = axml_support::rng::StdRng::seed_from_u64(99);
        for _ in 0..100 {
            let w = sample_word(&re, &mut rng, &SampleConfig::default()).unwrap();
            assert!(nfa.accepts(&w) && dfa.accepts(&w) && !comp.accepts(&w));
        }
    }
}
