//! Soundness of the Sec. 6 reduction: when `schema_safe_rewrites` declares
//! two schemas compatible, every sampled instance of the sender schema
//! must individually pass the document-level safety analysis — and execute
//! successfully against an adversary.

use axml::core::invoke::{InvokeError, Invoker};
use axml::core::rewrite::Rewriter;
use axml::core::schema_rw::schema_safe_rewrites;
use axml::schema::{
    generate_instance, generate_output_instance, validate, Compiled, GenConfig, ITree, NoOracle,
    Schema,
};
use axml_support::rng::SeedableRng;

struct Adversary<'c> {
    compiled: &'c Compiled,
    rng: axml_support::rng::StdRng,
}

impl Invoker for Adversary<'_> {
    fn invoke(&mut self, function: &str, _params: &[ITree]) -> Result<Vec<ITree>, InvokeError> {
        let output = self.compiled.sig_of(function).output.clone();
        generate_output_instance(self.compiled, &output, &mut self.rng, &GenConfig::default())
            .map_err(|e| InvokeError {
                function: function.to_owned(),
                message: e.to_string(),
            })
    }
}

fn paper_star() -> Schema {
    Schema::builder()
        .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
        .data_element("title")
        .data_element("date")
        .data_element("temp")
        .data_element("city")
        .element("exhibit", "title.(Get_Date|date)")
        .data_element("performance")
        .function("Get_Temp", "city", "temp")
        .function("TimeOut", "data", "(exhibit|performance)*")
        .function("Get_Date", "title", "date")
        .root("newspaper")
        .build()
        .unwrap()
}

fn paper_star_star() -> Schema {
    Schema::builder()
        .element("newspaper", "title.date.temp.(TimeOut|exhibit*)")
        .data_element("title")
        .data_element("date")
        .data_element("temp")
        .data_element("city")
        .element("exhibit", "title.(Get_Date|date)")
        .data_element("performance")
        .function("Get_Temp", "city", "temp")
        .function("TimeOut", "data", "(exhibit|performance)*")
        .function("Get_Date", "title", "date")
        .build()
        .unwrap()
}

#[test]
fn compatible_schemas_imply_per_instance_safety_and_execution() {
    let s0 = paper_star();
    let s = paper_star_star();
    // k = 1 suffices for (*) → (**) per the paper's Sec. 2 discussion.
    let report = schema_safe_rewrites(&s0, "newspaper", &s, 1, &NoOracle).unwrap();
    assert!(report.compatible(), "{:?}", report.failures);

    let source = Compiled::new(s0, &NoOracle).unwrap();
    let target = Compiled::new(s, &NoOracle).unwrap();
    let mut rewriter = Rewriter::new(&target).with_k(1);

    let mut checked = 0;
    for seed in 0..200u64 {
        let mut rng = axml_support::rng::StdRng::seed_from_u64(seed);
        let doc = generate_instance(&source, "newspaper", &mut rng, &GenConfig::default())
            .expect("generable");
        // Def. 6 promises safety for EVERY instance.
        rewriter
            .analyze_safe(&doc)
            .unwrap_or_else(|e| panic!("instance (seed {seed}) not safe: {e}\n{doc}"));
        // And execution against an adversary must always succeed.
        let mut adversary = Adversary {
            compiled: &target,
            rng: axml_support::rng::StdRng::seed_from_u64(seed ^ 0xFEED),
        };
        let (out, _) = rewriter
            .rewrite_safe(&doc, &mut adversary)
            .unwrap_or_else(|e| panic!("execution failed (seed {seed}): {e}"));
        validate(&out, &target).unwrap();
        checked += 1;
    }
    assert_eq!(checked, 200);
}

#[test]
fn incompatible_schemas_have_witness_instances() {
    // (*) does not rewrite into (***); some instance must fail the
    // document-level analysis too (completeness spot-check).
    let s0 = paper_star();
    let star3 = Schema::builder()
        .element("newspaper", "title.date.temp.exhibit*")
        .data_element("title")
        .data_element("date")
        .data_element("temp")
        .data_element("city")
        .element("exhibit", "title.(Get_Date|date)")
        .data_element("performance")
        .function("Get_Temp", "city", "temp")
        .function("TimeOut", "data", "(exhibit|performance)*")
        .function("Get_Date", "title", "date")
        .build()
        .unwrap();
    let report = schema_safe_rewrites(&s0, "newspaper", &star3, 1, &NoOracle).unwrap();
    assert!(!report.compatible());

    let source = Compiled::new(s0, &NoOracle).unwrap();
    let target = Compiled::new(star3, &NoOracle).unwrap();
    let mut rewriter = Rewriter::new(&target).with_k(1);
    let mut found_witness = false;
    for seed in 0..100u64 {
        let mut rng = axml_support::rng::StdRng::seed_from_u64(seed);
        let doc = generate_instance(&source, "newspaper", &mut rng, &GenConfig::default())
            .expect("generable");
        if rewriter.analyze_safe(&doc).is_err() {
            found_witness = true;
            break;
        }
    }
    assert!(
        found_witness,
        "an unsafe instance (one containing a TimeOut call) must show up"
    );
}
