//! Golden transcript tests: three canonical exchanges from the paper,
//! each run under one fixed seed, compared byte-for-byte against a
//! checked-in transcript. In this reproduction the paper's figures map
//! to: Fig. 1 — the basic intensional exchange between peers; Fig. 3 —
//! the safe-rewriting enforcement path; Fig. 9 — the possible-rewriting
//! (speculative, backtracking) path.
//!
//! The transcripts pin the *entire* observable behavior of a run — event
//! schedule, wire traffic, retries, delivered document, and every metric
//! snapshot — so any drift in the client, server, enforcement, or
//! simulator shows up as a byte diff. After an intentional behavior
//! change, regenerate with:
//!
//! ```text
//! AXML_UPDATE_GOLDEN=1 cargo test --test golden_transcripts
//! ```
//!
//! and review the diff of `tests/golden/` like any other code change.

use axml::schema::ITree;
use axml::sim::{
    exhibit, offer, run_marketplace, run_scenario, run_upgrade, FaultPlan, MarketplaceConfig,
    Mode, Outcome, ScenarioConfig, StrategyKind, UpgradeConfig,
};
use std::path::PathBuf;
use std::time::Duration;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, transcript: &str) {
    let path = golden_path(name);
    if std::env::var("AXML_UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, transcript).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {path:?} ({e}); run with AXML_UPDATE_GOLDEN=1 to create it")
    });
    assert!(
        transcript == want,
        "transcript drifted from {name}.\n\
         If the change is intentional, regenerate with AXML_UPDATE_GOLDEN=1 \
         and review the diff.\n--- want ---\n{want}\n--- got ---\n{transcript}"
    );
}

/// The Fig. 1 document: two exhibits, one with its date materialized and
/// one left as an embedded `Get_Date` call.
fn fig1_doc() -> ITree {
    ITree::elem("r", vec![exhibit("monet", false), exhibit("rodin", true)])
}

/// Fig. 1 — the basic exchange: a clean network, safe enforcement, the
/// intensional call materialized before shipping, document delivered.
#[test]
fn fig1_exchange_transcript_is_stable() {
    let report = run_scenario(&ScenarioConfig {
        seed: 0x0f16_0001,
        plan: FaultPlan::default(),
        mode: Mode::Safe,
        doc: Some(fig1_doc()),
        exhibits: 0,
        provider_fault_prob: 0.0,
        attempts: 4,
        deadline: Duration::from_secs(5),
    });
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(matches!(report.outcome, Outcome::Delivered { .. }));
    check_golden("fig1.txt", &report.transcript);
}

/// Fig. 3 — safe rewriting under a noisy network: duplicated frames and
/// Busy pushback force retries, but the safe plan still guarantees the
/// delivered document conforms.
#[test]
fn fig3_safe_rewriting_transcript_is_stable() {
    let report = run_scenario(&ScenarioConfig {
        seed: 0x0f16_0004,
        plan: FaultPlan {
            dup_prob: 0.25,
            busy_prob: 0.40,
            ..FaultPlan::default()
        },
        mode: Mode::Safe,
        doc: Some(ITree::elem(
            "r",
            vec![exhibit("monet", true), exhibit("rodin", true)],
        )),
        exhibits: 0,
        provider_fault_prob: 0.0,
        attempts: 4,
        deadline: Duration::from_secs(5),
    });
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(matches!(report.outcome, Outcome::Delivered { .. }));
    check_golden("fig3.txt", &report.transcript);
}

/// Fig. 9 — possible rewriting against a flaky provider: service calls
/// may come back as injected faults, the speculative plan retries or
/// reports a typed failure, and the whole dance is pinned byte-for-byte.
#[test]
fn fig9_possible_rewriting_transcript_is_stable() {
    let report = run_scenario(&ScenarioConfig {
        seed: 0x0f16_0009,
        plan: FaultPlan::default(),
        mode: Mode::Possible,
        doc: Some(ITree::elem(
            "r",
            vec![
                exhibit("monet", true),
                exhibit("rodin", false),
                exhibit("redon", true),
            ],
        )),
        exhibits: 0,
        provider_fault_prob: 0.5,
        attempts: 4,
        deadline: Duration::from_secs(5),
    });
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    check_golden("fig9.txt", &report.transcript);
}

/// The strategic game-graph adversary (Sec. 5's Possible game, played
/// against us): on a seed where a random opponent delivers, the
/// strategic provider walks the solved game graph and answers the worst
/// type-correct word (`apology`) at every `Get_Quote` fork, forcing the
/// possible-mode rewrite into a typed exhaustion failure. The pinned
/// transcript shows the whole dance — the quote call, the apology
/// answer, the backtracking, the typed error — byte-for-byte.
#[test]
fn strategic_adversary_transcript_is_stable() {
    let config = MarketplaceConfig {
        seed: 3,
        plan: FaultPlan::default(),
        mode: Mode::Possible,
        doc: Some(ITree::elem(
            "catalog",
            vec![offer("laptop", Some("Get_Quote"))],
        )),
        offers: 0,
        strategies: vec![StrategyKind::Strategic],
        k: 3,
        churn: None,
        attempts: 4,
        deadline: Duration::from_secs(5),
    };
    let report = run_marketplace(&config);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    // The same seed with a fault-free random opponent delivers (see
    // tests/sim_soak.rs); the strategic opponent must not.
    match &report.outcome {
        Outcome::Failed { error } => assert!(error.contains("all rewriting branches failed")),
        Outcome::Delivered { .. } => panic!("strategic opponent must force a typed failure"),
    }
    check_golden("strategic.txt", &report.transcript);
}

/// The rolling-schema-upgrade fleet (DESIGN.md §11): the persisted
/// compatibility matrix vetoes the incompatible version while daemons
/// upgrade one by one, and a mid-run sender restart resumes from the
/// on-disk cache snapshot with zero misses. The transcript pins the
/// upgrade schedule, every matrix verdict, the restart reload counts,
/// both cache-counter phases, the store counters, and a digest of the
/// full event log.
#[test]
fn rolling_upgrade_transcript_is_stable() {
    let report = run_upgrade(&UpgradeConfig::from_seed(0x0f16_0011));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.delivered > 0 && report.vetoed > 0);
    check_golden("upgrade.txt", &report.transcript);
}
