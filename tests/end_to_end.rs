//! Cross-crate integration tests: XML Schema_int front-end → compiled
//! schema → rewriting → simulated services → peers, end to end.

use axml::core::invoke::ScriptedInvoker;
use axml::core::mixed::rewrite_mixed;
use axml::core::rewrite::{enforce, RewriteError, Rewriter};
use axml::core::schema_rw::schema_safe_rewrites;
use axml::peer::{Peer, Query};
use axml::schema::{newspaper_example, validate, xsd, Compiled, ITree, NoOracle, Schema};
use axml::services::builtin::{Adversarial, Flaky, GetDate, GetTemp, IllTyped, TimeOutGuide};
use axml::services::{Registry, ServiceDef};
use std::sync::Arc;

const PAPER_XSD: &str = r#"
<schema root="newspaper">
  <element name="newspaper">
    <complexType><sequence>
      <element ref="title"/>
      <element ref="date"/>
      <choice><function ref="Get_Temp"/><element ref="temp"/></choice>
      <choice><function ref="TimeOut"/>
              <element ref="exhibit" minOccurs="0" maxOccurs="unbounded"/></choice>
    </sequence></complexType>
  </element>
  <element name="title" type="data"/>
  <element name="date" type="data"/>
  <element name="temp" type="data"/>
  <element name="city" type="data"/>
  <element name="exhibit">
    <complexType><sequence>
      <element ref="title"/>
      <choice><function ref="Get_Date"/><element ref="date"/></choice>
    </sequence></complexType>
  </element>
  <element name="performance" type="data"/>
  <function id="Get_Temp">
    <params><param><element ref="city"/></param></params>
    <result><element ref="temp"/></result>
  </function>
  <function id="TimeOut">
    <params><param><data/></param></params>
    <result><choice minOccurs="0" maxOccurs="unbounded">
      <element ref="exhibit"/><element ref="performance"/>
    </choice></result>
  </function>
  <function id="Get_Date">
    <params><param><element ref="title"/></param></params>
    <result><element ref="date"/></result>
  </function>
</schema>"#;

/// The exchange schema (**) in XML Schema_int syntax.
const EXCHANGE_XSD: &str = r#"
<schema root="newspaper">
  <element name="newspaper">
    <complexType><sequence>
      <element ref="title"/>
      <element ref="date"/>
      <element ref="temp"/>
      <choice><function ref="TimeOut"/>
              <element ref="exhibit" minOccurs="0" maxOccurs="unbounded"/></choice>
    </sequence></complexType>
  </element>
  <element name="title" type="data"/>
  <element name="date" type="data"/>
  <element name="temp" type="data"/>
  <element name="city" type="data"/>
  <element name="exhibit">
    <complexType><sequence>
      <element ref="title"/>
      <choice><function ref="Get_Date"/><element ref="date"/></choice>
    </sequence></complexType>
  </element>
  <element name="performance" type="data"/>
  <function id="Get_Temp">
    <params><param><element ref="city"/></param></params>
    <result><element ref="temp"/></result>
  </function>
  <function id="TimeOut">
    <params><param><data/></param></params>
    <result><choice minOccurs="0" maxOccurs="unbounded">
      <element ref="exhibit"/><element ref="performance"/>
    </choice></result>
  </function>
  <function id="Get_Date">
    <params><param><element ref="title"/></param></params>
    <result><element ref="date"/></result>
  </function>
</schema>"#;

#[test]
fn xsd_schemas_drive_the_full_pipeline() {
    // Parse both schemas from their XML syntax.
    let s0 = xsd::parse_xml_schema(PAPER_XSD).unwrap();
    let s = xsd::parse_xml_schema(EXCHANGE_XSD).unwrap();

    // Schema-level compatibility (Sec. 6): every (*) instance fits (**).
    let report = schema_safe_rewrites(&s0, "newspaper", &s, 1, &NoOracle).unwrap();
    assert!(report.compatible(), "{:?}", report.failures);

    // Document-level: parse the Sec. 7 XML document, rewrite, serialize.
    let doc_xml = newspaper_example().to_xml().to_pretty_xml();
    let parsed = axml::xml::parse_document(&doc_xml).unwrap();
    let doc = ITree::from_xml(&parsed.root).unwrap();

    let compiled = Compiled::new(s, &NoOracle).unwrap();
    let mut rewriter = Rewriter::new(&compiled).with_k(1);
    let mut invoker = ScriptedInvoker::new().answer("Get_Temp", vec![ITree::data("temp", "15 C")]);
    let (sent, report) = rewriter.rewrite_safe(&doc, &mut invoker).unwrap();
    assert_eq!(report.invoked, vec!["Get_Temp".to_owned()]);
    validate(&sent, &compiled).unwrap();

    // The rewritten document serializes back to exchangeable XML.
    let wire = sent.to_xml().to_xml();
    let back = ITree::from_xml(&axml::xml::parse_document(&wire).unwrap().root).unwrap();
    assert_eq!(back, sent);
}

fn builder_schema(newspaper_model: &str) -> Compiled {
    Compiled::new(
        Schema::builder()
            .element("newspaper", newspaper_model)
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .element("exhibit", "title.(Get_Date|date)")
            .data_element("performance")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit|performance)*")
            .function("Get_Date", "title", "date")
            .build()
            .unwrap(),
        &NoOracle,
    )
    .unwrap()
}

#[test]
fn safe_rewriting_against_adversarial_registry() {
    // The adversary returns arbitrary type-correct answers; safe rewriting
    // must succeed on every seed.
    let target = Arc::new(builder_schema("title.date.temp.(TimeOut|exhibit*)"));
    for seed in 0..25 {
        let registry = Registry::new();
        registry.register(
            ServiceDef::new("Get_Temp", "city", "temp"),
            Arc::new(Adversarial::for_function(
                Arc::clone(&target),
                "Get_Temp",
                seed,
            )),
        );
        registry.register(
            ServiceDef::new("TimeOut", "data", "(exhibit|performance)*"),
            Arc::new(Adversarial::for_function(
                Arc::clone(&target),
                "TimeOut",
                seed,
            )),
        );
        registry.register(
            ServiceDef::new("Get_Date", "title", "date"),
            Arc::new(Adversarial::for_function(
                Arc::clone(&target),
                "Get_Date",
                seed,
            )),
        );
        let mut rewriter = Rewriter::new(&target).with_k(2);
        let mut invoker = registry.invoker(None);
        let (out, _) = rewriter
            .rewrite_safe(&newspaper_example(), &mut invoker)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        validate(&out, &target).unwrap();
    }
}

#[test]
fn mixed_rewriting_with_live_services() {
    // (***) is unsafe, but TimeOut is side-effect free: pre-invoke it.
    let target = builder_schema("title.date.temp.exhibit*");
    let registry = Registry::new();
    registry.register(
        ServiceDef::new("Get_Temp", "city", "temp"),
        Arc::new(GetTemp::with_defaults()),
    );
    registry.register(
        ServiceDef::new("TimeOut", "data", "(exhibit|performance)*"),
        Arc::new(TimeOutGuide::exhibits_only()),
    );
    registry.register(
        ServiceDef::new("Get_Date", "title", "date"),
        Arc::new(GetDate {
            table: vec![("Monet".to_owned(), "Mon".to_owned())],
        }),
    );
    let mut rewriter = Rewriter::new(&target).with_k(1);
    let side_effect_free = |name: &str| {
        registry
            .describe(name)
            .map(|d| !d.side_effects)
            .unwrap_or(false)
    };
    let mut invoker = registry.invoker(None);
    let (out, report) = rewrite_mixed(
        &mut rewriter,
        &newspaper_example(),
        &side_effect_free,
        &mut invoker,
    )
    .unwrap();
    validate(&out, &target).unwrap();
    assert!(report.invoked.contains(&"TimeOut".to_owned()));
}

#[test]
fn ill_typed_services_are_rejected_at_the_boundary() {
    let target = builder_schema("title.date.temp.(TimeOut|exhibit*)");
    let registry = Registry::new();
    registry.register(
        ServiceDef::new("Get_Temp", "city", "temp"),
        Arc::new(IllTyped {
            forest: vec![ITree::data("performance", "not a temp")],
        }),
    );
    let mut rewriter = Rewriter::new(&target).with_k(1);
    let mut invoker = registry.invoker(None);
    let err = rewriter
        .rewrite_safe(&newspaper_example(), &mut invoker)
        .unwrap_err();
    assert!(matches!(err, RewriteError::IllTyped { .. }), "{err}");
}

#[test]
fn flaky_services_surface_as_invoke_errors() {
    let target = builder_schema("title.date.temp.(TimeOut|exhibit*)");
    let registry = Registry::new();
    registry.register(
        ServiceDef::new("Get_Temp", "city", "temp"),
        Arc::new(Flaky::every(Arc::new(GetTemp::with_defaults()), 1)),
    );
    let mut rewriter = Rewriter::new(&target).with_k(1);
    let mut invoker = registry.invoker(None);
    let err = rewriter
        .rewrite_safe(&newspaper_example(), &mut invoker)
        .unwrap_err();
    assert!(matches!(err, RewriteError::Invoke(_)), "{err}");
}

#[test]
fn repository_enrichment_chases_continuations() {
    use axml::services::builtin::SearchEngine;
    let compiled = Arc::new(
        Compiled::new(
            Schema::builder()
                .element("results", "(url|SearchMore)*")
                .data_element("url")
                .function("SearchMore", "", "url*.SearchMore?")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap(),
    );
    let registry = Registry::new();
    let urls: Vec<String> = (0..5).map(|i| format!("u{i}")).collect();
    registry.register(
        ServiceDef::new("SearchMore", "", "url*.SearchMore?"),
        Arc::new(SearchEngine::new(urls, 2, "SearchMore")),
    );
    let peer = Peer::new("p", Arc::clone(&compiled), Arc::new(Registry::new()));
    peer.repository.store(
        "hits",
        ITree::elem("results", vec![ITree::func("SearchMore", vec![])]),
    );
    // Chase the continuation handles round by round until none remain.
    let mut rounds = 0;
    loop {
        let mut invoker = registry.invoker(None);
        let n = peer
            .repository
            .enrich("hits", &compiled, &|f| f == "SearchMore", &mut invoker)
            .unwrap();
        rounds += 1;
        if n == 0 {
            break;
        }
        assert!(rounds < 10, "enrichment must terminate");
    }
    let final_doc = peer.repository.load("hits").unwrap();
    assert_eq!(final_doc.num_funcs(), 0);
    assert_eq!(final_doc.children().len(), 5);
    validate(&final_doc, &compiled).unwrap();
}

#[test]
fn two_peer_soap_exchange_with_enforcement() {
    let own = Arc::new(builder_schema(
        "title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
    ));
    // Extend the vocabulary with the Front_Page operation.
    let vocab = Arc::new(
        Compiled::new(
            Schema::builder()
                .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.(Get_Date|date)")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .function("Front_Page", "data", "newspaper")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap(),
    );
    let registry = Arc::new(Registry::new());
    registry.register(
        ServiceDef::new("Get_Temp", "city", "temp"),
        Arc::new(GetTemp::with_defaults()),
    );
    registry.register(
        ServiceDef::new("TimeOut", "data", "(exhibit|performance)*"),
        Arc::new(TimeOutGuide::exhibits_only()),
    );
    registry.register(
        ServiceDef::new("Get_Date", "title", "date"),
        Arc::new(GetDate { table: vec![] }),
    );

    let newspaper = Arc::new(Peer::new(
        "newspaper",
        Arc::clone(&vocab),
        Arc::clone(&registry),
    ));
    newspaper.repository.store("front", newspaper_example());
    newspaper.declare(
        ServiceDef::new("Front_Page", "data", "newspaper"),
        Query::Document("front".to_owned()),
    );
    let server = newspaper.serve();

    let reader = Peer::new("reader", Arc::clone(&vocab), Arc::clone(&registry));
    let page = reader
        .call_remote(&server, "Front_Page", &[ITree::text("today")])
        .unwrap();
    assert_eq!(page.len(), 1);
    validate(&page[0], &own).unwrap();
    server.shutdown().unwrap();
}

#[test]
fn enforce_reports_failure_when_unfixable() {
    // The document contains a performance where the schema demands only
    // exhibits, and no function can produce the missing structure.
    let target = builder_schema("title.date.temp.exhibit*");
    let doc = ITree::elem(
        "newspaper",
        vec![
            ITree::data("title", "t"),
            ITree::data("date", "d"),
            ITree::data("temp", "15"),
            ITree::elem("performance", vec![ITree::text("Hamlet")]),
        ],
    );
    let mut invoker = ScriptedInvoker::new();
    let err = enforce(&target, &doc, 2, &mut invoker).unwrap_err();
    assert!(matches!(err, RewriteError::NotSafe { .. }), "{err}");
}
