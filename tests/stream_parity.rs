//! Streaming enforcement is observationally identical to the DOM pipeline.
//!
//! The streaming enforcer (`axml_core::stream`) promises byte-identical
//! output and identical typed errors for every document × schema ×
//! strategy combination — that is the contract that makes `--enforce
//! streaming` a safe default. This suite drives the promise:
//!
//! * a property sweeping random intensional newspapers (0–4 embedded
//!   calls, optional stray elements, pretty-printed or compact input)
//!   across the paper's three exchange schemas and both strategies,
//!   checking output bytes, invocation lists, typed errors, and the
//!   `bytes_copied + bytes_rewritten == bytes_out` accounting identity;
//! * pinned regressions for error ordering (leftmost error wins) and the
//!   error taxonomy surviving the fallback;
//! * a transport-matrix case shipping a streamed-enforced document across
//!   both network engines (blocking threads and the poll loop) and
//!   checking the receiver stores the same document the DOM mode ships.

use axml::core::invoke::{Invoker, ScriptedInvoker};
use axml::core::rewrite::{RewriteError, Strategy as RwStrategy};
use axml::core::stream::{enforce_dom, enforce_stream, StreamOptions};
use axml::peer::{EnforceMode, NetInvoker, NetPeer, Peer, Query, RemotePeer};
use axml::schema::{Compiled, ITree, NoOracle, Schema};
use axml::services::{Registry, ServiceDef};
use axml_support::prelude::*;
use std::sync::Arc;

fn compiled(root_model: &str) -> Compiled {
    Compiled::new(
        Schema::builder()
            .element("newspaper", root_model)
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .element("exhibit", "title.(Get_Date|date)")
            .data_element("performance")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit|performance)*")
            .function("Get_Date", "title", "date")
            .build()
            .unwrap(),
        &NoOracle,
    )
    .unwrap()
}

/// The paper's three exchange schemas: (*) keeps calls where they stand,
/// (**) forces the temperature to materialize, (***) forces everything.
const MODELS: [&str; 3] = [
    "title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
    "title.date.temp.(TimeOut|exhibit*)",
    "title.date.temp.(exhibit|performance)*",
];

fn scripted() -> ScriptedInvoker {
    ScriptedInvoker::new()
        .answer("Get_Temp", vec![ITree::data("temp", "15 C")])
        .answer(
            "TimeOut",
            vec![ITree::elem(
                "exhibit",
                vec![ITree::data("title", "Monet"), ITree::data("date", "Mon")],
            )],
        )
        .answer("Get_Date", vec![ITree::data("date", "04/10/2002")])
}

/// Texts that exercise escaping, trimming, and whitespace-only runs.
fn text_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("The Daily Moon".to_owned()),
        Just("a & b".to_owned()),
        Just("x<y>z".to_owned()),
        Just("  padded  ".to_owned()),
        Just("04/10/2002".to_owned()),
        "[a-z]{1,8}".prop_map(|s| s),
    ]
}

fn exhibit_strategy() -> impl Strategy<Value = ITree> {
    (text_strategy(), (0u32..2).prop_map(|b| b == 1)).prop_map(|(t, lazy)| {
        let date = if lazy {
            ITree::func("Get_Date", vec![ITree::data("title", &t)])
        } else {
            ITree::data("date", "Mon")
        };
        ITree::elem("exhibit", vec![ITree::data("title", &t), date])
    })
}

/// Random newspapers: sometimes valid, sometimes missing parts, with
/// 0–4 embedded calls and (rarely) a stray element the schema does not
/// know — both error parity and success parity matter.
fn newspaper_strategy() -> impl Strategy<Value = ITree> {
    let temp = prop_oneof![
        Just(None),
        Just(Some(ITree::data("temp", "15 C"))),
        Just(Some(ITree::func(
            "Get_Temp",
            vec![ITree::data("city", "Paris")]
        ))),
    ];
    let tail = prop_oneof![
        Just(Vec::new()),
        Just(vec![ITree::func("TimeOut", vec![ITree::text("exhibits")])]),
        prop::collection::vec(exhibit_strategy(), 1..3),
    ];
    (
        text_strategy(),
        (0u32..2).prop_map(|b| b == 1),
        temp,
        tail,
        0u32..20,
    )
        .prop_map(|(title, with_date, temp, tail, stray)| {
            let mut children = vec![ITree::data("title", &title)];
            if with_date {
                children.push(ITree::data("date", "04/10/2002"));
            }
            if let Some(t) = temp {
                children.push(t);
            }
            children.extend(tail);
            if stray == 0 {
                children.push(ITree::elem("mystery", vec![]));
            }
            ITree::elem("newspaper", children)
        })
}

/// Renders a document the way a peer on the wire might: compact or
/// indented (indentation exercises whitespace-run dropping).
fn render(doc: &ITree, pretty: bool) -> String {
    let xml = doc.to_xml();
    if pretty {
        xml.to_pretty_xml()
    } else {
        axml::xml::element_to_string(&xml, &axml::xml::WriteOptions::compact())
    }
}

/// The core parity check: identical bytes on success, identical typed
/// error on failure, invocation-list parity, byte-accounting identity.
fn assert_parity(compiled: &Compiled, input: &str, strategy: RwStrategy, k: u32) {
    let opts = StreamOptions {
        k,
        strategy,
        ..StreamOptions::default()
    };
    let dom = enforce_dom(compiled, input, &opts, &mut || {
        Box::new(scripted()) as Box<dyn Invoker + Send>
    });
    let stream = enforce_stream(compiled, input, &opts, &mut || {
        Box::new(scripted()) as Box<dyn Invoker + Send>
    });
    match (dom, stream) {
        (Ok((dom_out, dom_rep)), Ok((out, rep))) => {
            assert_eq!(out, dom_out, "output bytes diverge");
            assert_eq!(
                rep.rewrite.invoked, dom_rep.invoked,
                "invocation lists diverge"
            );
            assert_eq!(
                rep.bytes_copied + rep.bytes_rewritten,
                rep.bytes_out,
                "byte accounting identity broken"
            );
            assert_eq!(rep.bytes_out, out.len() as u64, "bytes_out miscounted");
        }
        (Err(dom_err), Err(err)) => {
            assert_eq!(err, dom_err, "typed errors diverge");
            assert_eq!(err.to_string(), dom_err.to_string());
        }
        (dom, stream) => panic!(
            "verdicts diverge: dom={:?} stream={:?}",
            dom.map(|(o, _)| o),
            stream.map(|(o, _)| o)
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random documents × the three paper schemas × both strategies ×
    /// both renderings: streaming ≡ DOM, byte for byte, error for error.
    #[test]
    fn stream_parity(doc in newspaper_strategy(), pretty in (0u32..2).prop_map(|b| b == 1)) {
        for model in MODELS {
            let c = compiled(model);
            for strategy in [RwStrategy::Safe, RwStrategy::Possible] {
                let input = render(&doc, pretty);
                assert_parity(&c, &input, strategy, 1);
            }
        }
    }
}

/// Leftmost error wins: with two schema violations in document order, the
/// streaming path reports the same (first) one the DOM path reports.
#[test]
fn regression_leftmost_error_wins() {
    let c = compiled(MODELS[1]);
    // Both the missing title (first) and the trailing stray element
    // (second) are violations; the reported error must be the DOM one.
    let input = "<newspaper><date>d</date><temp>1</temp><mystery/></newspaper>";
    assert_parity(&c, input, RwStrategy::Safe, 1);
    let opts = StreamOptions::default();
    let err = enforce_stream(&c, input, &opts, &mut || {
        Box::new(scripted()) as Box<dyn Invoker + Send>
    })
    .unwrap_err();
    let msg = err.to_string();
    assert!(
        !msg.contains("mystery"),
        "second error reported before the first: {msg}"
    );
}

/// The error taxonomy survives the fallback: an unrewritable document
/// yields the same `NotSafe` the DOM rewriter produces.
#[test]
fn regression_error_taxonomy_preserved() {
    let c = compiled(MODELS[2]);
    // (***) admits no TimeOut; a TimeOut with nothing else to offer makes
    // the word unrewritable at k=0 depth... use a doc whose only plan
    // requires an invocation that the schema's word game cannot license.
    let input = "<newspaper><title>t</title><date>d</date></newspaper>";
    let opts = StreamOptions::default();
    let dom_err = enforce_dom(&c, input, &opts, &mut || {
        Box::new(scripted()) as Box<dyn Invoker + Send>
    })
    .unwrap_err();
    let err = enforce_stream(&c, input, &opts, &mut || {
        Box::new(scripted()) as Box<dyn Invoker + Send>
    })
    .unwrap_err();
    assert_eq!(err, dom_err);
    assert!(
        matches!(err, RewriteError::NotSafe { .. } | RewriteError::Exhausted { .. }),
        "expected a rewrite-taxonomy error, got: {err}"
    );
}

/// Malformed XML: the streaming reader hits the error mid-stream, the
/// fallback reproduces the DOM parser's message verbatim.
#[test]
fn regression_malformed_input_parity() {
    let c = compiled(MODELS[0]);
    for input in [
        "<newspaper><title>t</title>",
        "<newspaper><title>t</newspaper></title>",
        "not xml at all",
        "",
    ] {
        let opts = StreamOptions::default();
        let dom_err = enforce_dom(&c, input, &opts, &mut || {
            Box::new(scripted()) as Box<dyn Invoker + Send>
        })
        .unwrap_err();
        let err = enforce_stream(&c, input, &opts, &mut || {
            Box::new(scripted()) as Box<dyn Invoker + Send>
        })
        .unwrap_err();
        assert_eq!(err, dom_err, "on input {input:?}");
    }
}

// ---------------------------------------------------------------------
// Transport matrix: a streamed-enforced document over both net engines.
// ---------------------------------------------------------------------

fn exchange_vocab() -> Schema {
    Schema::builder()
        .element("newspaper", "title.date.(Listings|exhibit*)")
        .data_element("title")
        .data_element("date")
        .element("exhibit", "title.date")
        .function("Listings", "data", "exhibit*")
        .build()
        .unwrap()
}

fn strict_vocab() -> Schema {
    Schema::builder()
        .element("newspaper", "title.date.exhibit*")
        .data_element("title")
        .data_element("date")
        .element("exhibit", "title.date")
        .function("Listings", "data", "exhibit*")
        .build()
        .unwrap()
}

fn provider_daemon(io: axml::net::IoMode) -> NetPeer {
    let peer = Arc::new(Peer::new(
        "listings.example.org",
        Arc::new(Compiled::new(exchange_vocab(), &NoOracle).unwrap()),
        Arc::new(Registry::new()),
    ));
    peer.repository.store(
        "program",
        ITree::elem(
            "listings",
            vec![
                ITree::elem(
                    "exhibit",
                    vec![ITree::data("title", "Monet"), ITree::data("date", "Mon")],
                ),
                ITree::elem(
                    "exhibit",
                    vec![ITree::data("title", "Rodin"), ITree::data("date", "Tue")],
                ),
            ],
        ),
    );
    peer.declare(
        ServiceDef::new("Listings", "data", "exhibit*"),
        Query::Children("program".to_owned()),
    );
    let config = axml::net::ServerConfig {
        io,
        ..Default::default()
    };
    NetPeer::serve(peer, "127.0.0.1:0", config).unwrap()
}

/// Ships the intensional front page under the strict exchange schema with
/// the given enforcement mode and engine; returns the stored document.
fn ship_outcome(io: axml::net::IoMode, mode: EnforceMode) -> ITree {
    let provider = provider_daemon(io);
    let receiver_peer = Arc::new(
        Peer::new(
            "browser.example.org",
            Arc::new(Compiled::new(strict_vocab(), &NoOracle).unwrap()),
            Arc::new(Registry::new()),
        )
        .with_enforce_mode(mode),
    );
    let config = axml::net::ServerConfig {
        io,
        ..Default::default()
    };
    let receiver = NetPeer::serve(Arc::clone(&receiver_peer), "127.0.0.1:0", config).unwrap();

    let sender = Peer::new(
        "newspaper.example.org",
        Arc::new(Compiled::new(exchange_vocab(), &NoOracle).unwrap()),
        Arc::new(Registry::new()),
    )
    .with_enforce_mode(mode);
    let front = ITree::elem(
        "newspaper",
        vec![
            ITree::data("title", "The Sun"),
            ITree::data("date", "04/10/2002"),
            ITree::func("Listings", vec![ITree::text("exhibits")]),
        ],
    );

    let to_provider = RemotePeer::connect(provider.local_addr(), Default::default()).unwrap();
    let to_receiver = RemotePeer::connect(receiver.local_addr(), Default::default()).unwrap();
    let strict = Arc::new(Compiled::new(strict_vocab(), &NoOracle).unwrap());
    let mut invoker = NetInvoker {
        caller: &sender,
        remote: &to_provider,
    };
    let (sent, report) = to_receiver
        .send_document_with(&sender, "front", &front, &strict, &mut invoker)
        .unwrap();
    assert_eq!(report.invoked, vec!["Listings".to_owned()]);
    assert_eq!(sent.num_funcs(), 0);
    let stored = receiver_peer.repository.load("front").unwrap();
    assert_eq!(stored, sent);

    provider.shutdown().unwrap();
    receiver.shutdown().unwrap();
    stored
}

/// The Fig. 1 exchange with streaming enforcement on both ends, over both
/// network engines: every combination stores the same document the DOM
/// mode stores.
#[test]
fn matrix_streamed_exchange_identical_across_engines_and_modes() {
    use axml::net::IoMode;
    let baseline = ship_outcome(IoMode::Threads, EnforceMode::Dom);
    for io in [IoMode::Threads, IoMode::Poll] {
        let streamed = ship_outcome(io, EnforceMode::Streaming);
        assert_eq!(
            streamed, baseline,
            "streamed exchange over {io:?} differs from the DOM baseline"
        );
    }
}

/// Spot run backing the EXPERIMENTS.md B14 claim: a ~100 MB document
/// with 16 call sites streams through `Rewriter::rewrite_stream` into a
/// discarding sink with the same constant peak buffer the 1 MiB
/// documents need. Ignored by default (builds 100 MB of XML); run with
/// `cargo test --release --test stream_parity -- --ignored`.
#[test]
#[ignore = "builds a 100 MB document; run explicitly in release mode"]
fn spot_100mb_bounded_peak() {
    let compiled = Compiled::new(
        Schema::builder()
            .element("feed", "meta.chunk*.calls")
            .data_element("meta")
            .data_element("chunk")
            .element("calls", "quote*")
            .data_element("quote")
            .function("Get_Quote", "meta", "quote*")
            .build()
            .unwrap(),
        &NoOracle,
    )
    .unwrap();

    let target = 100 * 1000 * 1000;
    let chunk_body: String = "abcdefghijklmnopqrstuvwxyz0123456789 "
        .chars()
        .cycle()
        .take(64 << 10)
        .collect();
    let mut input = String::with_capacity(target + 4096);
    input.push_str("<feed><meta>nasdaq 2026-08-08</meta>");
    while input.len() + (64 << 10) < target {
        input.push_str("<chunk>");
        input.push_str(&chunk_body);
        input.push_str("</chunk>");
    }
    input.push_str("<calls>");
    for i in 0..16 {
        input.push_str(&format!(
            "<int:fun xmlns:int=\"http://www.activexml.com/ns/int\" methodName=\"Get_Quote\">\
             <int:params><int:param><meta>site {i}</meta></int:param></int:params></int:fun>"
        ));
    }
    input.push_str("</calls></feed>");
    assert!(input.len() >= 99 * 1000 * 1000);

    let mut inv =
        ScriptedInvoker::new().answer("Get_Quote", vec![ITree::data("quote", "AXML 42.17")]);
    let mut sink = std::io::sink();
    let rep = axml::core::rewrite::Rewriter::new(&compiled)
        .with_k(1)
        .rewrite_stream(&input, RwStrategy::Safe, &mut inv, &mut sink)
        .unwrap();

    assert!(!rep.fell_back);
    assert_eq!(rep.bytes_copied + rep.bytes_rewritten, rep.bytes_out);
    assert_eq!(rep.subtrees_materialized, 1);
    // The peak is the `calls` subtree's input span — independent of the
    // 100 MB of extensional chunks around it.
    assert_eq!(rep.peak_buffer_bytes, 2386, "peak buffer grew with document size");
}
