//! Robustness of the warm-state store against every way a snapshot
//! can rot on disk (DESIGN.md §11): truncation at any offset, a bit
//! flipped at any offset, a version skew, a foreign-schema
//! fingerprint — all must load as a *cold miss* with
//! `store.corrupt_discarded_total` incremented and the corpse
//! deleted. Never a panic, never a partially-loaded cache, never a
//! stale answer. The offsets are property-driven so the checksum and
//! header validation are exercised across the whole file, not at a
//! few hand-picked positions.

use axml::core::invoke::{InvokeError, Invoker};
use axml::core::rewrite::Rewriter;
use axml::core::solve_cache::SolveCache;
use axml::schema::{generate_output_instance, Compiled, GenConfig, ITree, NoOracle, Schema};
use axml::store::{CompatMatrix, Store, CACHE_SNAPSHOT_FILE, MATRIX_FILE};
use axml_support::hash::fx_hash_one;
use axml_support::prelude::*;
use axml_support::rng::SeedableRng;
use std::path::Path;
use std::sync::Arc;

struct PureInvoker<'c> {
    compiled: &'c Compiled,
    salt: u64,
}

impl Invoker for PureInvoker<'_> {
    fn invoke(&mut self, function: &str, params: &[ITree]) -> Result<Vec<ITree>, InvokeError> {
        let seed = fx_hash_one(&(self.salt, function, format!("{params:?}")));
        let mut rng = axml_support::rng::StdRng::seed_from_u64(seed);
        let output = self.compiled.sig_of(function).output.clone();
        generate_output_instance(self.compiled, &output, &mut rng, &GenConfig::default()).map_err(
            |e| InvokeError {
                function: function.to_owned(),
                message: e.to_string(),
            },
        )
    }
}

fn exchange_compiled() -> Arc<Compiled> {
    Arc::new(
        Compiled::new(
            Schema::builder()
                .element("r", "exhibit*")
                .element("exhibit", "title.date")
                .data_element("title")
                .data_element("date")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap(),
    )
}

/// A store directory holding one real snapshot (and its pristine
/// bytes), plus the registry its counters publish into.
fn seeded_store(tag: &str) -> (Store, axml::obs::Registry, std::path::PathBuf, Vec<u8>, u64) {
    let c = exchange_compiled();
    let dir = std::env::temp_dir().join(format!("axml-robust-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = axml::obs::Registry::new();
    let store = Store::open_with(&dir, &registry).unwrap();

    let cache = SolveCache::unpublished(64);
    let doc = ITree::elem(
        "r",
        vec![ITree::elem(
            "exhibit",
            vec![
                ITree::data("title", "monet"),
                ITree::func("Get_Date", vec![ITree::data("title", "monet")]),
            ],
        )],
    );
    let mut inv = PureInvoker { compiled: &c, salt: 1 };
    Rewriter::new(&c)
        .with_k(1)
        .with_cache(&cache)
        .rewrite_safe(&doc, &mut inv)
        .unwrap();
    store.persist_cache(&cache, c.fingerprint()).unwrap();
    let pristine = std::fs::read(dir.join(CACHE_SNAPSHOT_FILE)).unwrap();
    assert!(pristine.len() > axml::store::format::HEADER_LEN);
    (store, registry, dir, pristine, c.fingerprint())
}

fn counter(registry: &axml::obs::Registry, name: &str) -> u64 {
    registry.snapshot().counter(name)
}

/// Asserts one mutated snapshot loads as a counted cold miss: zero
/// entries installed, `discarded` reported, the corrupt counter
/// bumped, and the corpse removed so the *next* load is a plain
/// missing-file cold start that is NOT counted as corruption.
fn assert_counted_cold_miss(
    store: &Store,
    registry: &axml::obs::Registry,
    dir: &Path,
    fingerprint: u64,
) -> Result<(), TestCaseError> {
    let before = counter(registry, "store.corrupt_discarded_total");
    let cache = SolveCache::unpublished(64);
    let report = store.load_cache(&cache, fingerprint);
    prop_assert_eq!(report.entries, 0, "no entry may survive corruption");
    prop_assert!(report.discarded);
    prop_assert!(cache.export_entries().is_empty());
    prop_assert_eq!(counter(registry, "store.corrupt_discarded_total"), before + 1);
    prop_assert!(
        !dir.join(CACHE_SNAPSHOT_FILE).exists(),
        "corrupt snapshot must be deleted"
    );
    let again = store.load_cache(&cache, fingerprint);
    prop_assert_eq!(again.entries, 0);
    prop_assert!(!again.discarded, "a missing file is a clean cold start");
    prop_assert_eq!(counter(registry, "store.corrupt_discarded_total"), before + 1);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating the snapshot at *any* offset — inside the header,
    /// inside the payload, one byte short — loads as a counted cold
    /// miss, never a panic.
    #[test]
    fn truncated_snapshot_is_a_counted_cold_miss(offset in 0usize..1_000_000) {
        let (store, registry, dir, pristine, fp) = seeded_store("trunc");
        let cut = offset % pristine.len();
        std::fs::write(dir.join(CACHE_SNAPSHOT_FILE), &pristine[..cut]).unwrap();
        assert_counted_cold_miss(&store, &registry, &dir, fp)?;
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping a single bit *anywhere* — magic, version, fingerprint,
    /// length, checksum, payload — loads as a counted cold miss.
    #[test]
    fn bit_flipped_snapshot_is_a_counted_cold_miss(offset in 0usize..1_000_000, bit in 0u8..8) {
        let (store, registry, dir, pristine, fp) = seeded_store("flip");
        let mut bytes = pristine.clone();
        let at = offset % bytes.len();
        bytes[at] ^= 1 << bit;
        std::fs::write(dir.join(CACHE_SNAPSHOT_FILE), &bytes).unwrap();
        assert_counted_cold_miss(&store, &registry, &dir, fp)?;
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A snapshot from any *other* format version — older or newer —
    /// is discarded, not misinterpreted.
    #[test]
    fn version_skewed_snapshot_is_discarded(version in 0u32..1000) {
        prop_assume!(version != axml::store::format::FORMAT_VERSION);
        let (store, registry, dir, pristine, fp) = seeded_store("ver");
        let mut bytes = pristine.clone();
        bytes[4..8].copy_from_slice(&version.to_le_bytes());
        std::fs::write(dir.join(CACHE_SNAPSHOT_FILE), &bytes).unwrap();
        assert_counted_cold_miss(&store, &registry, &dir, fp)?;
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Loading under any fingerprint other than the one the snapshot
    /// was captured for is a counted cold miss: warm state never
    /// crosses schemas.
    #[test]
    fn foreign_fingerprint_is_a_counted_cold_miss(other in 0u64..u64::MAX) {
        let (store, registry, dir, _pristine, fp) = seeded_store("fp");
        prop_assume!(other != fp);
        assert_counted_cold_miss(&store, &registry, &dir, other)?;
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The matrix file gets the same treatment: a flipped bit means
    /// `load_matrix` returns `None` (negotiation falls back to live
    /// Sec. 6 checks) with the corruption counted.
    #[test]
    fn corrupt_matrix_falls_back_to_live_checks(offset in 0usize..1_000_000, bit in 0u8..8) {
        let dir = std::env::temp_dir().join(format!("axml-robust-mx-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let registry = axml::obs::Registry::new();
        let store = Store::open_with(&dir, &registry).unwrap();
        let schema = Schema::builder()
            .element("r", "title")
            .data_element("title")
            .build()
            .unwrap();
        let matrix =
            CompatMatrix::build(&[("only".to_owned(), schema)], "r", 1, &NoOracle).unwrap();
        store.persist_matrix(&matrix).unwrap();
        let mut bytes = std::fs::read(dir.join(MATRIX_FILE)).unwrap();
        let at = offset % bytes.len();
        // The matrix header's fingerprint field is documented as unused
        // (schemas are pinned per-entry in the payload), so flips there
        // are semantically invisible — every other byte must be caught.
        prop_assume!(!(8..16).contains(&at));
        bytes[at] ^= 1 << bit;
        std::fs::write(dir.join(MATRIX_FILE), &bytes).unwrap();

        let before = counter(&registry, "store.corrupt_discarded_total");
        prop_assert!(store.load_matrix().is_none());
        prop_assert_eq!(counter(&registry, "store.corrupt_discarded_total"), before + 1);
        prop_assert!(!dir.join(MATRIX_FILE).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// An empty directory is a plain cold start: no corruption counted,
/// nothing loaded, nothing created.
#[test]
fn missing_snapshot_is_a_clean_cold_start() {
    let dir = std::env::temp_dir().join(format!("axml-robust-empty-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = axml::obs::Registry::new();
    let store = Store::open_with(&dir, &registry).unwrap();
    let cache = SolveCache::unpublished(8);
    let report = store.load_cache(&cache, 42);
    assert_eq!(report, axml::store::LoadReport::default());
    assert!(store.load_matrix().is_none());
    assert_eq!(counter(&registry, "store.corrupt_discarded_total"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
