//! Round-trip fidelity of the warm-state store (DESIGN.md §11): a
//! solver cache populated by *real* enforcement work, persisted to
//! disk, and reloaded into a fresh cache must be indistinguishable
//! from the original — byte-identical snapshot re-encoding, zero
//! misses on the traffic that populated it, and byte-identical
//! enforcement output. The compatibility matrix round-trips the same
//! way: every verdict and reason survives persistence.

use axml::core::invoke::{InvokeError, Invoker};
use axml::core::rewrite::Rewriter;
use axml::core::solve_cache::SolveCache;
use axml::schema::{
    generate_output_instance, validate, Compiled, GenConfig, ITree, NoOracle, Schema,
};
use axml::store::{encode_entries, CompatMatrix, Store};
use axml_support::hash::fx_hash_one;
use axml_support::rng::SeedableRng;
use std::sync::Arc;

/// Pure invoker: the answer is a function of `(salt, function, params)`
/// alone, so warm and cold runs face identical service behavior.
struct PureInvoker<'c> {
    compiled: &'c Compiled,
    salt: u64,
}

impl Invoker for PureInvoker<'_> {
    fn invoke(&mut self, function: &str, params: &[ITree]) -> Result<Vec<ITree>, InvokeError> {
        let seed = fx_hash_one(&(self.salt, function, format!("{params:?}")));
        let mut rng = axml_support::rng::StdRng::seed_from_u64(seed);
        let output = self.compiled.sig_of(function).output.clone();
        generate_output_instance(self.compiled, &output, &mut rng, &GenConfig::default()).map_err(
            |e| InvokeError {
                function: function.to_owned(),
                message: e.to_string(),
            },
        )
    }
}

fn exchange_compiled() -> Arc<Compiled> {
    Arc::new(
        Compiled::new(
            Schema::builder()
                .element("r", "exhibit*")
                .element("exhibit", "title.date")
                .data_element("title")
                .data_element("date")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap(),
    )
}

fn exhibit(title: &str, intensional: bool) -> ITree {
    let date = if intensional {
        ITree::func("Get_Date", vec![ITree::data("title", title)])
    } else {
        ITree::data("date", "mon")
    };
    ITree::elem("exhibit", vec![ITree::data("title", title), date])
}

fn docs() -> Vec<ITree> {
    vec![
        ITree::elem("r", vec![exhibit("monet", true)]),
        ITree::elem("r", vec![exhibit("rodin", false), exhibit("redon", true)]),
        ITree::elem(
            "r",
            vec![
                exhibit("klimt", true),
                exhibit("goya", true),
                exhibit("miro", false),
            ],
        ),
    ]
}

fn tmp_store(tag: &str) -> (Store, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("axml-roundtrip-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (Store::open(&dir).unwrap(), dir)
}

/// Persist → load → the snapshot re-encodes byte-for-byte, and the
/// reloaded cache answers the original traffic without a single miss,
/// producing byte-identical enforcement output.
#[test]
fn snapshot_roundtrip_is_exact() {
    let c = exchange_compiled();
    let (store, dir) = tmp_store("exact");

    // Populate with real solves.
    let cache = SolveCache::unpublished(128);
    let mut cold_outputs = Vec::new();
    for doc in docs() {
        let mut inv = PureInvoker { compiled: &c, salt: 7 };
        let (out, report) = Rewriter::new(&c)
            .with_k(1)
            .with_cache(&cache)
            .rewrite_safe(&doc, &mut inv)
            .unwrap();
        validate(&out, &c).unwrap();
        cold_outputs.push((out.to_xml().to_xml(), report));
    }
    assert!(cache.stats().misses > 0, "traffic must exercise the solver");

    let written = store.persist_cache(&cache, c.fingerprint()).unwrap();
    assert!(written > 0);

    // Reload into a fresh cache: the exported entry stream must
    // re-encode to the exact same bytes.
    let fresh = SolveCache::unpublished(128);
    let report = store.load_cache(&fresh, c.fingerprint());
    assert!(!report.discarded);
    assert_eq!(report.entries, cache.export_entries().len());
    assert_eq!(
        encode_entries(&fresh.export_entries()),
        encode_entries(&cache.export_entries()),
        "loaded entries must re-encode byte-identically"
    );

    // The warm-from-disk cache replays the traffic with zero misses
    // and byte-identical output.
    for (doc, (cold_xml, cold_report)) in docs().into_iter().zip(&cold_outputs) {
        let mut inv = PureInvoker { compiled: &c, salt: 7 };
        let (out, report) = Rewriter::new(&c)
            .with_k(1)
            .with_cache(&fresh)
            .rewrite_safe(&doc, &mut inv)
            .unwrap();
        assert_eq!(&out.to_xml().to_xml(), cold_xml);
        assert_eq!(&report, cold_report);
    }
    assert_eq!(
        fresh.stats().misses,
        0,
        "a snapshot-warmed cache must not re-solve anything"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A snapshot captured under one schema never leaks into another: a
/// load under a different fingerprint is a clean cold start.
#[test]
fn snapshot_is_pinned_to_its_schema() {
    let c = exchange_compiled();
    let (store, dir) = tmp_store("pinned");
    let cache = SolveCache::unpublished(64);
    let mut inv = PureInvoker { compiled: &c, salt: 3 };
    Rewriter::new(&c)
        .with_k(1)
        .with_cache(&cache)
        .rewrite_safe(&ITree::elem("r", vec![exhibit("monet", true)]), &mut inv)
        .unwrap();
    store.persist_cache(&cache, c.fingerprint()).unwrap();

    let fresh = SolveCache::unpublished(64);
    let report = store.load_cache(&fresh, c.fingerprint() ^ 1);
    assert_eq!(report.entries, 0);
    assert!(report.discarded, "foreign-schema snapshot must be discarded");
    assert!(fresh.export_entries().is_empty());

    let _ = std::fs::remove_dir_all(&dir);
}

/// The compatibility matrix survives persistence verdict-for-verdict,
/// reason-for-reason.
#[test]
fn matrix_roundtrip_preserves_every_verdict() {
    let version = |exhibit_model: &str| -> Schema {
        Schema::builder()
            .element("r", "exhibit*")
            .element("exhibit", exhibit_model)
            .data_element("title")
            .data_element("date")
            .data_element("room")
            .function("Get_Date", "title", "date")
            .build()
            .unwrap()
    };
    let portfolio = vec![
        ("v1".to_owned(), version("title.(Get_Date|date)")),
        ("v2".to_owned(), version("title.date")),
        ("v3".to_owned(), version("title.date.room")),
    ];
    let matrix = CompatMatrix::build(&portfolio, "r", 2, &NoOracle).unwrap();

    let (store, dir) = tmp_store("matrix");
    store.persist_matrix(&matrix).unwrap();
    let loaded = store.load_matrix().expect("persisted matrix reloads");

    assert_eq!(loaded.k(), matrix.k());
    assert_eq!(loaded.root(), matrix.root());
    assert_eq!(
        loaded.names().collect::<Vec<_>>(),
        matrix.names().collect::<Vec<_>>()
    );
    for from in matrix.names() {
        for to in matrix.names() {
            assert_eq!(loaded.can_send(from, to), matrix.can_send(from, to));
            assert_eq!(loaded.reason(from, to), matrix.reason(from, to));
        }
    }
    assert_eq!(loaded.encode(), matrix.encode(), "byte-identical re-encode");

    let _ = std::fs::remove_dir_all(&dir);
}
