//! Partial-read reassembly property tests for the poll engine's
//! incremental [`FrameDecoder`].
//!
//! The readiness loop receives frames in arbitrary fragments — a 13-byte
//! header can arrive one byte per `read`, a payload can straddle any
//! number of reads, and several pipelined frames can land in one. The
//! decoder's contract is *byte-for-byte parity with the blocking reader*:
//! for any byte stream and any split of it into feed chunks, the decoder
//! must produce exactly the frames `wire::read_frame` produces, in order,
//! and terminate with exactly the same typed [`WireError`] — including
//! corrupt prefixes (unknown type bytes, oversized length words) and
//! truncation mid-frame. Streams, corruptions and split boundaries are
//! all derived from seeds via the workspace PRNG, so every failure
//! reproduces from its seed.

use axml::net::wire::{self, Frame, FrameType};
use axml::net::{ChunkAssembler, ChunkProgress, FrameDecoder, WireError};
use axml_support::hash::Fnv64;
use axml_support::rng::{Rng, RngExt, SeedableRng, StdRng};

/// Ground truth: the blocking reader consuming the same bytes from an
/// in-memory cursor. Returns every decoded frame plus the terminal error
/// (`Closed` on a clean end-of-stream between frames).
fn blocking_reference(bytes: &[u8], max: usize) -> (Vec<Frame>, WireError) {
    let mut cursor = std::io::Cursor::new(bytes);
    let mut frames = Vec::new();
    loop {
        match wire::read_frame(&mut cursor, max) {
            Ok(frame) => frames.push(frame),
            Err(e) => return (frames, e),
        }
    }
}

/// Runs the incremental decoder over `bytes` split into `chunks`
/// (lengths summing to `bytes.len()`), then maps its end-of-stream state
/// onto the blocking reader's EOF taxonomy: buffered partial frame →
/// "connection closed mid-frame", empty buffer → `Closed`.
fn decoder_run(bytes: &[u8], max: usize, chunks: &[usize]) -> (Vec<Frame>, WireError) {
    assert_eq!(chunks.iter().sum::<usize>(), bytes.len());
    let mut decoder = FrameDecoder::new(max);
    let mut frames = Vec::new();
    let mut pos = 0usize;
    for &chunk in chunks {
        decoder.feed(&bytes[pos..pos + chunk]);
        pos += chunk;
        loop {
            match decoder.poll_frame() {
                Ok(Some(frame)) => frames.push(frame),
                Ok(None) => break,
                Err(e) => return (frames, e),
            }
        }
    }
    let eof = if decoder.mid_frame() {
        WireError::Io(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-frame".to_owned(),
        )
    } else {
        WireError::Closed
    };
    (frames, eof)
}

const MAX: usize = 4096;
const KINDS: [FrameType; 10] = [
    FrameType::Hello,
    FrameType::Welcome,
    FrameType::Request,
    FrameType::Response,
    FrameType::Fault,
    FrameType::StatsRequest,
    FrameType::StatsResponse,
    FrameType::DocChunkStart,
    FrameType::DocChunk,
    FrameType::DocChunkEnd,
];

fn random_payload(rng: &mut StdRng) -> Vec<u8> {
    let len = *rng
        .choose(&[0usize, 1, 2, 12, 13, 14, 64, 500, 1500, MAX])
        .unwrap();
    let mut payload = Vec::with_capacity(len);
    while payload.len() < len {
        payload.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    payload.truncate(len);
    payload
}

/// A seed-derived wire stream: a few well-formed frames, optionally
/// followed by one corruption (truncation, unknown type byte with a
/// random amount of trailing header, or an oversized length word).
fn random_stream(rng: &mut StdRng) -> Vec<u8> {
    let mut bytes = Vec::new();
    for _ in 0..rng.random_range(0..=5u32) {
        let frame = Frame {
            kind: *rng.choose(&KINDS).unwrap(),
            id: rng.next_u64(),
            payload: random_payload(rng),
        };
        wire::write_frame(&mut bytes, &frame).unwrap();
    }
    match rng.random_range(0..4u32) {
        0 => {} // clean stream
        1 => {
            // Truncate anywhere — possibly mid-header or mid-payload.
            let cut = rng.random_range(0..=bytes.len());
            bytes.truncate(cut);
        }
        2 => {
            // A corrupt prefix: an invalid type byte. How bad it looks
            // depends on how much of the 13-byte header follows — the
            // type byte may only be judged once the header is complete.
            bytes.push(if rng.random_bool(0.5) {
                0x00
            } else {
                rng.random_range(0x08..=0xffu8)
            });
            for _ in 0..rng.random_range(0..=20u32) {
                bytes.push(rng.next_u64() as u8);
            }
        }
        _ => {
            // A valid type byte announcing an over-cap payload: must be
            // rejected from the header alone, before any allocation.
            bytes.push(0x03);
            bytes.extend_from_slice(&rng.next_u64().to_be_bytes());
            let len = rng.random_range(MAX as u32 + 1..=u32::MAX);
            bytes.extend_from_slice(&len.to_be_bytes());
            for _ in 0..rng.random_range(0..=64u32) {
                bytes.push(rng.next_u64() as u8);
            }
        }
    }
    bytes
}

/// Seed-derived read boundaries: several splitting styles, from
/// byte-at-a-time up to one-shot.
fn random_chunks(rng: &mut StdRng, len: usize) -> Vec<usize> {
    let mut chunks = Vec::new();
    let mut left = len;
    match rng.random_range(0..4u32) {
        0 => chunks.extend(std::iter::repeat(1).take(len)),
        1 => {
            if len > 0 {
                chunks.push(len);
            }
        }
        style => {
            let cap = if style == 2 { 7usize } else { 64 };
            while left > 0 {
                let n = rng.random_range(1..=cap.min(left));
                chunks.push(n);
                left -= n;
            }
        }
    }
    chunks
}

#[test]
fn seeded_split_fuzz_matches_blocking_reader() {
    for seed in 0..400u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes = random_stream(&mut rng);
        let chunks = random_chunks(&mut rng, bytes.len());
        let reference = blocking_reference(&bytes, MAX);
        let incremental = decoder_run(&bytes, MAX, &chunks);
        assert_eq!(incremental, reference, "seed {seed} diverged");
    }
}

#[test]
fn every_single_split_of_a_pipelined_stream_matches() {
    let mut bytes = Vec::new();
    wire::write_frame(&mut bytes, &wire::request(1, "<env>hello</env>")).unwrap();
    wire::write_frame(&mut bytes, &wire::response(2, "<env>world</env>")).unwrap();
    wire::write_frame(&mut bytes, &wire::stats_request(3)).unwrap();
    let reference = blocking_reference(&bytes, MAX);
    assert_eq!(reference.0.len(), 3);
    assert_eq!(reference.1, WireError::Closed);
    for cut in 0..=bytes.len() {
        let chunks: Vec<usize> = [cut, bytes.len() - cut]
            .into_iter()
            .filter(|&n| n > 0)
            .collect();
        assert_eq!(
            decoder_run(&bytes, MAX, &chunks),
            reference,
            "split at byte {cut} diverged"
        );
    }
}

#[test]
fn corrupt_prefix_yields_the_same_typed_fault_as_blocking() {
    // A garbage type byte is only judged once the full header arrived:
    // with a complete header both readers say UnknownFrameType...
    let full_header = [0xAAu8; 13];
    let reference = blocking_reference(&full_header, MAX);
    assert_eq!(reference.1, WireError::UnknownFrameType(0xAA));
    assert_eq!(
        decoder_run(&full_header, MAX, &[13]),
        reference,
        "complete corrupt header"
    );
    // ...while a lone garbage byte followed by silence is a truncation,
    // NOT an UnknownFrameType — the stall/EOF taxonomy wins.
    let partial = [0xAAu8; 5];
    let reference = blocking_reference(&partial, MAX);
    assert!(matches!(
        reference.1,
        WireError::Io(std::io::ErrorKind::UnexpectedEof, _)
    ));
    assert_eq!(
        decoder_run(&partial, MAX, &[1, 1, 1, 1, 1]),
        reference,
        "truncated corrupt header"
    );
    // An oversized length word is rejected from the header alone, with
    // the same {len, max} pair, even when fed a byte at a time.
    let mut oversized = vec![0x03];
    oversized.extend_from_slice(&7u64.to_be_bytes());
    oversized.extend_from_slice(&(MAX as u32 + 1).to_be_bytes());
    let reference = blocking_reference(&oversized, MAX);
    assert_eq!(
        reference.1,
        WireError::TooLarge {
            len: MAX + 1,
            max: MAX
        }
    );
    let ones = vec![1usize; oversized.len()];
    assert_eq!(decoder_run(&oversized, MAX, &ones), reference);
}

// ---------------------------------------------------------------------
// Chunk-transfer fuzz: the reassembly taxonomy must be identical no
// matter which reader fed the assembler its frames.
// ---------------------------------------------------------------------

/// A well-formed chunked transfer: Start, consecutive chunks, an End
/// declaring the true count/total/FNV-64 digest.
fn transfer_frames(id: u64, name: &str, data: &[u8], chunk: usize) -> Vec<Frame> {
    let mut frames = vec![wire::doc_chunk_start(id, name)];
    let mut digest = Fnv64::new();
    let mut seq = 0u32;
    for piece in data.chunks(chunk.max(1)) {
        digest.update(piece);
        frames.push(wire::doc_chunk(id, seq, piece));
        seq += 1;
    }
    frames.push(wire::doc_chunk_end(id, seq, data.len() as u64, digest.finish()));
    frames
}

/// Drives one [`ChunkAssembler`] over the chunk-family frames of a
/// decoded stream, collapsing each step to a comparable string — the
/// completed document's bytes are included so payload corruption at a
/// split boundary cannot hide behind an equal-length transcript.
fn assembler_transcript(frames: &[Frame], max_doc: usize) -> Vec<String> {
    let mut asm = ChunkAssembler::new(max_doc);
    frames
        .iter()
        .filter(|f| {
            matches!(
                f.kind,
                FrameType::DocChunkStart | FrameType::DocChunk | FrameType::DocChunkEnd
            )
        })
        .map(|f| match asm.accept(f) {
            Ok(ChunkProgress::Pending) => "pending".to_owned(),
            Ok(ChunkProgress::Drained) => "drained".to_owned(),
            Ok(ChunkProgress::Complete { id, name, bytes }) => {
                format!("complete id={id} name={name} bytes={bytes:?}")
            }
            Err(e) => format!("err: {e}"),
        })
        .collect()
}

/// Seed-derived transfers — clean, reordered, digest-corrupted,
/// truncated-End, miscounted, or over-cap — interleaved with control
/// frames, serialized, split at random read boundaries, and decoded by
/// both readers. Frame parity and assembler-transcript parity must hold
/// for every seed; corrupted variants must end in a typed error.
#[test]
fn seeded_chunk_fuzz_taxonomy_matches_across_readers() {
    for seed in 0..300u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let id = rng.random_range(1..1000u64);
        let len = rng.random_range(0..2000usize);
        let mut data = Vec::with_capacity(len);
        while data.len() < len {
            data.extend_from_slice(&rng.next_u64().to_le_bytes());
        }
        data.truncate(len);
        let chunk = rng.random_range(1..=600usize);
        let mut frames = transfer_frames(id, "fuzz.xml", &data, chunk);
        // Interleave a control frame somewhere mid-transfer: the real
        // reader answers StatsRequest inline without touching the
        // assembler, so the transcript must be unaffected.
        let at = rng.random_range(0..=frames.len());
        frames.insert(at, wire::stats_request(id + 1));
        let max_doc = if rng.random_bool(0.15) {
            // A small cap forces the cumulative TooLarge path.
            rng.random_range(1..=len.max(2))
        } else {
            1 << 20
        };
        let corrupt = rng.random_range(0..5u32);
        let n = frames.len();
        let expect_error = match corrupt {
            1 if n >= 4 => {
                // Swap two interior frames: out-of-sequence chunks, or a
                // Start/End displaced into the middle of the transfer.
                let i = rng.random_range(1..n - 2);
                frames.swap(i, i + 1);
                !matches!(
                    (frames[i].kind, frames[i + 1].kind),
                    (FrameType::StatsRequest, _) | (_, FrameType::StatsRequest)
                )
            }
            2 => {
                // Corrupt the declared digest.
                let end = frames.iter_mut().find(|f| f.kind == FrameType::DocChunkEnd);
                let end = end.expect("transfer has an End");
                let last = end.payload.len() - 1;
                end.payload[last] ^= 0xFF;
                true
            }
            3 => {
                // Truncate the End payload below its fixed 20 bytes.
                let end = frames.iter_mut().find(|f| f.kind == FrameType::DocChunkEnd);
                end.expect("transfer has an End").payload.truncate(19);
                true
            }
            4 => {
                // Declare one chunk too many.
                let end = frames.iter_mut().find(|f| f.kind == FrameType::DocChunkEnd);
                let end = end.expect("transfer has an End");
                let count =
                    u32::from_be_bytes(end.payload[0..4].try_into().unwrap()).wrapping_add(1);
                end.payload[0..4].copy_from_slice(&count.to_be_bytes());
                true
            }
            _ => false,
        };
        let mut bytes = Vec::new();
        for frame in &frames {
            wire::write_frame(&mut bytes, frame).unwrap();
        }
        let (blocking_frames, blocking_end) = blocking_reference(&bytes, MAX);
        let chunks = random_chunks(&mut rng, bytes.len());
        let (decoded_frames, decoded_end) = decoder_run(&bytes, MAX, &chunks);
        assert_eq!(decoded_frames, blocking_frames, "seed {seed}: frames diverged");
        assert_eq!(decoded_end, blocking_end, "seed {seed}: terminal state diverged");

        let reference = assembler_transcript(&blocking_frames, max_doc);
        let incremental = assembler_transcript(&decoded_frames, max_doc);
        assert_eq!(incremental, reference, "seed {seed}: taxonomy diverged");
        let failed = reference.iter().any(|step| step.starts_with("err: "));
        let over_cap = len > max_doc;
        if expect_error || over_cap {
            assert!(
                failed,
                "seed {seed}: corruption (corrupt={corrupt}, cap={max_doc}) went undetected"
            );
        } else {
            assert!(
                reference.iter().any(|s| s.starts_with("complete")),
                "seed {seed}: clean transfer did not complete: {reference:?}"
            );
        }
    }
}

/// The three canonical corruptions pin their exact typed messages — the
/// strings both engines put on the wire, asserted byte-for-byte after a
/// byte-at-a-time decode.
#[test]
fn chunk_corruption_messages_are_pinned() {
    let data = b"0123456789abcdef0123456789abcdef";
    let cases: [(&str, Box<dyn Fn(&mut Vec<Frame>)>, &str); 4] = [
        (
            "out of sequence",
            Box::new(|frames: &mut Vec<Frame>| frames.swap(1, 2)),
            "chunk out of sequence: expected 0, got 1",
        ),
        (
            "bad digest",
            Box::new(|frames: &mut Vec<Frame>| {
                let last = frames.last_mut().unwrap();
                let n = last.payload.len() - 1;
                last.payload[n] ^= 0x01;
            }),
            "chunk digest mismatch",
        ),
        (
            "truncated end",
            Box::new(|frames: &mut Vec<Frame>| {
                frames.last_mut().unwrap().payload.truncate(12);
            }),
            "chunk-end payload must be 20 bytes, got 12",
        ),
        (
            "wrong count",
            Box::new(|frames: &mut Vec<Frame>| {
                let last = frames.last_mut().unwrap();
                last.payload[0..4].copy_from_slice(&9u32.to_be_bytes());
            }),
            "chunk-end declares 9 chunks, received 4",
        ),
    ];
    for (label, corrupt, expected) in cases {
        let mut frames = transfer_frames(7, "pin.xml", data, 8);
        corrupt(&mut frames);
        let mut bytes = Vec::new();
        for frame in &frames {
            wire::write_frame(&mut bytes, frame).unwrap();
        }
        let ones = vec![1usize; bytes.len()];
        let (decoded, _) = decoder_run(&bytes, MAX, &ones);
        let transcript = assembler_transcript(&decoded, 1 << 20);
        let err = transcript
            .iter()
            .find(|s| s.starts_with("err: "))
            .unwrap_or_else(|| panic!("{label}: no error in {transcript:?}"));
        assert!(err.contains(expected), "{label}: {err}");
        // And the blocking path reports the identical message.
        let (blocking, _) = blocking_reference(&bytes, MAX);
        assert_eq!(assembler_transcript(&blocking, 1 << 20), transcript, "{label}");
    }
}

#[test]
fn decoder_errors_are_sticky() {
    let mut decoder = FrameDecoder::new(MAX);
    decoder.feed(&[0xAA; 13]);
    assert_eq!(
        decoder.poll_frame(),
        Err(WireError::UnknownFrameType(0xAA))
    );
    // Feeding perfectly valid frames afterwards must not resurrect the
    // connection: the engine will close it, and until then the decoder
    // keeps reporting the original fault.
    let mut valid = Vec::new();
    wire::write_frame(&mut valid, &wire::request(9, "<env/>")).unwrap();
    decoder.feed(&valid);
    assert_eq!(
        decoder.poll_frame(),
        Err(WireError::UnknownFrameType(0xAA))
    );
}

#[test]
fn decoder_releases_oversized_buffers_between_frames() {
    let mut decoder = FrameDecoder::new(4 << 20);
    let big = Frame {
        kind: FrameType::Response,
        id: 1,
        payload: vec![0x42; 1 << 20],
    };
    let mut bytes = Vec::new();
    wire::write_frame(&mut bytes, &big).unwrap();
    decoder.feed(&bytes);
    assert_eq!(decoder.poll_frame().unwrap().unwrap(), big);
    assert_eq!(decoder.poll_frame().unwrap(), None);
    assert_eq!(decoder.buffered_len(), 0);
    // A megabyte-sized scratch buffer must not stay pinned per idle
    // connection — that is the difference between 10k connections at
    // ~KBs each and 10k connections at ~MBs each.
    assert!(
        decoder.capacity() <= 64 * 1024,
        "idle decoder pins {} bytes",
        decoder.capacity()
    );
}
