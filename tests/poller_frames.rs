//! Partial-read reassembly property tests for the poll engine's
//! incremental [`FrameDecoder`].
//!
//! The readiness loop receives frames in arbitrary fragments — a 13-byte
//! header can arrive one byte per `read`, a payload can straddle any
//! number of reads, and several pipelined frames can land in one. The
//! decoder's contract is *byte-for-byte parity with the blocking reader*:
//! for any byte stream and any split of it into feed chunks, the decoder
//! must produce exactly the frames `wire::read_frame` produces, in order,
//! and terminate with exactly the same typed [`WireError`] — including
//! corrupt prefixes (unknown type bytes, oversized length words) and
//! truncation mid-frame. Streams, corruptions and split boundaries are
//! all derived from seeds via the workspace PRNG, so every failure
//! reproduces from its seed.

use axml::net::wire::{self, Frame, FrameType};
use axml::net::{FrameDecoder, WireError};
use axml_support::rng::{Rng, RngExt, SeedableRng, StdRng};

/// Ground truth: the blocking reader consuming the same bytes from an
/// in-memory cursor. Returns every decoded frame plus the terminal error
/// (`Closed` on a clean end-of-stream between frames).
fn blocking_reference(bytes: &[u8], max: usize) -> (Vec<Frame>, WireError) {
    let mut cursor = std::io::Cursor::new(bytes);
    let mut frames = Vec::new();
    loop {
        match wire::read_frame(&mut cursor, max) {
            Ok(frame) => frames.push(frame),
            Err(e) => return (frames, e),
        }
    }
}

/// Runs the incremental decoder over `bytes` split into `chunks`
/// (lengths summing to `bytes.len()`), then maps its end-of-stream state
/// onto the blocking reader's EOF taxonomy: buffered partial frame →
/// "connection closed mid-frame", empty buffer → `Closed`.
fn decoder_run(bytes: &[u8], max: usize, chunks: &[usize]) -> (Vec<Frame>, WireError) {
    assert_eq!(chunks.iter().sum::<usize>(), bytes.len());
    let mut decoder = FrameDecoder::new(max);
    let mut frames = Vec::new();
    let mut pos = 0usize;
    for &chunk in chunks {
        decoder.feed(&bytes[pos..pos + chunk]);
        pos += chunk;
        loop {
            match decoder.poll_frame() {
                Ok(Some(frame)) => frames.push(frame),
                Ok(None) => break,
                Err(e) => return (frames, e),
            }
        }
    }
    let eof = if decoder.mid_frame() {
        WireError::Io(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-frame".to_owned(),
        )
    } else {
        WireError::Closed
    };
    (frames, eof)
}

const MAX: usize = 4096;
const KINDS: [FrameType; 7] = [
    FrameType::Hello,
    FrameType::Welcome,
    FrameType::Request,
    FrameType::Response,
    FrameType::Fault,
    FrameType::StatsRequest,
    FrameType::StatsResponse,
];

fn random_payload(rng: &mut StdRng) -> Vec<u8> {
    let len = *rng
        .choose(&[0usize, 1, 2, 12, 13, 14, 64, 500, 1500, MAX])
        .unwrap();
    let mut payload = Vec::with_capacity(len);
    while payload.len() < len {
        payload.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    payload.truncate(len);
    payload
}

/// A seed-derived wire stream: a few well-formed frames, optionally
/// followed by one corruption (truncation, unknown type byte with a
/// random amount of trailing header, or an oversized length word).
fn random_stream(rng: &mut StdRng) -> Vec<u8> {
    let mut bytes = Vec::new();
    for _ in 0..rng.random_range(0..=5u32) {
        let frame = Frame {
            kind: *rng.choose(&KINDS).unwrap(),
            id: rng.next_u64(),
            payload: random_payload(rng),
        };
        wire::write_frame(&mut bytes, &frame).unwrap();
    }
    match rng.random_range(0..4u32) {
        0 => {} // clean stream
        1 => {
            // Truncate anywhere — possibly mid-header or mid-payload.
            let cut = rng.random_range(0..=bytes.len());
            bytes.truncate(cut);
        }
        2 => {
            // A corrupt prefix: an invalid type byte. How bad it looks
            // depends on how much of the 13-byte header follows — the
            // type byte may only be judged once the header is complete.
            bytes.push(if rng.random_bool(0.5) {
                0x00
            } else {
                rng.random_range(0x08..=0xffu8)
            });
            for _ in 0..rng.random_range(0..=20u32) {
                bytes.push(rng.next_u64() as u8);
            }
        }
        _ => {
            // A valid type byte announcing an over-cap payload: must be
            // rejected from the header alone, before any allocation.
            bytes.push(0x03);
            bytes.extend_from_slice(&rng.next_u64().to_be_bytes());
            let len = rng.random_range(MAX as u32 + 1..=u32::MAX);
            bytes.extend_from_slice(&len.to_be_bytes());
            for _ in 0..rng.random_range(0..=64u32) {
                bytes.push(rng.next_u64() as u8);
            }
        }
    }
    bytes
}

/// Seed-derived read boundaries: several splitting styles, from
/// byte-at-a-time up to one-shot.
fn random_chunks(rng: &mut StdRng, len: usize) -> Vec<usize> {
    let mut chunks = Vec::new();
    let mut left = len;
    match rng.random_range(0..4u32) {
        0 => chunks.extend(std::iter::repeat(1).take(len)),
        1 => {
            if len > 0 {
                chunks.push(len);
            }
        }
        style => {
            let cap = if style == 2 { 7usize } else { 64 };
            while left > 0 {
                let n = rng.random_range(1..=cap.min(left));
                chunks.push(n);
                left -= n;
            }
        }
    }
    chunks
}

#[test]
fn seeded_split_fuzz_matches_blocking_reader() {
    for seed in 0..400u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes = random_stream(&mut rng);
        let chunks = random_chunks(&mut rng, bytes.len());
        let reference = blocking_reference(&bytes, MAX);
        let incremental = decoder_run(&bytes, MAX, &chunks);
        assert_eq!(incremental, reference, "seed {seed} diverged");
    }
}

#[test]
fn every_single_split_of_a_pipelined_stream_matches() {
    let mut bytes = Vec::new();
    wire::write_frame(&mut bytes, &wire::request(1, "<env>hello</env>")).unwrap();
    wire::write_frame(&mut bytes, &wire::response(2, "<env>world</env>")).unwrap();
    wire::write_frame(&mut bytes, &wire::stats_request(3)).unwrap();
    let reference = blocking_reference(&bytes, MAX);
    assert_eq!(reference.0.len(), 3);
    assert_eq!(reference.1, WireError::Closed);
    for cut in 0..=bytes.len() {
        let chunks: Vec<usize> = [cut, bytes.len() - cut]
            .into_iter()
            .filter(|&n| n > 0)
            .collect();
        assert_eq!(
            decoder_run(&bytes, MAX, &chunks),
            reference,
            "split at byte {cut} diverged"
        );
    }
}

#[test]
fn corrupt_prefix_yields_the_same_typed_fault_as_blocking() {
    // A garbage type byte is only judged once the full header arrived:
    // with a complete header both readers say UnknownFrameType...
    let full_header = [0xAAu8; 13];
    let reference = blocking_reference(&full_header, MAX);
    assert_eq!(reference.1, WireError::UnknownFrameType(0xAA));
    assert_eq!(
        decoder_run(&full_header, MAX, &[13]),
        reference,
        "complete corrupt header"
    );
    // ...while a lone garbage byte followed by silence is a truncation,
    // NOT an UnknownFrameType — the stall/EOF taxonomy wins.
    let partial = [0xAAu8; 5];
    let reference = blocking_reference(&partial, MAX);
    assert!(matches!(
        reference.1,
        WireError::Io(std::io::ErrorKind::UnexpectedEof, _)
    ));
    assert_eq!(
        decoder_run(&partial, MAX, &[1, 1, 1, 1, 1]),
        reference,
        "truncated corrupt header"
    );
    // An oversized length word is rejected from the header alone, with
    // the same {len, max} pair, even when fed a byte at a time.
    let mut oversized = vec![0x03];
    oversized.extend_from_slice(&7u64.to_be_bytes());
    oversized.extend_from_slice(&(MAX as u32 + 1).to_be_bytes());
    let reference = blocking_reference(&oversized, MAX);
    assert_eq!(
        reference.1,
        WireError::TooLarge {
            len: MAX + 1,
            max: MAX
        }
    );
    let ones = vec![1usize; oversized.len()];
    assert_eq!(decoder_run(&oversized, MAX, &ones), reference);
}

#[test]
fn decoder_errors_are_sticky() {
    let mut decoder = FrameDecoder::new(MAX);
    decoder.feed(&[0xAA; 13]);
    assert_eq!(
        decoder.poll_frame(),
        Err(WireError::UnknownFrameType(0xAA))
    );
    // Feeding perfectly valid frames afterwards must not resurrect the
    // connection: the engine will close it, and until then the decoder
    // keeps reporting the original fault.
    let mut valid = Vec::new();
    wire::write_frame(&mut valid, &wire::request(9, "<env/>")).unwrap();
    decoder.feed(&valid);
    assert_eq!(
        decoder.poll_frame(),
        Err(WireError::UnknownFrameType(0xAA))
    );
}

#[test]
fn decoder_releases_oversized_buffers_between_frames() {
    let mut decoder = FrameDecoder::new(4 << 20);
    let big = Frame {
        kind: FrameType::Response,
        id: 1,
        payload: vec![0x42; 1 << 20],
    };
    let mut bytes = Vec::new();
    wire::write_frame(&mut bytes, &big).unwrap();
    decoder.feed(&bytes);
    assert_eq!(decoder.poll_frame().unwrap().unwrap(), big);
    assert_eq!(decoder.poll_frame().unwrap(), None);
    assert_eq!(decoder.buffered_len(), 0);
    // A megabyte-sized scratch buffer must not stay pinned per idle
    // connection — that is the difference between 10k connections at
    // ~KBs each and 10k connections at ~MBs each.
    assert!(
        decoder.capacity() <= 64 * 1024,
        "idle decoder pins {} bytes",
        decoder.capacity()
    );
}
