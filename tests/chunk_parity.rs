//! Chunked wire shipping is observationally identical to single-frame
//! shipping — byte for byte, for every document, chunk size, strategy,
//! and engine.
//!
//! The chunk protocol (DESIGN.md §14) promises that splitting an
//! enforced document into `DocChunkStart`/`DocChunk`/`DocChunkEnd`
//! frames is *pure transport*: the receiver's handler sees exactly the
//! bytes the in-memory streaming enforcer produces, no matter how the
//! chunk boundaries fall. This suite drives the promise:
//!
//! * a property sweeping random intensional newspapers through both
//!   strategies and both network engines at random chunk sizes from one
//!   byte up to past the document length, checking the received bytes
//!   against an in-memory `enforce_stream` run of the same input;
//! * a peer-level matrix case checking `send_document_chunked` stores
//!   the identical document `send_document` (single Request frame)
//!   stores, on both engines;
//! * an ignored spot run shipping a document ≥4× the frame cap through
//!   both engines with sender- and receiver-side buffer accounting — the
//!   bounded-memory witness behind the B15 bench.
//!
//! Failing seeds replay from `regressions/chunk_parity.seeds`.

use axml::core::invoke::{Invoker, ScriptedInvoker};
use axml::core::rewrite::Strategy as RwStrategy;
use axml::core::stream::{enforce_stream, enforce_stream_to, StreamOptions};
use axml::net::wire::{self, WireFault};
use axml::net::{ClientConfig, Handler, IoMode, NetClient, NetServer, ServerConfig};
use axml::peer::{EnforceMode, Peer, Query, RemotePeer};
use axml::schema::{Compiled, ITree, NoOracle, Schema};
use axml::services::{Registry, ServiceDef};
use axml_support::prelude::*;
use std::sync::{Arc, Mutex};

const IO_MODES: [IoMode; 2] = [IoMode::Threads, IoMode::Poll];

fn compiled(root_model: &str) -> Compiled {
    Compiled::new(
        Schema::builder()
            .element("newspaper", root_model)
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .element("exhibit", "title.(Get_Date|date)")
            .data_element("performance")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit|performance)*")
            .function("Get_Date", "title", "date")
            .build()
            .unwrap(),
        &NoOracle,
    )
    .unwrap()
}

/// The paper's (*) and (***) exchange schemas: one keeps calls in place,
/// one forces everything to materialize — the two extremes of how much
/// the enforcement rewrites while the bytes stream into the chunk sink.
const MODELS: [&str; 2] = [
    "title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
    "title.date.temp.(exhibit|performance)*",
];

fn scripted() -> ScriptedInvoker {
    ScriptedInvoker::new()
        .answer("Get_Temp", vec![ITree::data("temp", "15 C")])
        .answer(
            "TimeOut",
            vec![ITree::elem(
                "exhibit",
                vec![ITree::data("title", "Monet"), ITree::data("date", "Mon")],
            )],
        )
        .answer("Get_Date", vec![ITree::data("date", "04/10/2002")])
}

fn text_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("The Daily Moon".to_owned()),
        Just("a & b".to_owned()),
        Just("x<y>z".to_owned()),
        Just("04/10/2002".to_owned()),
        "[a-z]{1,12}".prop_map(|s| s),
    ]
}

fn exhibit_strategy() -> impl Strategy<Value = ITree> {
    (text_strategy(), (0u32..2).prop_map(|b| b == 1)).prop_map(|(t, lazy)| {
        let date = if lazy {
            ITree::func("Get_Date", vec![ITree::data("title", &t)])
        } else {
            ITree::data("date", "Mon")
        };
        ITree::elem("exhibit", vec![ITree::data("title", &t), date])
    })
}

/// Valid-leaning random newspapers — the property ships documents, so
/// most cases must survive enforcement (unenforceable ones are skipped;
/// error parity is `stream_parity`'s job).
fn newspaper_strategy() -> impl Strategy<Value = ITree> {
    let temp = prop_oneof![
        Just(ITree::data("temp", "15 C")),
        Just(ITree::func("Get_Temp", vec![ITree::data("city", "Paris")])),
    ];
    let tail = prop_oneof![
        Just(Vec::new()),
        Just(vec![ITree::func("TimeOut", vec![ITree::text("exhibits")])]),
        prop::collection::vec(exhibit_strategy(), 1..4),
    ];
    (text_strategy(), temp, tail).prop_map(|(title, temp, tail)| {
        let mut children = vec![
            ITree::data("title", &title),
            ITree::data("date", "04/10/2002"),
            temp,
        ];
        children.extend(tail);
        ITree::elem("newspaper", children)
    })
}

/// Records every chunk-shipped document the daemon receives.
struct RecordingStore {
    docs: Mutex<Vec<(String, String)>>,
}

impl Handler for RecordingStore {
    fn handle(&self, _id: u64, _envelope: &str) -> Result<String, WireFault> {
        Ok("<ok/>".to_owned())
    }

    fn handle_document(&self, _id: u64, name: &str, text: &str) -> Result<String, WireFault> {
        self.docs
            .lock()
            .unwrap()
            .push((name.to_owned(), text.to_owned()));
        Ok(format!("<stored bytes=\"{}\"/>", text.len()))
    }
}

fn serve_store(io: IoMode, config: ServerConfig) -> (NetServer, Arc<RecordingStore>, NetClient) {
    let store = Arc::new(RecordingStore {
        docs: Mutex::new(Vec::new()),
    });
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<dyn Handler>,
        ServerConfig { io, ..config },
    )
    .unwrap();
    let client = NetClient::new(server.local_addr(), ClientConfig::default()).unwrap();
    (server, store, client)
}

/// The core parity check: enforce `input` in memory, then enforce the
/// same input *into the wire* at the given chunk size, and require the
/// daemon's handler to have received the identical bytes.
fn assert_wire_parity(
    compiled: &Compiled,
    input: &str,
    strategy: RwStrategy,
    chunk_bytes: usize,
    io: IoMode,
) {
    let opts = StreamOptions {
        strategy,
        ..StreamOptions::default()
    };
    let expected = enforce_stream(compiled, input, &opts, &mut || {
        Box::new(scripted()) as Box<dyn Invoker + Send>
    });
    let Ok((expected, expected_report)) = expected else {
        return; // unenforceable under this schema/strategy: nothing to ship
    };
    let (server, store, client) = serve_store(io, ServerConfig::default());
    let mut invoker = scripted();
    let reply = client
        .send_document_chunked(None, "parity.xml", chunk_bytes, |sink| {
            let opts = StreamOptions {
                strategy,
                ..StreamOptions::default()
            };
            enforce_stream_to(compiled, input, &opts, &mut invoker, sink)
                .map(|_| ())
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
        })
        .unwrap();
    assert!(reply.contains("stored"), "{reply}");
    let docs = store.docs.lock().unwrap();
    assert_eq!(docs.len(), 1);
    assert_eq!(docs[0].0, "parity.xml");
    assert_eq!(
        docs[0].1, expected,
        "chunk-shipped bytes diverge from the in-memory enforcement \
         (chunk_bytes={chunk_bytes}, {io:?}, {strategy:?})"
    );
    assert_eq!(expected_report.bytes_out, expected.len() as u64);
    drop(docs);
    server.shutdown().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random documents × both schemas × both strategies × both engines
    /// × a random chunk size from 1 byte to past the document length:
    /// the received bytes always equal the in-memory enforcement.
    #[test]
    fn chunk_parity(doc in newspaper_strategy(), chunk_seed in 1usize..4096) {
        for model in MODELS {
            let c = compiled(model);
            let input =
                axml::xml::element_to_string(&doc.to_xml(), &axml::xml::WriteOptions::compact());
            // 1 byte, a mid-document split, and past-the-end in one sweep.
            let chunk_bytes = 1 + chunk_seed % (input.len() + 64);
            for strategy in [RwStrategy::Safe, RwStrategy::Possible] {
                for io in IO_MODES {
                    assert_wire_parity(&c, &input, strategy, chunk_bytes, io);
                }
            }
        }
    }
}

/// One-byte chunks are the adversarial extreme: every header/payload
/// boundary in the reassembly path is exercised. Pinned (not seeded) so
/// it runs on every `cargo test`.
#[test]
fn regression_one_byte_chunks_round_trip() {
    let c = compiled(MODELS[0]);
    let input = "<newspaper><title>t</title><date>04/10/2002</date><temp>15 C</temp></newspaper>";
    for io in IO_MODES {
        assert_wire_parity(&c, input, RwStrategy::Safe, 1, io);
    }
}

/// A chunk size far past the document length degenerates to a single
/// `DocChunk` frame — the protocol's smallest legal transfer.
#[test]
fn regression_oversized_chunk_size_degenerates_to_one_chunk() {
    let c = compiled(MODELS[0]);
    let input = "<newspaper><title>t</title><date>04/10/2002</date><temp>15 C</temp></newspaper>";
    for io in IO_MODES {
        assert_wire_parity(&c, input, RwStrategy::Possible, 1 << 20, io);
    }
}

// ---------------------------------------------------------------------
// Peer-level matrix: chunked and single-frame shipping store the same
// document.
// ---------------------------------------------------------------------

fn exchange_vocab() -> Schema {
    Schema::builder()
        .element("newspaper", "title.date.exhibit*")
        .data_element("title")
        .data_element("date")
        .element("exhibit", "title.date")
        .function("Listings", "data", "exhibit*")
        .build()
        .unwrap()
}

/// `send_document` (one Request frame) and `send_document_chunked`
/// (Start/Chunk/End) must leave the receiving peer's repository with the
/// identical document, under both engines.
#[test]
fn peer_ship_matrix_chunked_equals_single_frame() {
    let front = ITree::elem(
        "newspaper",
        vec![
            ITree::data("title", "The Sun"),
            ITree::data("date", "04/10/2002"),
            ITree::elem(
                "exhibit",
                vec![ITree::data("title", "Monet"), ITree::data("date", "Mon")],
            ),
        ],
    );
    let strict = Arc::new(Compiled::new(exchange_vocab(), &NoOracle).unwrap());
    for io in IO_MODES {
        let receiver_peer = Arc::new(
            Peer::new(
                "browser.example.org",
                Arc::clone(&strict),
                Arc::new(Registry::new()),
            )
            .with_enforce_mode(EnforceMode::Streaming),
        );
        let config = axml::net::ServerConfig {
            io,
            ..Default::default()
        };
        let receiver =
            axml::peer::NetPeer::serve(Arc::clone(&receiver_peer), "127.0.0.1:0", config).unwrap();
        let sender = Peer::new(
            "newspaper.example.org",
            Arc::clone(&strict),
            Arc::new(Registry::new()),
        );
        sender.declare(
            ServiceDef::new("Listings", "data", "exhibit*"),
            Query::Children("unused".to_owned()),
        );
        let remote = RemotePeer::connect(receiver.local_addr(), Default::default()).unwrap();

        let (sent, _) = remote
            .send_document(&sender, "front-single", &front, &strict)
            .unwrap();
        let report = remote
            .send_document_chunked(&sender, "front-chunked", &front, &strict, 64)
            .unwrap();
        assert!(!report.fell_back, "both ends speak chunked ({io:?})");
        assert_eq!(report.bytes_out > 0, true, "{io:?}: nothing streamed");

        let single = receiver_peer.repository.load("front-single").unwrap();
        let chunked = receiver_peer.repository.load("front-chunked").unwrap();
        assert_eq!(single, chunked, "{io:?}: stored documents diverge");
        assert_eq!(single, sent, "{io:?}: chunked store differs from the sent doc");
        receiver.shutdown().unwrap();
    }
}

// ---------------------------------------------------------------------
// Bounded-memory witness: a document ≥4× the frame cap.
// ---------------------------------------------------------------------

/// Ships a ~4.2× `DEFAULT_MAX_FRAME` document through both engines in
/// 256 KiB chunks. The sender's enforcement streams straight into the
/// chunk sink (peak buffer far below the document), the receiver
/// reassembles under its cumulative cap and hands the handler the exact
/// bytes, and the reassembly gauge returns to zero. Ignored by default
/// (builds ~17 MB of XML); `scripts/ci.sh` runs it in release mode, and
/// the B15 bench measures the same path.
#[test]
#[ignore = "builds a 17 MB document; run explicitly in release mode"]
fn spot_4x_frame_cap_ships_end_to_end() {
    let c = compiled(MODELS[0]);
    let target = 4 * wire::DEFAULT_MAX_FRAME + wire::DEFAULT_MAX_FRAME / 4;
    let body: String = "lorem ipsum dolor sit amet 0123456789 "
        .chars()
        .cycle()
        .take(1 << 16)
        .collect();
    let mut input = String::with_capacity(target + 4096);
    input.push_str("<newspaper><title>big</title><date>04/10/2002</date><temp>15 C</temp>");
    while input.len() + (1 << 16) + 128 < target {
        input.push_str("<exhibit><title>");
        input.push_str(&body);
        input.push_str("</title><date>Mon</date></exhibit>");
    }
    input.push_str("</newspaper>");
    assert!(input.len() >= 4 * wire::DEFAULT_MAX_FRAME);

    for io in IO_MODES {
        let metrics = axml::obs::Registry::new();
        let (server, store, client) = serve_store(
            io,
            ServerConfig {
                metrics: metrics.clone(),
                ..ServerConfig::default()
            },
        );
        let opts = StreamOptions::default();
        let mut invoker = scripted();
        let mut peak = 0u64;
        let reply = client
            .send_document_chunked(None, "big.xml", 256 << 10, |sink| {
                let rep = enforce_stream_to(&c, &input, &opts, &mut invoker, sink)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
                peak = rep.peak_buffer_bytes;
                Ok(())
            })
            .unwrap();
        assert!(reply.contains("stored"), "{reply}");
        let docs = store.docs.lock().unwrap();
        assert_eq!(docs.len(), 1, "{io:?}");
        assert_eq!(docs[0].1.len(), input.len(), "{io:?}: byte count diverged");
        assert_eq!(docs[0].1, input, "{io:?}: bytes diverged");
        drop(docs);
        // Sender-side bound: the enforcement never buffered anything close
        // to the document — this is what makes >RAM documents shippable.
        assert!(
            peak < wire::DEFAULT_MAX_FRAME as u64 / 4,
            "{io:?}: sender peak buffer {peak} bytes is not bounded"
        );
        // Receiver-side accounting: every payload byte counted, and the
        // reassembly buffer fully released after the hand-off.
        let snap = metrics.snapshot();
        assert_eq!(
            snap.counter("net.chunk.bytes_total"),
            input.len() as u64,
            "{io:?}"
        );
        assert!(snap.counter("net.chunk.frames_total") >= 2 + (input.len() / (256 << 10)) as u64);
        assert_eq!(snap.counter("net.chunk.aborts_total"), 0, "{io:?}");
        assert_eq!(snap.gauge("net.chunk.reassembly_bytes"), 0, "{io:?}");
        server.shutdown().unwrap();
    }
}
