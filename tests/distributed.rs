//! A three-party distributed scenario: the newspaper peer materializes a
//! document whose embedded call is served by *another* peer (the listings
//! provider), in order to satisfy a browser that accepts no intensional
//! content. Exercises RemoteInvoker + Schema Enforcement across two SOAP
//! hops.

use axml::core::rewrite::Rewriter;
use axml::peer::{negotiate, InboundPolicy, Negotiation, Peer, Proposal, Query, RemoteInvoker};
use axml::schema::{validate, Compiled, ITree, NoOracle, Schema};
use axml::services::{Registry, ServiceDef};
use std::sync::Arc;

fn vocab() -> Schema {
    Schema::builder()
        .element("newspaper", "title.date.(Listings|exhibit*)")
        .data_element("title")
        .data_element("date")
        .element("exhibit", "title.date")
        // The listings provider's operation, WSDL-described for everyone.
        .function("Listings", "data", "exhibit*")
        .build()
        .unwrap()
}

fn strict_vocab() -> Schema {
    Schema::builder()
        .element("newspaper", "title.date.exhibit*")
        .data_element("title")
        .data_element("date")
        .element("exhibit", "title.date")
        .function("Listings", "data", "exhibit*")
        .build()
        .unwrap()
}

#[test]
fn cross_peer_materialization() {
    let compiled = Arc::new(Compiled::new(vocab(), &NoOracle).unwrap());

    // Peer B: the listings provider, serving `Listings` over SOAP from its
    // own repository.
    let provider = Arc::new(Peer::new(
        "listings.example.org",
        Arc::clone(&compiled),
        Arc::new(Registry::new()),
    ));
    provider.repository.store(
        "program",
        ITree::elem(
            "listings",
            vec![
                ITree::elem(
                    "exhibit",
                    vec![ITree::data("title", "Monet"), ITree::data("date", "Mon")],
                ),
                ITree::elem(
                    "exhibit",
                    vec![ITree::data("title", "Rodin"), ITree::data("date", "Tue")],
                ),
            ],
        ),
    );
    provider.declare(
        ServiceDef::new("Listings", "data", "exhibit*"),
        Query::Children("program".to_owned()),
    );
    let provider_server = provider.serve();

    // Peer A: the newspaper, holding an intensional front page that calls
    // the provider's service.
    let newspaper = Peer::new(
        "newspaper.example.org",
        Arc::clone(&compiled),
        Arc::new(Registry::new()),
    );
    let front = ITree::elem(
        "newspaper",
        vec![
            ITree::data("title", "The Sun"),
            ITree::data("date", "04/10/2002"),
            ITree::func("Listings", vec![ITree::text("exhibits")]),
        ],
    );
    validate(&front, &compiled).unwrap();

    // The receiver is a browser: the agreed exchange schema is fully
    // extensional. Materializing `Listings` requires the SOAP hop to B.
    let strict = Arc::new(Compiled::new(strict_vocab(), &NoOracle).unwrap());
    let mut rewriter = Rewriter::new(&strict).with_k(1);
    let mut remote = RemoteInvoker {
        caller: &newspaper,
        server: &provider_server,
    };
    let (sent, report) = rewriter.rewrite_safe(&front, &mut remote).unwrap();
    assert_eq!(report.invoked, vec!["Listings".to_owned()]);
    assert_eq!(sent.num_funcs(), 0);
    assert_eq!(sent.children().len(), 4); // title, date, 2 exhibits
    validate(&sent, &strict).unwrap();
    InboundPolicy::RejectFunctions
        .check(std::slice::from_ref(&sent))
        .unwrap();

    provider_server.shutdown().unwrap();
}

#[test]
fn negotiation_then_exchange() {
    // The sender and a browser receiver first negotiate the exchange
    // schema, then the sender ships a conforming document.
    let sender_schema = vocab();
    let proposals = vec![
        Proposal {
            name: "lazy".to_owned(),
            schema: vocab(),
        },
        Proposal {
            name: "extensional".to_owned(),
            schema: strict_vocab(),
        },
    ];
    let outcome = negotiate(
        &{
            let mut s = sender_schema.clone();
            s.root = Some("newspaper".to_owned());
            s
        },
        "newspaper",
        &proposals,
        &InboundPolicy::RejectFunctions,
        1,
        &NoOracle,
    )
    .unwrap();
    let agreed = match outcome {
        Negotiation::Agreed { index, .. } => index,
        other => panic!("negotiation should succeed: {other:?}"),
    };
    assert_eq!(agreed, 1, "the browser forces the extensional schema");
}
