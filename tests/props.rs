//! Property-based tests on the core invariants.
//!
//! * Automata algebra: sampled words of `lang(R)` are accepted by the NFA,
//!   the Glushkov automaton, the subset DFA, the minimized DFA — and
//!   rejected by the complement; random words agree across constructions.
//! * Documents: XML round-trips preserve intensional trees; generated
//!   schema instances validate.
//! * Rewriting soundness: whenever the analysis says *safe*, executing the
//!   plan against adversarial services (which return arbitrary output
//!   instances) always succeeds and yields a conforming document.

use axml::automata::{sample_word, Alphabet, Dfa, Glushkov, Nfa, Regex, SampleConfig};
use axml::core::invoke::Invoker;
use axml::core::rewrite::{RewriteError, Rewriter};
use axml::schema::{generate_instance, validate, Compiled, GenConfig, ITree, NoOracle, Schema};
use axml::xml::parse_document;
use axml_support::prelude::*;
use axml_support::rng::SeedableRng;

/// A strategy producing random regexes over `n` symbols.
fn regex_strategy(n: u32) -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![(0..n).prop_map(Regex::sym), Just(Regex::Epsilon),];
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Regex::seq),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::star),
            inner.clone().prop_map(Regex::plus),
            inner.clone().prop_map(Regex::opt),
            (inner, 0u32..3, 0u32..3).prop_map(|(r, a, b)| Regex::repeat(
                r,
                a.min(a + b),
                Some(a.max(b).max(a))
            )),
        ]
    })
}

/// Random words over `n` symbols.
fn word_strategy(n: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..n, 0..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Words sampled from R are accepted by every construction of R and
    /// rejected by its complement.
    #[test]
    fn sampled_words_accepted_everywhere(re in regex_strategy(4), seed in 0u64..1000) {
        prop_assume!(!re.is_empty_language());
        let n = 4usize;
        let mut rng = axml_support::rng::StdRng::seed_from_u64(seed);
        let w = sample_word(&re, &mut rng, &SampleConfig::default()).unwrap();
        let nfa = Nfa::thompson(&re, n);
        prop_assert!(nfa.accepts(&w));
        let glushkov = Glushkov::new(&re, n).to_nfa();
        prop_assert!(glushkov.accepts(&w));
        let dfa = Dfa::determinize(&nfa);
        prop_assert!(dfa.accepts(&w));
        let complete = dfa.completed(n);
        prop_assert!(complete.minimized().accepts(&w));
        prop_assert!(!complete.complemented().accepts(&w));
    }

    /// All constructions agree on arbitrary words.
    #[test]
    fn constructions_agree(re in regex_strategy(4), w in word_strategy(4)) {
        let n = 4usize;
        let nfa = Nfa::thompson(&re, n);
        let expected = nfa.accepts(&w);
        prop_assert_eq!(Glushkov::new(&re, n).to_nfa().accepts(&w), expected);
        let dfa = Dfa::determinize(&nfa);
        prop_assert_eq!(dfa.accepts(&w), expected);
        let complete = dfa.completed(n);
        prop_assert_eq!(complete.minimized().accepts(&w), expected);
        prop_assert_eq!(!complete.complemented().accepts(&w), expected);
    }

    /// Minimization reaches a fixpoint and preserves equivalence.
    #[test]
    fn minimization_fixpoint(re in regex_strategy(3)) {
        let n = 3usize;
        let complete = Dfa::determinize(&Nfa::thompson(&re, n)).completed(n);
        let min = complete.minimized();
        prop_assert!(min.equivalent(&complete));
        let min2 = min.minimized();
        prop_assert_eq!(min.num_states(), min2.num_states());
    }

    /// Display → parse round-trips the regex language.
    #[test]
    fn regex_display_roundtrip(re in regex_strategy(4), w in word_strategy(4)) {
        let mut ab = Alphabet::new();
        for i in 0..4 {
            ab.intern(&format!("s{i}"));
        }
        let shown = re.display(&ab).to_string();
        let reparsed = Regex::parse(&shown, &mut ab).unwrap();
        let n = 4usize;
        prop_assert_eq!(
            Nfa::thompson(&re, n).accepts(&w),
            Nfa::thompson(&reparsed, n).accepts(&w),
            "languages differ after display/parse: {}", shown
        );
    }
}

/// A strategy for random intensional trees.
fn itree_strategy() -> impl Strategy<Value = ITree> {
    let leaf = prop_oneof![
        "[a-z]{1,6}".prop_map(ITree::Text),
        "[a-z]{1,6}".prop_map(|l| ITree::elem(&l, vec![])),
    ];
    leaf.prop_recursive(3, 20, 4, |inner| {
        prop_oneof![
            ("[a-z]{1,6}", prop::collection::vec(inner.clone(), 0..4))
                .prop_map(|(l, cs)| ITree::elem(&l, cs)),
            ("[A-Z][a-z_]{0,5}", prop::collection::vec(inner, 0..3))
                .prop_map(|(f, ps)| ITree::func(&f, ps)),
        ]
    })
}

/// Merges adjacent text children — adjacent text nodes are
/// indistinguishable in serialized XML, so round-trips normalize them.
fn merge_adjacent_text(t: &ITree) -> ITree {
    match t {
        ITree::Text(_) => t.clone(),
        ITree::Func(f) => {
            let params = f.params.iter().map(merge_adjacent_text).collect();
            ITree::Func(axml::schema::FuncNode {
                params,
                ..f.clone()
            })
        }
        ITree::Elem { label, children } => {
            let mut out: Vec<ITree> = Vec::with_capacity(children.len());
            for c in children {
                let c = merge_adjacent_text(c);
                if let (Some(ITree::Text(prev)), ITree::Text(cur)) = (out.last_mut(), &c) {
                    prev.push_str(cur);
                    continue;
                }
                out.push(c);
            }
            ITree::elem(label, out)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// XML encode/parse round-trips arbitrary intensional trees (up to
    /// text-node merging, which XML cannot represent).
    #[test]
    fn itree_xml_roundtrip(t in itree_strategy()) {
        // Wrap in an element root (bare text/function roots are encoded
        // under a carrier element in documents).
        let doc = ITree::elem("root", vec![t]);
        let xml = doc.to_xml().to_xml();
        let parsed = parse_document(&xml).unwrap();
        let back = ITree::from_xml(&parsed.root).unwrap();
        prop_assert_eq!(back, merge_adjacent_text(&doc));
    }
}

// ---------------------------------------------------------------------------
// Legacy regression corpus, ported from `tests/props.proptest-regressions`
// (the upstream-proptest seed file) into explicit named cases: one `#[test]`
// per recorded seed, pinned to the shrunken counterexample the old harness
// reported. New failures go to `regressions/<property>.seeds` instead.
// ---------------------------------------------------------------------------

/// Seed `cc 0eba0d62…` shrank to `Elem { label: "a", children: [Text("a"),
/// Text("a")] }`: adjacent text children merge in serialized XML, so the
/// round-trip must compare against the normalized tree, not the original.
#[test]
fn regression_roundtrip_merges_adjacent_text_children() {
    let t = ITree::elem(
        "a",
        vec![ITree::Text("a".to_owned()), ITree::Text("a".to_owned())],
    );
    let doc = ITree::elem("root", vec![t]);
    let xml = doc.to_xml().to_xml();
    let parsed = parse_document(&xml).unwrap();
    let back = ITree::from_xml(&parsed.root).unwrap();
    assert_eq!(back, merge_adjacent_text(&doc));
    assert_eq!(
        back,
        ITree::elem("root", vec![ITree::elem("a", vec![ITree::Text("aa".to_owned())])]),
        "the two adjacent text nodes must come back as one"
    );
}

fn paper_compiled() -> Compiled {
    Compiled::new(
        Schema::builder()
            .element("newspaper", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
            .data_element("title")
            .data_element("date")
            .data_element("temp")
            .data_element("city")
            .element("exhibit", "title.(Get_Date|date)")
            .data_element("performance")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit|performance)*")
            .function("Get_Date", "title", "date")
            .build()
            .unwrap(),
        &NoOracle,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random instances of the schema validate against it.
    #[test]
    fn generated_instances_validate(seed in 0u64..10_000) {
        let c = paper_compiled();
        let mut rng = axml_support::rng::StdRng::seed_from_u64(seed);
        let doc = generate_instance(&c, "newspaper", &mut rng, &GenConfig::default()).unwrap();
        validate(&doc, &c).unwrap();
    }
}

/// An invoker that answers every call with a random output instance of the
/// function's declared type — the Def. 4 adversary.
struct AdversaryInvoker<'c> {
    compiled: &'c Compiled,
    rng: axml_support::rng::StdRng,
}

impl Invoker for AdversaryInvoker<'_> {
    fn invoke(
        &mut self,
        function: &str,
        _params: &[ITree],
    ) -> Result<Vec<ITree>, axml::core::invoke::InvokeError> {
        let output = self.compiled.sig_of(function).output.clone();
        axml::schema::generate_output_instance(
            self.compiled,
            &output,
            &mut self.rng,
            &GenConfig::default(),
        )
        .map_err(|e| axml::core::invoke::InvokeError {
            function: function.to_owned(),
            message: e.to_string(),
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// **Soundness of safe rewriting** (the paper's central guarantee):
    /// if the analysis declares a document safe for a target schema, then
    /// executing the strategy succeeds *whatever* the services answer, and
    /// the result validates.
    #[test]
    fn safe_rewriting_sound_under_adversary(seed in 0u64..10_000, k in 1u32..3) {
        // Source documents: random instances of the intensional schema (*).
        let source = paper_compiled();
        let mut rng = axml_support::rng::StdRng::seed_from_u64(seed);
        let doc = generate_instance(&source, "newspaper", &mut rng, &GenConfig::default()).unwrap();

        // Target: schema (**) — known safe for every instance of (*)
        // (Sec. 2 / our Sec. 6 reproduction).
        let target = Compiled::new(
            Schema::builder()
                .element("newspaper", "title.date.temp.(TimeOut|exhibit*)")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.(Get_Date|date)")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let mut rewriter = Rewriter::new(&target).with_k(k);
        match rewriter.analyze_safe(&doc) {
            Ok(_) => {
                let mut adversary = AdversaryInvoker {
                    compiled: &target,
                    rng: axml_support::rng::StdRng::seed_from_u64(seed.wrapping_mul(31)),
                };
                let (out, _report) = rewriter
                    .rewrite_safe(&doc, &mut adversary)
                    .expect("safe rewriting must survive any adversary");
                validate(&out, &target).unwrap();
            }
            Err(RewriteError::NotSafe { .. }) => {
                // Fine: not every random instance is safely rewritable at
                // this k (e.g. deep Get_Date nests); the property only
                // constrains the positive answers.
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }
}
