//! Fleet-scale soak gates (DESIGN.md §10): one seeded world holding a
//! hundred peers, a thousand exchanges driven through the real client,
//! wire, and enforcement stack under the full fault taxonomy — drops,
//! duplicates, delays, resets, busy pushback, symmetric and one-direction
//! partitions, crash-restarts — in virtual time, with every invariant
//! (conformance, typed failures, retry bounds, the
//! `server.requests = ok + faults` and `lookups = hits + misses`
//! accounting identities, per-peer *and* fleet-wide) checked on every
//! run, byte-reproducible from one `u64` seed.
//!
//! To replay a soak by hand:
//!
//! ```text
//! AXML_SOAK_SEED=0xdeadbeef cargo test --test sim_soak replay_env_seed -- --nocapture
//! ```

use axml::schema::ITree;
use axml::sim::{
    offer, run_marketplace, run_soak, FaultPlan, MarketplaceConfig, Mode, Outcome, SoakConfig,
    StrategyKind,
};
use std::time::Duration;

/// The reduced soak (16 peers, 120 exchanges — the ci.sh gate) passes
/// every invariant and replays byte-identically: same seed, same
/// transcript, down to the event-log digest.
#[test]
fn reduced_soak_replays_byte_identically() {
    for seed in [0u64, 3, 0x50a7, 0xdead_beef] {
        let config = SoakConfig::reduced(seed);
        let a = run_soak(&config);
        assert!(
            a.violations.is_empty(),
            "soak seed 0x{seed:x} violated: {:?}\ntranscript tail:\n{}",
            a.violations,
            tail(&a.transcript)
        );
        assert_eq!(a.delivered + a.failed, config.exchanges);
        let b = run_soak(&config);
        assert_eq!(
            a.transcript, b.transcript,
            "soak seed 0x{seed:x} diverged between runs"
        );
    }
}

/// The full gate from the issue: a 100-peer fleet, 1000 exchanges, the
/// complete fault taxonomy, all invariants and both accounting
/// identities fleet-wide — and the whole run reproducible from one seed.
#[test]
fn fleet_soak_100_peers_1000_exchanges_upholds_invariants() {
    let config = SoakConfig::fleet(2026);
    let a = run_soak(&config);
    assert!(
        a.violations.is_empty(),
        "fleet soak violated: {:?}\ntranscript tail:\n{}",
        a.violations,
        tail(&a.transcript)
    );
    assert_eq!(a.delivered + a.failed, 1000);
    assert!(a.delivered > 0, "a mild fault schedule must deliver exchanges");
    assert!(a.failed > 0, "1000 exchanges under faults must fail some");
    // The seed draws the fleet composition; this seed fields all three
    // opponent kinds.
    for kind in ["random", "crashing", "strategic"] {
        assert!(
            a.strategies.iter().any(|s| s.name() == kind),
            "100-peer fleet is missing a {kind} opponent"
        );
    }
    let b = run_soak(&config);
    assert_eq!(a.transcript, b.transcript, "fleet soak diverged between runs");
}

/// The strategic game-graph opponent demonstrably changes an outcome a
/// random opponent would not: same pinned seed, same document, same
/// world — a random fleet delivers, the strategic fleet forces a typed
/// possible-mode failure by answering the worst type-correct word
/// (`apology`) at every fork.
#[test]
fn strategic_adversary_flips_a_random_delivery_into_typed_failure() {
    let doc = ITree::elem("catalog", vec![offer("laptop", Some("Get_Quote"))]);
    let pinned = |strategies: Vec<StrategyKind>| MarketplaceConfig {
        seed: 3,
        plan: FaultPlan::default(),
        mode: Mode::Possible,
        doc: Some(doc.clone()),
        offers: 0,
        strategies,
        k: 3,
        churn: None,
        attempts: 4,
        deadline: Duration::from_secs(5),
    };
    let random = run_marketplace(&pinned(vec![StrategyKind::Random { fault_prob: 0.0 }]));
    let strategic = run_marketplace(&pinned(vec![StrategyKind::Strategic]));
    assert!(random.violations.is_empty(), "{:?}", random.violations);
    assert!(strategic.violations.is_empty(), "{:?}", strategic.violations);
    assert!(
        matches!(random.outcome, Outcome::Delivered { .. }),
        "the random opponent delivers on this pinned seed"
    );
    match &strategic.outcome {
        Outcome::Failed { error } => assert!(
            error.contains("all rewriting branches failed"),
            "strategic opponent must exhaust the rewriter, got: {error}"
        ),
        Outcome::Delivered { .. } => {
            panic!("strategic opponent must not deliver where random does")
        }
    }
}

/// Replays one soak by hand: set `AXML_SOAK_SEED` (decimal or 0x-hex) and
/// run with `--nocapture` to see the reduced-soak transcript of that
/// seed.
#[test]
fn replay_env_seed() {
    let seed = match std::env::var("AXML_SOAK_SEED") {
        Ok(raw) => {
            let raw = raw.trim().replace('_', "");
            match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).expect("AXML_SOAK_SEED: bad hex"),
                None => raw.parse().expect("AXML_SOAK_SEED: bad u64"),
            }
        }
        Err(_) => 7, // no seed requested: still exercise the replay path
    };
    let report = run_soak(&SoakConfig::reduced(seed));
    println!("{}", report.transcript);
    assert!(
        report.violations.is_empty(),
        "soak seed 0x{seed:016x} violated: {:?}",
        report.violations
    );
}

fn tail(transcript: &str) -> String {
    transcript
        .lines()
        .rev()
        .take(30)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect::<Vec<_>>()
        .join("\n")
}
