//! Robustness: malformed inputs never panic, concurrent use is safe.

use axml::schema::{validate_xml_stream, Compiled, NoOracle, Schema};
use axml::services::builtin::{Adversarial, GetTemp};
use axml::services::{Registry, ServiceDef};
use axml::xml::parse_document;
use axml_support::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The XML parser returns errors, never panics, on arbitrary input.
    #[test]
    fn parser_never_panics_on_garbage(input in ".{0,200}") {
        let _ = parse_document(&input);
    }

    /// Mutated well-formed documents also never panic (and reparse either
    /// succeeds or errors cleanly).
    #[test]
    fn parser_never_panics_on_mutations(pos in 0usize..200, byte in 0u8..128) {
        let base = axml::schema::newspaper_example().to_xml().to_pretty_xml();
        let mut bytes = base.into_bytes();
        if pos < bytes.len() {
            bytes[pos] = byte;
        }
        if let Ok(text) = String::from_utf8(bytes) {
            let _ = parse_document(&text);
        }
    }

    /// The streaming validator never panics on arbitrary input either.
    #[test]
    fn stream_validator_never_panics(input in ".{0,200}") {
        let compiled = Compiled::new(
            Schema::builder()
                .element("r", "a*")
                .data_element("a")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap();
        let _ = validate_xml_stream(&input, &compiled);
    }

    /// The schema DSL parser never panics.
    #[test]
    fn dsl_parser_never_panics(input in ".{0,200}") {
        let _ = axml::schema::dsl::parse_schema_dsl(&input);
    }

    /// The path parser never panics.
    #[test]
    fn path_parser_never_panics(input in ".{0,80}") {
        let _ = axml::schema::PathQuery::parse(&input);
    }
}

#[test]
fn concurrent_rewriters_share_one_registry() {
    let compiled = Arc::new(
        Compiled::new(
            Schema::builder()
                .element("newspaper", "title.date.temp.(TimeOut|exhibit*)")
                .data_element("title")
                .data_element("date")
                .data_element("temp")
                .data_element("city")
                .element("exhibit", "title.(Get_Date|date)")
                .data_element("performance")
                .function("Get_Temp", "city", "temp")
                .function("TimeOut", "data", "(exhibit|performance)*")
                .function("Get_Date", "title", "date")
                .build()
                .unwrap(),
            &NoOracle,
        )
        .unwrap(),
    );
    let registry = Arc::new(Registry::new());
    registry.register(
        ServiceDef::new("Get_Temp", "city", "temp").with_fee(1),
        Arc::new(GetTemp::with_defaults()),
    );
    registry.register(
        ServiceDef::new("TimeOut", "data", "(exhibit|performance)*"),
        Arc::new(Adversarial::for_function(
            Arc::clone(&compiled),
            "TimeOut",
            5,
        )),
    );
    registry.register(
        ServiceDef::new("Get_Date", "title", "date"),
        Arc::new(Adversarial::for_function(
            Arc::clone(&compiled),
            "Get_Date",
            6,
        )),
    );

    let threads: Vec<_> = (0..8)
        .map(|_| {
            let compiled = Arc::clone(&compiled);
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                let mut rewriter = axml::core::rewrite::Rewriter::new(&compiled).with_k(2);
                for _ in 0..20 {
                    let mut invoker = registry.invoker(None);
                    let (out, report) = rewriter
                        .rewrite_safe(&axml::schema::newspaper_example(), &mut invoker)
                        .expect("safe rewriting");
                    assert!(axml::schema::validate(&out, &compiled).is_ok());
                    assert!(report.invoked.contains(&"Get_Temp".to_owned()));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // Accounting saw every call exactly once: 8 threads × 20 iterations.
    let stats = registry.stats();
    assert_eq!(stats.calls["Get_Temp"], 160);
    assert_eq!(stats.fees_cents, 160);
}
