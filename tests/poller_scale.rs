//! Scale smoke tests for the poll engine: thousands of concurrent
//! connections against one daemon, memory boundedness while they idle,
//! Busy backpressure under queue saturation, the fleet-wide accounting
//! identity, and a no-leaked-threads shutdown regression covering the
//! poller shard threads.
//!
//! The connection count defaults to 5000 (the acceptance floor) and
//! scales with `AXML_SCALE_CONNS` — set it lower on constrained CI
//! runners, higher to probe the 10k regime (each connection costs two
//! file descriptors, one per side of the loopback socket).

#![cfg(unix)]

use axml::net::{wire, IoMode, NetServer, ServerConfig};
use axml::obs::Snapshot;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn scale_conns() -> usize {
    std::env::var("AXML_SCALE_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5000)
}

/// A poll-mode echo daemon publishing into its own registry, so scrapes
/// are isolated from every other test in this binary.
fn echo_daemon(config: ServerConfig) -> NetServer {
    NetServer::bind(
        "127.0.0.1:0",
        Arc::new(|_id: u64, envelope: &str| Ok(envelope.to_owned())),
        config,
    )
    .unwrap()
}

fn poll_config() -> ServerConfig {
    let metrics = axml::obs::Registry::new();
    axml::obs::register_catalogue(&metrics);
    ServerConfig {
        io: IoMode::Poll,
        metrics,
        ..Default::default()
    }
}

/// Scrapes the daemon's metric snapshot over an existing connection.
fn scrape(stream: &mut TcpStream, id: u64) -> Snapshot {
    wire::write_frame(stream, &wire::stats_request(id)).unwrap();
    let frame = wire::read_frame(stream, wire::DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(frame.kind, wire::FrameType::StatsResponse);
    Snapshot::parse_json(std::str::from_utf8(&frame.payload).unwrap()).unwrap()
}

fn counter(snap: &Snapshot, name: &str) -> u64 {
    *snap
        .counters
        .get(name)
        .unwrap_or_else(|| panic!("scrape missing counter {name}"))
}

fn gauge(snap: &Snapshot, name: &str) -> i64 {
    *snap
        .gauges
        .get(name)
        .unwrap_or_else(|| panic!("scrape missing gauge {name}"))
}

/// requests = ok + faults, scraped live from the daemon itself.
fn assert_identity(snap: &Snapshot) {
    assert_eq!(
        counter(snap, "server.requests_total"),
        counter(snap, "server.responses_ok_total") + counter(snap, "server.faults_total"),
        "accounting identity violated"
    );
}

#[test]
fn poll_daemon_sustains_thousands_of_idle_connections() {
    let n = scale_conns();
    let daemon = echo_daemon(poll_config());
    let addr = daemon.local_addr();

    // Open the fleet in listener-backlog-sized batches, writing the Hello
    // immediately so the shards drain the accept queue while we connect.
    let mut conns: Vec<TcpStream> = Vec::with_capacity(n);
    for batch in 0..n.div_ceil(128) {
        for _ in 0..128.min(n - batch * 128) {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            stream
                .set_write_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            wire::write_frame(&mut stream, &wire::hello("scale-client")).unwrap();
            conns.push(stream);
        }
    }
    // Second pass: collect every Welcome. The daemon now holds n live,
    // handshaken, idle connections.
    for stream in &mut conns {
        let back = wire::read_frame(stream, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, wire::FrameType::Welcome);
    }

    let snap = scrape(&mut conns[0], 1);
    let live = gauge(&snap, "server.poll.connections");
    assert!(
        live >= n as i64,
        "daemon reports {live} live connections, expected >= {n}"
    );
    // Idle connections must not pin buffers: the fleet-wide receive
    // buffer gauge stays bounded by per-shard scratch, nowhere near
    // O(n) — this is what makes the 10k regime affordable.
    let buffered = gauge(&snap, "server.poll.buffer_bytes");
    assert!(
        buffered < 256 * 1024,
        "{n} idle connections pin {buffered} buffered bytes"
    );

    // A sparse subset goes active while the rest idle: every request is
    // answered, ids correlate, and nobody times out behind the crowd.
    let stride = (n / 32).max(1);
    let mut active = 0u64;
    for i in (0..n).step_by(stride) {
        active += 1;
        let stream = &mut conns[i];
        wire::write_frame(stream, &wire::request(active, "<env>ping</env>")).unwrap();
        let reply = wire::read_frame(stream, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(reply.kind, wire::FrameType::Response);
        assert_eq!(reply.id, active);
        assert_eq!(reply.payload, b"<env>ping</env>");
    }

    let snap = scrape(&mut conns[0], active + 1);
    assert_identity(&snap);
    assert_eq!(counter(&snap, "server.responses_ok_total"), active);
    assert_eq!(
        counter(&snap, "server.faults_total"),
        0,
        "no faults across {n} connections"
    );

    drop(conns);
    daemon.shutdown().unwrap();
}

#[test]
fn queue_saturation_answers_busy_and_keeps_the_identity() {
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
    let entered = Arc::new(AtomicU64::new(0));
    let entered_in_handler = Arc::clone(&entered);
    let metrics = axml::obs::Registry::new();
    axml::obs::register_catalogue(&metrics);
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::new(move |_id: u64, envelope: &str| {
            entered_in_handler.fetch_add(1, Relaxed);
            std::thread::sleep(Duration::from_millis(30));
            Ok(envelope.to_owned())
        }),
        ServerConfig {
            io: IoMode::Poll,
            workers: 1,
            queue: 2,
            shards: 1,
            metrics,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Eight connections each pipeline four requests into a one-worker,
    // two-slot daemon: the overflow must bounce as retryable Busy, the
    // rest must serve, and every request must be answered exactly once.
    let mut conns: Vec<TcpStream> = (0..8)
        .map(|_| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            wire::write_frame(&mut s, &wire::hello("flood")).unwrap();
            let back = wire::read_frame(&mut s, wire::DEFAULT_MAX_FRAME).unwrap();
            assert_eq!(back.kind, wire::FrameType::Welcome);
            s
        })
        .collect();
    let mut next_id = 0u64;
    for stream in &mut conns {
        for _ in 0..4 {
            next_id += 1;
            wire::write_frame(stream, &wire::request(next_id, "<env/>")).unwrap();
        }
    }
    let (mut ok, mut busy) = (0u64, 0u64);
    for stream in &mut conns {
        for _ in 0..4 {
            let reply = wire::read_frame(stream, wire::DEFAULT_MAX_FRAME).unwrap();
            match reply.kind {
                wire::FrameType::Response => ok += 1,
                wire::FrameType::Fault => {
                    let fault = wire::decode_fault(&reply.payload).unwrap();
                    assert_eq!(fault.code, axml::net::FaultCode::Busy);
                    assert!(fault.retryable);
                    busy += 1;
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
    }
    assert_eq!(ok + busy, 32, "every request answered exactly once");
    assert!(busy >= 1, "32 pipelined requests must overflow 1+2 slots");
    assert_eq!(entered.load(Relaxed), ok, "handler ran per served request");

    let snap = scrape(&mut conns[0], 999);
    assert_identity(&snap);
    assert_eq!(counter(&snap, "server.responses_ok_total"), ok);
    assert_eq!(counter(&snap, "server.busy_total"), busy);
    drop(conns);
    server.shutdown().unwrap();
}

/// Threads whose names carry the poll engine's prefix (`/proc` truncates
/// comm to 15 bytes, so match on the prefix only).
fn live_poll_threads() -> usize {
    let Ok(entries) = std::fs::read_dir("/proc/self/task") else {
        return 0; // not Linux: counting is best-effort, test degrades
    };
    entries
        .flatten()
        .filter(|e| {
            std::fs::read_to_string(e.path().join("comm"))
                .map(|comm| comm.trim().starts_with("axml-poll"))
                .unwrap_or(false)
        })
        .count()
}

#[test]
fn shutdown_joins_poller_shard_threads() {
    let baseline = live_poll_threads();
    for round in 0..12 {
        let server = echo_daemon(ServerConfig {
            shards: 2,
            ..poll_config()
        });
        // Leave a live, handshaken connection with a half-written frame
        // in flight: shutdown must still converge, not wait on the peer.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        wire::write_frame(&mut stream, &wire::hello("leak-probe")).unwrap();
        let back = wire::read_frame(&mut stream, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.kind, wire::FrameType::Welcome);
        use std::io::Write as _;
        stream.write_all(&[0x03, 0, 0]).unwrap();
        server.shutdown().unwrap_or_else(|e| panic!("round {round}: {e}"));
    }
    // Other tests in this binary run poll daemons concurrently, so allow
    // slack — but 12 rounds × (2 shards + workers) of leaked threads
    // would be unmistakable.
    let after = live_poll_threads();
    assert!(
        after <= baseline + 4,
        "poll threads grew from {baseline} to {after} across 12 shutdowns"
    );
}
