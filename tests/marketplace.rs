//! A second application domain: an electronics marketplace.
//!
//! Exercises the whole stack on a schema unrelated to the paper's
//! newspaper: function patterns with registry predicates, per-principal
//! ACLs, safe rewriting with patterns in output types, possible rewriting
//! with backtracking, and schema negotiation — showing nothing in the
//! implementation is specific to the running example.

use axml::core::rewrite::Rewriter;
use axml::core::schema_rw::schema_safe_rewrites;
use axml::schema::{validate, Compiled, ITree, Predicate, Schema};
use axml::services::builtin::Adversarial;
use axml::services::{Registry, ServiceDef, ServiceError};
use std::sync::Arc;

/// catalog ::= product+, product ::= name.(Quote|price).(Stock_Check|stock?)
/// The `Quote` pattern accepts any registered, ACL-cleared pricing service.
fn marketplace_schema(product_model: &str) -> Schema {
    Schema::builder()
        .element("catalog", "product+")
        .element("product", product_model)
        .data_element("name")
        .data_element("price")
        .data_element("stock")
        .data_element("sku")
        .pattern(
            "Quote",
            Predicate::And(vec![
                Predicate::External("UDDIF".to_owned()),
                Predicate::External("InACL".to_owned()),
            ]),
            "sku",
            "price",
        )
        .function("Stock_Check", "sku", "stock?")
        .function("Euro_Quote", "sku", "price")
        .root("catalog")
        .build()
        .unwrap()
}

fn catalog() -> ITree {
    let product = |name: &str, sku: &str| {
        ITree::elem(
            "product",
            vec![
                ITree::data("name", name),
                ITree::func("Euro_Quote", vec![ITree::data("sku", sku)]),
                ITree::func("Stock_Check", vec![ITree::data("sku", sku)]),
            ],
        )
    };
    ITree::elem(
        "catalog",
        vec![product("Laptop", "SKU-1"), product("Phone", "SKU-2")],
    )
}

fn registry() -> Arc<Registry> {
    let reg = Registry::new();
    reg.register_fn(ServiceDef::new("Euro_Quote", "sku", "price"), |params| {
        let sku = params
            .first()
            .and_then(|p| p.children().first())
            .and_then(|c| match c {
                ITree::Text(t) => Some(t.as_str()),
                _ => None,
            })
            .ok_or_else(|| ServiceError("expected a sku".to_owned()))?;
        let price = if sku.ends_with('1') { "999" } else { "599" };
        Ok(vec![ITree::data("price", price)])
    });
    reg.register_fn(ServiceDef::new("Stock_Check", "sku", "stock?"), |_| {
        Ok(vec![ITree::data("stock", "42")])
    });
    Arc::new(reg)
}

#[test]
fn pattern_validation_depends_on_principal() {
    let reg = registry();
    reg.grant("buyer", "Euro_Quote");
    let lazy = marketplace_schema("name.(Quote|price).(Stock_Check|stock?)");
    // For the cleared buyer, the embedded Euro_Quote call matches Quote.
    let for_buyer = Compiled::new(lazy.clone(), &reg.oracle(Some("buyer"))).unwrap();
    validate(&catalog(), &for_buyer).unwrap();
    // A stranger has no grant: the call matches no particle.
    let for_stranger = Compiled::new(lazy, &reg.oracle(Some("stranger"))).unwrap();
    assert!(validate(&catalog(), &for_stranger).is_err());
}

#[test]
fn safe_rewriting_materializes_for_the_stranger() {
    let reg = registry();
    let strict = marketplace_schema("name.price.(Stock_Check|stock?)");
    let compiled = Compiled::new(strict, &reg.oracle(Some("stranger"))).unwrap();
    let mut rewriter = Rewriter::new(&compiled).with_k(1);
    let mut invoker = reg.invoker(None);
    let (sent, report) = rewriter.rewrite_safe(&catalog(), &mut invoker).unwrap();
    validate(&sent, &compiled).unwrap();
    // Both quotes were priced; both stock checks may stay intensional.
    assert_eq!(
        report.invoked.iter().filter(|f| *f == "Euro_Quote").count(),
        2
    );
    assert_eq!(sent.num_funcs(), 2, "Stock_Check calls kept");
    // The first product got the SKU-1 price.
    let first = &sent.children()[0];
    assert_eq!(first.children()[1], ITree::data("price", "999"));
}

#[test]
fn fully_extensional_target_needs_possible_rewriting() {
    // stock? output means Stock_Check may return nothing: target
    // name.price.stock is only *possibly* reachable.
    let reg = registry();
    let rigid = marketplace_schema("name.price.stock");
    let compiled = Compiled::new(rigid, &reg.oracle(None)).unwrap();
    let mut rewriter = Rewriter::new(&compiled).with_k(1);
    assert!(rewriter.analyze_safe(&catalog()).is_err());
    let mut invoker = reg.invoker(None);
    let (sent, _) = rewriter.rewrite_possible(&catalog(), &mut invoker).unwrap();
    validate(&sent, &compiled).unwrap();
    assert_eq!(sent.num_funcs(), 0);
}

#[test]
fn optional_stock_is_safe() {
    // name.price.stock? tolerates the empty Stock_Check answer: safe.
    let reg = registry();
    let tolerant = marketplace_schema("name.price.stock?");
    let compiled = Compiled::new(tolerant, &reg.oracle(None)).unwrap();
    let mut rewriter = Rewriter::new(&compiled).with_k(1);
    rewriter.analyze_safe(&catalog()).unwrap();
    // Execute against an adversary that may return either zero or one
    // stock element — all outcomes must conform.
    for seed in 0..10 {
        let adversary_reg = Registry::new();
        let arc = Arc::new(compiled.clone());
        adversary_reg.register(
            ServiceDef::new("Euro_Quote", "sku", "price"),
            Arc::new(Adversarial::for_function(
                Arc::clone(&arc),
                "Euro_Quote",
                seed,
            )),
        );
        adversary_reg.register(
            ServiceDef::new("Stock_Check", "sku", "stock?"),
            Arc::new(Adversarial::for_function(
                Arc::clone(&arc),
                "Stock_Check",
                seed,
            )),
        );
        let mut invoker = adversary_reg.invoker(None);
        let (sent, _) = rewriter.rewrite_safe(&catalog(), &mut invoker).unwrap();
        validate(&sent, &compiled).unwrap();
    }
}

#[test]
fn schema_level_compatibility_across_the_domain() {
    let lazy = marketplace_schema("name.(Quote|price).(Stock_Check|stock?)");
    let strict = marketplace_schema("name.price.(Stock_Check|stock?)");
    let rigid = marketplace_schema("name.price.stock");
    let reg = registry();
    reg.grant("buyer", "Euro_Quote");
    let oracle = reg.oracle(Some("buyer"));
    let ok = schema_safe_rewrites(&lazy, "catalog", &strict, 1, &oracle).unwrap();
    assert!(ok.compatible(), "{:?}", ok.failures);
    let not_ok = schema_safe_rewrites(&lazy, "catalog", &rigid, 1, &oracle).unwrap();
    assert!(!not_ok.compatible(), "stock? cannot be guaranteed");
}
