//! Randomized cross-check of the automata-based algorithms against the
//! brute-force reference implementations of Defs. 4–5.
//!
//! Schemas are generated with random star-free output types (so the
//! reference enumeration is exact), then random words, random targets and
//! every k in 0..=2 are compared across: eager safe, lazy safe, possible.

use axml::automata::{Dfa, Nfa, Regex, Symbol};
use axml::core::awk::{Awk, AwkLimits};
use axml::core::brute::{brute_possible, brute_safe};
use axml::core::possible::PossibleGame;
use axml::core::safe::{complement_of, BuildMode, SafeGame};
use axml::schema::{Compiled, NoOracle, Schema};
use axml_support::prelude::*;

/// Star-free regex over names drawn from `syms`.
fn starfree_regex(syms: &'static [&'static str]) -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        select(syms).prop_map(str::to_owned),
        Just("ε".to_owned()),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3)
                .prop_map(|parts| format!("({})", parts.join("."))),
            prop::collection::vec(inner.clone(), 1..3)
                .prop_map(|parts| format!("({})", parts.join("|"))),
            inner.prop_map(|r| format!("({r})?")),
        ]
    })
}

const DATA_SYMS: &[&str] = &["a", "b"];
const ALL_SYMS: &[&str] = &["a", "b", "f", "g"];

/// Builds a schema with two data elements and two functions whose output
/// types are the given star-free expressions.
fn build_schema(out_f: &str, out_g: &str) -> Option<Compiled> {
    let schema = Schema::builder()
        .allow_ambiguous()
        .data_element("a")
        .data_element("b")
        .function("f", "", out_f)
        .function("g", "", out_g)
        .build()
        .ok()?;
    Compiled::new(schema, &NoOracle).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn algorithms_match_brute_force(
        out_f in starfree_regex(ALL_SYMS),
        out_g in starfree_regex(DATA_SYMS),
        word_names in prop::collection::vec(select(ALL_SYMS), 0..4),
        target_text in starfree_regex(ALL_SYMS),
        k in 0u32..3,
    ) {
        let Some(compiled) = build_schema(&out_f, &out_g) else {
            return Ok(()); // builder rejected the random model; skip
        };
        let word: Vec<Symbol> = word_names
            .iter()
            .map(|n| compiled.alphabet().lookup(n).unwrap())
            .collect();
        let mut ab = compiled.alphabet().clone();
        let Ok(target) = Regex::parse(&target_text, &mut ab) else {
            return Ok(());
        };
        prop_assume!(ab.len() == compiled.alphabet().len());

        let n = compiled.alphabet().len();
        let awk = Awk::build(&word, &compiled, k, &AwkLimits::default()).unwrap();
        let safe_eager =
            SafeGame::solve(awk.clone(), complement_of(&target, n), BuildMode::Eager).is_safe();
        let safe_lazy =
            SafeGame::solve(awk.clone(), complement_of(&target, n), BuildMode::Lazy).is_safe();
        let possible =
            PossibleGame::solve(awk, Dfa::determinize(&Nfa::thompson(&target, n)))
                .is_possible();

        let safe_ref = brute_safe(&word, &compiled, k, &target)
            .expect("star-free outputs enumerate");
        let possible_ref = brute_possible(&word, &compiled, k, &target)
            .expect("star-free outputs enumerate");

        prop_assert_eq!(safe_eager, safe_ref,
            "eager safe mismatch: w={:?} target={} k={} out_f={} out_g={}",
            word_names, target_text, k, out_f, out_g);
        prop_assert_eq!(safe_lazy, safe_ref,
            "lazy safe mismatch: w={:?} target={} k={}", word_names, target_text, k);
        prop_assert_eq!(possible, possible_ref,
            "possible mismatch: w={:?} target={} k={} out_f={} out_g={}",
            word_names, target_text, k, out_f, out_g);
        // Safe implies possible, always.
        prop_assert!(!safe_ref || possible_ref);
    }
}
