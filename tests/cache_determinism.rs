//! Determinism of the cross-request solver cache and the parallel
//! enforcement path (DESIGN.md §9):
//!
//! * a warm run (every game answered from the [`SolveCache`]) produces
//!   byte-identical XML and an identical [`RewriteReport`] to the cold
//!   run that populated the cache;
//! * parallel subtree enforcement is byte-identical to sequential
//!   execution, for any worker count, warm or cold.
//!
//! Services are modeled by a *pure* invoker — the answer depends only on
//! `(function, params)`, never on call order or thread — so any output
//! divergence can only come from the cache or the parallel merge.

use axml::core::invoke::{InvokeError, Invoker};
use axml::core::rewrite::{RewriteReport, Rewriter};
use axml::core::solve_cache::SolveCache;
use axml::schema::{
    generate_output_instance, validate, Compiled, GenConfig, ITree, NoOracle, Schema,
};
use axml_support::hash::fx_hash_one;
use axml_support::prelude::*;
use axml_support::rng::SeedableRng;

#[allow(unused_imports)] // doc link
use axml::core::rewrite::RewriteError;

/// Answers every call with a random output instance of the function's
/// declared type, drawn from an RNG seeded by `(salt, function, params)`
/// alone: the same call always gets the same answer, on any thread.
struct PureInvoker<'c> {
    compiled: &'c Compiled,
    salt: u64,
}

impl Invoker for PureInvoker<'_> {
    fn invoke(&mut self, function: &str, params: &[ITree]) -> Result<Vec<ITree>, InvokeError> {
        let seed = fx_hash_one(&(self.salt, function, format!("{params:?}")));
        let mut rng = axml_support::rng::StdRng::seed_from_u64(seed);
        let output = self.compiled.sig_of(function).output.clone();
        generate_output_instance(self.compiled, &output, &mut rng, &GenConfig::default()).map_err(
            |e| InvokeError {
                function: function.to_owned(),
                message: e.to_string(),
            },
        )
    }
}

fn boxed<'c>(compiled: &'c Compiled, salt: u64) -> Box<dyn Invoker + Send + 'c> {
    Box::new(PureInvoker { compiled, salt })
}

fn exchange_compiled() -> Compiled {
    Compiled::new(
        Schema::builder()
            .element("r", "exhibit*")
            .element("exhibit", "title.date")
            .data_element("title")
            .data_element("date")
            .function("Get_Date", "title", "date")
            .build()
            .unwrap(),
        &NoOracle,
    )
    .unwrap()
}

/// One root subtree: materialized or intensional date, per the flag.
fn exhibit(title: &str, intensional: bool) -> ITree {
    let date = if intensional {
        ITree::func("Get_Date", vec![ITree::data("title", title)])
    } else {
        ITree::data("date", "mon")
    };
    ITree::elem("exhibit", vec![ITree::data("title", title), date])
}

/// A pure invoker whose *failures* are pure too: a call crashes iff a
/// hash of `(crash_salt, function, params)` says so — a property of what
/// is being called, never of call order, thread, or how many calls came
/// before. Sequential and parallel enforcement therefore face the same
/// failure set, and must report it the same way.
struct CrashingInvoker<'c> {
    inner: PureInvoker<'c>,
    crash_salt: u64,
}

impl Invoker for CrashingInvoker<'_> {
    fn invoke(&mut self, function: &str, params: &[ITree]) -> Result<Vec<ITree>, InvokeError> {
        let die = fx_hash_one(&(self.crash_salt, function, format!("{params:?}"))) % 3 == 0;
        if die {
            return Err(InvokeError {
                function: function.to_owned(),
                message: "service crashed (injected)".to_owned(),
            });
        }
        self.inner.invoke(function, params)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cold, warm, and parallel (warm *and* cold caches, several worker
    /// counts) runs of the same document agree byte for byte, and their
    /// reports are identical.
    #[test]
    fn warm_and_parallel_runs_are_byte_identical(
        exhibits in prop::collection::vec(("[a-z]{1,5}", 0u32..2), 0..6),
        salt in 0u64..1_000,
    ) {
        let c = exchange_compiled();
        let doc = ITree::elem(
            "r",
            exhibits.iter().map(|(t, f)| exhibit(t, *f == 1)).collect(),
        );
        let cache = SolveCache::unpublished(128);
        let run_sequential = |cache: &SolveCache| -> (ITree, RewriteReport) {
            let mut inv = PureInvoker { compiled: &c, salt };
            Rewriter::new(&c)
                .with_k(1)
                .with_cache(cache)
                .rewrite_safe(&doc, &mut inv)
                .unwrap()
        };
        let (cold, cold_rep) = run_sequential(&cache);
        validate(&cold, &c).unwrap();
        let cold_xml = cold.to_xml().to_xml();

        // Warm sequential: every game/DFA now comes from the cache.
        let misses_after_cold = cache.stats().misses;
        let (warm, warm_rep) = run_sequential(&cache);
        prop_assert_eq!(warm.to_xml().to_xml(), cold_xml.clone(), "warm != cold");
        prop_assert_eq!(&warm_rep, &cold_rep);
        prop_assert_eq!(cache.stats().misses, misses_after_cold,
            "a warm run must not rebuild anything");

        // Parallel: warm shared cache and a cold private one, several
        // worker counts — all byte-identical to the sequential run.
        for (workers, cache) in [
            (2, cache.clone()),
            (3, SolveCache::unpublished(128)),
            (8, SolveCache::unpublished(4)),
        ] {
            let mut mk = || boxed(&c, salt);
            let (par, par_rep) = Rewriter::new(&c)
                .with_k(1)
                .with_cache(&cache)
                .rewrite_safe_parallel(&doc, &mut mk, workers)
                .unwrap();
            prop_assert_eq!(par.to_xml().to_xml(), cold_xml.clone(),
                "parallel != sequential at workers={}", workers);
            prop_assert_eq!(&par_rep, &cold_rep);
        }
    }

    /// A crashing service crashes *identically* under sequential and
    /// parallel enforcement: either both deliver the same bytes, or both
    /// fail with the same typed error. Crashes keyed on call count or
    /// thread identity would make retries and parallelism observable —
    /// keyed on `(function, params)` they are not.
    #[test]
    fn crashing_invoker_fails_identically_parallel_and_sequential(
        exhibits in prop::collection::vec(("[a-z]{1,5}", 0u32..2), 1..6),
        salt in 0u64..1_000,
        crash_salt in 0u64..1_000,
    ) {
        let c = exchange_compiled();
        let doc = ITree::elem(
            "r",
            exhibits.iter().map(|(t, f)| exhibit(t, *f == 1)).collect(),
        );
        let sequential = {
            let mut inv = CrashingInvoker {
                inner: PureInvoker { compiled: &c, salt },
                crash_salt,
            };
            Rewriter::new(&c).with_k(1).rewrite_safe(&doc, &mut inv)
        };
        for workers in [1usize, 2, 8] {
            let mut mk = || -> Box<dyn Invoker + Send + '_> {
                Box::new(CrashingInvoker {
                    inner: PureInvoker { compiled: &c, salt },
                    crash_salt,
                })
            };
            let parallel = Rewriter::new(&c)
                .with_k(1)
                .rewrite_safe_parallel(&doc, &mut mk, workers);
            match (&sequential, &parallel) {
                (Ok((s, s_rep)), Ok((p, p_rep))) => {
                    prop_assert_eq!(
                        p.to_xml().to_xml(),
                        s.to_xml().to_xml(),
                        "delivered bytes diverged at workers={}",
                        workers
                    );
                    prop_assert_eq!(p_rep, s_rep);
                }
                (Err(se), Err(pe)) => {
                    prop_assert_eq!(
                        format!("{pe:?}"),
                        format!("{se:?}"),
                        "typed error diverged at workers={}",
                        workers
                    );
                }
                (s, p) => {
                    prop_assert!(
                        false,
                        "outcome diverged at workers={}: sequential ok={}, parallel ok={}",
                        workers,
                        s.is_ok(),
                        p.is_ok()
                    );
                }
            }
        }
    }
}
