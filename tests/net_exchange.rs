//! Loopback integration tests of the TCP peer daemons: concurrent
//! clients, protocol fault injection, and the paper's Fig. 1 newspaper
//! exchange carried end-to-end over sockets with Schema Enforcement on
//! both sides.

use axml::net::{wire, ClientConfig, NetClient, NetServer, ServerConfig};
use axml::obs::{install_sink, uninstall_sink, RingSink, SpanRecord, SpanSink};
use axml::peer::{InboundPolicy, NetInvoker, NetPeer, Peer, Query, RemotePeer};
use axml::schema::{validate, Compiled, ITree, NoOracle, Schema};
use axml::services::{Registry, ServiceDef};
use std::sync::Arc;
use std::time::Duration;

fn vocab() -> Schema {
    Schema::builder()
        .element("newspaper", "title.date.(Listings|exhibit*)")
        .data_element("title")
        .data_element("date")
        .element("exhibit", "title.date")
        .function("Listings", "data", "exhibit*")
        .build()
        .unwrap()
}

fn strict_vocab() -> Schema {
    Schema::builder()
        .element("newspaper", "title.date.exhibit*")
        .data_element("title")
        .data_element("date")
        .element("exhibit", "title.date")
        .function("Listings", "data", "exhibit*")
        .build()
        .unwrap()
}

fn compiled(schema: Schema) -> Arc<Compiled> {
    Arc::new(Compiled::new(schema, &NoOracle).unwrap())
}

/// A listings-provider daemon on an ephemeral loopback port.
fn provider_daemon(config: ServerConfig) -> NetPeer {
    let peer = Arc::new(Peer::new(
        "listings.example.org",
        compiled(vocab()),
        Arc::new(Registry::new()),
    ));
    peer.repository.store(
        "program",
        ITree::elem(
            "listings",
            vec![
                ITree::elem(
                    "exhibit",
                    vec![ITree::data("title", "Monet"), ITree::data("date", "Mon")],
                ),
                ITree::elem(
                    "exhibit",
                    vec![ITree::data("title", "Rodin"), ITree::data("date", "Tue")],
                ),
            ],
        ),
    );
    peer.declare(
        ServiceDef::new("Listings", "data", "exhibit*"),
        Query::Children("program".to_owned()),
    );
    NetPeer::serve(peer, "127.0.0.1:0", config).unwrap()
}

fn front_page() -> ITree {
    ITree::elem(
        "newspaper",
        vec![
            ITree::data("title", "The Sun"),
            ITree::data("date", "04/10/2002"),
            ITree::func("Listings", vec![ITree::text("exhibits")]),
        ],
    )
}

#[test]
fn concurrent_clients_share_one_daemon() {
    let daemon = provider_daemon(ServerConfig::default());
    let addr = daemon.local_addr();
    let caller = Arc::new(Peer::new(
        "caller.example.org",
        compiled(vocab()),
        Arc::new(Registry::new()),
    ));
    let remote = Arc::new(RemotePeer::connect(addr, ClientConfig::default()).unwrap());

    let threads: Vec<_> = (0..8)
        .map(|_| {
            let caller = Arc::clone(&caller);
            let remote = Arc::clone(&remote);
            std::thread::spawn(move || {
                for _ in 0..5 {
                    let result = remote
                        .invoke_service(&caller, "Listings", &[ITree::text("exhibits")])
                        .unwrap();
                    assert_eq!(result.len(), 2);
                    assert!(result.iter().all(|t| t.name() == Some("exhibit")));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let served = daemon
        .stats()
        .served
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(served, 40, "every concurrent request answered");
    daemon.shutdown().unwrap();
}

// The protocol fault tests that used to live here (oversized frame,
// mid-frame stall, malformed envelope) moved to tests/sim_faults.rs:
// the simulated transport exercises the same wire semantics without
// real sockets, real read-timeout sleeps, or scheduler-dependent
// interleavings.

/// Fig. 1 end-to-end over TCP, three parties: the newspaper peer ships
/// its intensional front page to a browser-like receiver daemon under a
/// fully extensional exchange schema, materializing the embedded
/// `Listings` call through the provider daemon on the way out.
#[test]
fn newspaper_exchange_between_daemons() {
    let provider = provider_daemon(ServerConfig::default());

    // The receiver: a daemon that enforces the strict schema and refuses
    // any intensional content (a browser, Sec. 1).
    let receiver_peer = Arc::new(
        Peer::new(
            "browser.example.org",
            compiled(strict_vocab()),
            Arc::new(Registry::new()),
        )
        .with_inbound(InboundPolicy::RejectFunctions),
    );
    let receiver = NetPeer::serve(
        Arc::clone(&receiver_peer),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();

    // The sender: holds the intensional front page.
    let sender = Peer::new(
        "newspaper.example.org",
        compiled(vocab()),
        Arc::new(Registry::new()),
    );
    let front = front_page();
    validate(&front, &sender.compiled).unwrap();

    let to_provider = RemotePeer::connect(provider.local_addr(), ClientConfig::default()).unwrap();
    let to_receiver = RemotePeer::connect(receiver.local_addr(), ClientConfig::default()).unwrap();

    // Shipping the raw intensional document is refused by the receiver's
    // enforcement (sender-side rewriting is skipped because the document
    // already conforms to the *lazy* schema).
    let lazy = compiled(vocab());
    let err = to_receiver
        .send_document(&sender, "front", &front, &lazy)
        .unwrap_err();
    assert!(
        matches!(err, axml::peer::PeerError::Fault(ref f) if f.code.starts_with("Client")),
        "{err}"
    );

    // Under the agreed extensional exchange schema, the sender first
    // materializes `Listings` through the provider daemon, then ships.
    let strict = compiled(strict_vocab());
    let mut invoker = NetInvoker {
        caller: &sender,
        remote: &to_provider,
    };
    let (sent, report) = to_receiver
        .send_document_with(&sender, "front", &front, &strict, &mut invoker)
        .unwrap();
    assert_eq!(report.invoked, vec!["Listings".to_owned()]);
    assert_eq!(sent.num_funcs(), 0);
    assert_eq!(sent.children().len(), 4); // title, date, 2 exhibits

    // The receiver daemon verified and stored the materialized document.
    let stored = receiver_peer.repository.load("front").unwrap();
    assert_eq!(stored, sent);
    validate(&stored, &receiver_peer.compiled).unwrap();

    provider.shutdown().unwrap();
    receiver.shutdown().unwrap();
}

/// All spans carrying `rid` as their request-id field.
fn spans_with_rid<'a>(records: &'a [SpanRecord], rid: &str) -> Vec<&'a SpanRecord> {
    records
        .iter()
        .filter(|r| r.field("rid") == Some(rid))
        .collect()
}

fn named<'a>(spans: &[&'a SpanRecord], name: &str) -> Vec<&'a SpanRecord> {
    spans.iter().copied().filter(|r| r.name == name).collect()
}

/// The Fig. 1 three-party exchange again, this time watched through a
/// ring-buffer span sink: the sender's enforce and ship spans hang off
/// one exchange root, the embedded service call gets its own correlated
/// invoke/validate pair, and the receiver's validate span carries the
/// same request id as the ship that delivered the document.
#[test]
fn exchange_emits_one_correlated_span_tree_per_request() {
    let sink = RingSink::new(4096);
    let dyn_sink: Arc<dyn SpanSink> = sink.clone();
    install_sink(dyn_sink.clone());

    let provider = provider_daemon(ServerConfig::default());
    let receiver_peer = Arc::new(Peer::new(
        "browser.example.org",
        compiled(strict_vocab()),
        Arc::new(Registry::new()),
    ));
    let receiver = NetPeer::serve(
        Arc::clone(&receiver_peer),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let sender = Peer::new(
        "newspaper.example.org",
        compiled(vocab()),
        Arc::new(Registry::new()),
    );
    let to_provider = RemotePeer::connect(provider.local_addr(), ClientConfig::default()).unwrap();
    let to_receiver = RemotePeer::connect(receiver.local_addr(), ClientConfig::default()).unwrap();
    let mut invoker = NetInvoker {
        caller: &sender,
        remote: &to_provider,
    };
    let strict = compiled(strict_vocab());
    to_receiver
        .send_document_with(&sender, "front-traced", &front_page(), &strict, &mut invoker)
        .unwrap();
    uninstall_sink(&dyn_sink);
    let records = sink.records();

    // Parallel tests share the global sink list, so select our exchange
    // by its unique document name, then follow its request id.
    let exchange: Vec<_> = records
        .iter()
        .filter(|r| r.name == "exchange" && r.field("doc") == Some("front-traced"))
        .collect();
    assert_eq!(exchange.len(), 1, "one exchange root per send");
    let exchange = exchange[0];
    assert!(!exchange.error);
    let rid = exchange.field("rid").unwrap().to_owned();

    let tree = spans_with_rid(&records, &rid);
    let enforce = named(&tree, "enforce");
    let ship = named(&tree, "ship");
    let validate = named(&tree, "validate");
    assert_eq!(
        (enforce.len(), ship.len(), validate.len()),
        (1, 1, 1),
        "exactly one enforce/ship/validate per request id"
    );
    let (enforce, ship, validate) = (enforce[0], ship[0], validate[0]);

    // Sender-side children hang off the exchange root...
    assert_eq!(enforce.parent, Some(exchange.id));
    assert_eq!(ship.parent, Some(exchange.id));
    // ...the receiver's validate is a root, correlated by request id only.
    assert_eq!(validate.parent, None);
    assert_eq!(validate.field("peer"), Some("browser.example.org"));
    assert_eq!(validate.field("method"), Some(axml::peer::RECEIVE_METHOD));
    assert!(ship.field("bytes").unwrap().parse::<u64>().unwrap() > 0);

    // Loopback shares one monotonic epoch, so wall order is assertable:
    // enforcement finishes before shipping starts, and the receiver's
    // validation starts after the ship went out.
    assert!(enforce.start_ns + enforce.duration_ns <= ship.start_ns);
    assert!(ship.start_ns <= validate.start_ns);
    assert!(tree.iter().all(|r| !r.error), "clean exchange, clean spans");

    // The materializing Listings call is its own correlated pair: an
    // invoke span nested under enforce, plus the provider daemon's
    // validate span under the same (distinct) request id.
    let invoke: Vec<_> = records
        .iter()
        .filter(|r| r.name == "invoke" && r.parent == Some(enforce.id))
        .collect();
    assert_eq!(invoke.len(), 1, "one service call materialized Listings");
    let invoke = invoke[0];
    assert_eq!(invoke.field("method"), Some("Listings"));
    let invoke_rid = invoke.field("rid").unwrap();
    assert_ne!(invoke_rid, rid, "service call gets its own request id");
    let provider_validate: Vec<_> = named(&spans_with_rid(&records, invoke_rid), "validate");
    assert_eq!(provider_validate.len(), 1);
    assert_eq!(
        provider_validate[0].field("peer"),
        Some("listings.example.org")
    );

    provider.shutdown().unwrap();
    receiver.shutdown().unwrap();
}

/// Failed exchanges still produce one correlated tree per request id,
/// with the failing stage and the exchange root tagged as errors — for
/// the receiver refusing an oversized frame, a saturated (Busy) daemon,
/// and a stalled daemon that never answers.
#[test]
fn failed_exchanges_emit_error_tagged_spans() {
    let sink = RingSink::new(4096);
    let dyn_sink: Arc<dyn SpanSink> = sink.clone();
    install_sink(dyn_sink.clone());

    let sender = Peer::new(
        "newspaper.example.org",
        compiled(vocab()),
        Arc::new(Registry::new()),
    );
    let lazy = compiled(vocab());
    // Already conforms to the lazy schema: enforcement succeeds, the
    // failure is injected at or behind the wire.
    let bulky = ITree::elem(
        "newspaper",
        vec![
            ITree::data("title", &"x".repeat(2048)),
            ITree::data("date", "04/10/2002"),
        ],
    );

    // 1. Receiver caps frames below the envelope size: ship is refused
    //    with TooLarge before any handler runs.
    let tiny = provider_daemon(ServerConfig {
        max_frame: 256,
        ..Default::default()
    });
    let to_tiny = RemotePeer::connect(tiny.local_addr(), ClientConfig::default()).unwrap();
    to_tiny
        .send_document(&sender, "front-toolarge", &bulky, &lazy)
        .unwrap_err();
    tiny.shutdown().unwrap();

    // 2. A saturated daemon: one worker busy, a one-slot queue full, so
    //    the non-retrying sender is bounced with Busy.
    let busy_server = NetServer::bind(
        "127.0.0.1:0",
        Arc::new(|_id: u64, envelope: &str| {
            std::thread::sleep(Duration::from_millis(600));
            Ok(envelope.to_owned())
        }),
        ServerConfig {
            workers: 1,
            queue: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let busy_addr = busy_server.local_addr();
    let occupiers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let client = NetClient::new(busy_addr, ClientConfig::default()).unwrap();
                client.call("<keepalive/>").unwrap();
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(200)); // let both occupy worker+queue
    let to_busy = RemotePeer::connect(
        busy_addr,
        ClientConfig {
            attempts: 1,
            ..Default::default()
        },
    )
    .unwrap();
    to_busy
        .send_document(&sender, "front-busy", &bulky, &lazy)
        .unwrap_err();
    for t in occupiers {
        t.join().unwrap();
    }
    busy_server.shutdown().unwrap();

    // 3. A stalled daemon: handshakes, then never answers; the sender's
    //    read timeout expires mid-exchange.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let stall_addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let hello = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(hello.kind, wire::FrameType::Hello);
        let mut writer = stream;
        wire::write_frame(&mut writer, &wire::welcome("tarpit")).unwrap();
        // Swallow frames without ever answering until the peer gives up.
        while wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).is_ok() {}
    });
    let to_stalled = RemotePeer::connect(
        stall_addr,
        ClientConfig {
            attempts: 1,
            read_timeout: Duration::from_millis(150),
            ..Default::default()
        },
    )
    .unwrap();
    to_stalled
        .send_document(&sender, "front-stalled", &bulky, &lazy)
        .unwrap_err();

    uninstall_sink(&dyn_sink);
    let records = sink.records();
    for doc in ["front-toolarge", "front-busy", "front-stalled"] {
        let exchange: Vec<_> = records
            .iter()
            .filter(|r| r.name == "exchange" && r.field("doc") == Some(doc))
            .collect();
        assert_eq!(exchange.len(), 1, "{doc}: one exchange root");
        let exchange = exchange[0];
        assert!(exchange.error, "{doc}: failed exchange is error-tagged");
        let rid = exchange.field("rid").unwrap();
        let tree = spans_with_rid(&records, rid);
        let enforce = named(&tree, "enforce");
        let ship = named(&tree, "ship");
        assert_eq!((enforce.len(), ship.len()), (1, 1), "{doc}");
        assert!(!enforce[0].error, "{doc}: enforcement itself succeeded");
        assert!(ship[0].error, "{doc}: the wire stage carries the error");
        assert!(
            ship[0].field("error.msg").is_some(),
            "{doc}: failure reason recorded"
        );
        assert!(
            named(&tree, "validate").is_empty(),
            "{doc}: nothing validated — the document never landed"
        );
    }
}
