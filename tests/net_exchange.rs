//! Loopback integration tests of the TCP peer daemons, run as a
//! **transport matrix**: every scenario executes once under
//! `IoMode::Threads` (blocking reader threads) and once under
//! `IoMode::Poll` (the sharded epoll/kqueue readiness loop), and the
//! outcomes are asserted *equal* — identical fault frames byte for byte,
//! identical stats, identical documents landed, identical span-tree
//! shapes. The poll engine is only correct if a client cannot tell the
//! two engines apart.
//!
//! Scenarios: concurrent clients, raw protocol faults (oversized frame,
//! malformed envelope, bad frame type, mid-frame stall, handshake
//! violations), queue-saturation Busy backpressure, the paper's Fig. 1
//! three-party newspaper exchange, and span correlation for clean and
//! failed exchanges.

use axml::net::{wire, ClientConfig, IoMode, NetClient, NetServer, ServerConfig};
use axml::obs::{install_sink, uninstall_sink, RingSink, SpanRecord, SpanSink};
use axml::peer::{InboundPolicy, NetInvoker, NetPeer, Peer, Query, RemotePeer};
use axml::schema::{validate, Compiled, ITree, NoOracle, Schema};
use axml::services::{Registry, ServiceDef};
use std::io::{BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Both engines, in the order the matrix runs them.
const IO_MODES: [IoMode; 2] = [IoMode::Threads, IoMode::Poll];

/// The default config for one side of the matrix.
fn mode_config(io: IoMode) -> ServerConfig {
    ServerConfig {
        io,
        ..Default::default()
    }
}

/// Equal-length tags for per-mode document names: envelope sizes (and so
/// TooLarge byte counts in fault messages) must not depend on the mode's
/// name length.
fn mode_tag(io: IoMode) -> &'static str {
    match io {
        IoMode::Threads => "thr",
        IoMode::Poll => "pol",
    }
}

fn vocab() -> Schema {
    Schema::builder()
        .element("newspaper", "title.date.(Listings|exhibit*)")
        .data_element("title")
        .data_element("date")
        .element("exhibit", "title.date")
        .function("Listings", "data", "exhibit*")
        .build()
        .unwrap()
}

fn strict_vocab() -> Schema {
    Schema::builder()
        .element("newspaper", "title.date.exhibit*")
        .data_element("title")
        .data_element("date")
        .element("exhibit", "title.date")
        .function("Listings", "data", "exhibit*")
        .build()
        .unwrap()
}

fn compiled(schema: Schema) -> Arc<Compiled> {
    Arc::new(Compiled::new(schema, &NoOracle).unwrap())
}

/// A listings-provider daemon on an ephemeral loopback port.
fn provider_daemon(config: ServerConfig) -> NetPeer {
    let peer = Arc::new(Peer::new(
        "listings.example.org",
        compiled(vocab()),
        Arc::new(Registry::new()),
    ));
    peer.repository.store(
        "program",
        ITree::elem(
            "listings",
            vec![
                ITree::elem(
                    "exhibit",
                    vec![ITree::data("title", "Monet"), ITree::data("date", "Mon")],
                ),
                ITree::elem(
                    "exhibit",
                    vec![ITree::data("title", "Rodin"), ITree::data("date", "Tue")],
                ),
            ],
        ),
    );
    peer.declare(
        ServiceDef::new("Listings", "data", "exhibit*"),
        Query::Children("program".to_owned()),
    );
    NetPeer::serve(peer, "127.0.0.1:0", config).unwrap()
}

fn front_page() -> ITree {
    ITree::elem(
        "newspaper",
        vec![
            ITree::data("title", "The Sun"),
            ITree::data("date", "04/10/2002"),
            ITree::func("Listings", vec![ITree::text("exhibits")]),
        ],
    )
}

/// Raw wire client: connect with sane timeouts.
fn dial(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).unwrap();
    wire::set_stream_timeouts(
        &stream,
        Some(Duration::from_secs(10)),
        Some(Duration::from_secs(10)),
    )
    .unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (reader, stream)
}

fn shake(reader: &mut BufReader<TcpStream>, stream: &mut TcpStream) {
    wire::write_frame(stream, &wire::hello("matrix-client")).unwrap();
    let back = wire::read_frame(reader, wire::DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(back.kind, wire::FrameType::Welcome);
}

// ---------------------------------------------------------------------
// Scenario: concurrent clients share one daemon.
// ---------------------------------------------------------------------

/// (served, rejected_busy, faulted) after 8 clients × 5 invokes.
fn concurrent_clients_outcome(io: IoMode) -> (u64, u64, u64) {
    let daemon = provider_daemon(mode_config(io));
    let addr = daemon.local_addr();
    let caller = Arc::new(Peer::new(
        "caller.example.org",
        compiled(vocab()),
        Arc::new(Registry::new()),
    ));
    let remote = Arc::new(RemotePeer::connect(addr, ClientConfig::default()).unwrap());

    let threads: Vec<_> = (0..8)
        .map(|_| {
            let caller = Arc::clone(&caller);
            let remote = Arc::clone(&remote);
            std::thread::spawn(move || {
                for _ in 0..5 {
                    let result = remote
                        .invoke_service(&caller, "Listings", &[ITree::text("exhibits")])
                        .unwrap();
                    assert_eq!(result.len(), 2);
                    assert!(result.iter().all(|t| t.name() == Some("exhibit")));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    use std::sync::atomic::Ordering::Relaxed;
    let out = (
        daemon.stats().served.load(Relaxed),
        daemon.stats().rejected_busy.load(Relaxed),
        daemon.stats().faulted.load(Relaxed),
    );
    daemon.shutdown().unwrap();
    out
}

#[test]
fn matrix_concurrent_clients_share_one_daemon() {
    let outcomes: Vec<_> = IO_MODES
        .iter()
        .map(|&io| concurrent_clients_outcome(io))
        .collect();
    assert_eq!(
        outcomes[0], outcomes[1],
        "threads vs poll: identical serving stats"
    );
    assert_eq!(outcomes[0], (40, 0, 0), "every concurrent request answered");
}

// ---------------------------------------------------------------------
// Scenario: raw protocol faults, compared frame-for-frame.
// ---------------------------------------------------------------------

/// Drives every protocol-fault path over a raw socket and returns each
/// reply frame, labelled. The whole vector must be byte-identical
/// across engines.
fn protocol_fault_outcome(io: IoMode) -> Vec<(&'static str, wire::Frame)> {
    let daemon = provider_daemon(ServerConfig {
        max_frame: 256,
        read_timeout: Duration::from_millis(100),
        ..mode_config(io)
    });
    let addr = daemon.local_addr();
    let mut out = Vec::new();

    // Oversized frame: rejected before allocation, connection closed.
    {
        let (mut reader, mut stream) = dial(addr);
        shake(&mut reader, &mut stream);
        wire::write_frame(&mut stream, &wire::request(1, &"x".repeat(1000))).unwrap();
        out.push((
            "oversized",
            wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap(),
        ));
    }
    // Malformed envelope (invalid UTF-8): typed Client fault, and the
    // connection survives — prove it with a follow-up stats scrape.
    {
        let (mut reader, mut stream) = dial(addr);
        shake(&mut reader, &mut stream);
        let bad = wire::Frame {
            kind: wire::FrameType::Request,
            id: 7,
            payload: vec![0xff, 0xfe, 0x01],
        };
        wire::write_frame(&mut stream, &bad).unwrap();
        out.push((
            "malformed-envelope",
            wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap(),
        ));
        wire::write_frame(&mut stream, &wire::stats_request(8)).unwrap();
        let stats = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        // Snapshot *values* legitimately differ across engines (the poll
        // gauges); the frame kind + id prove the connection stayed up.
        out.push((
            "conn-survives-malformed",
            wire::Frame {
                kind: stats.kind,
                id: stats.id,
                payload: Vec::new(),
            },
        ));
    }
    // Wrong frame type after handshake: BadFrame, connection survives.
    {
        let (mut reader, mut stream) = dial(addr);
        shake(&mut reader, &mut stream);
        let rogue = wire::Frame {
            kind: wire::FrameType::Welcome,
            id: 9,
            payload: b"nope".to_vec(),
        };
        wire::write_frame(&mut stream, &rogue).unwrap();
        out.push((
            "rogue-frame-type",
            wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap(),
        ));
    }
    // Mid-frame stall: half a header then silence → Timeout fault.
    {
        let (mut reader, mut stream) = dial(addr);
        shake(&mut reader, &mut stream);
        stream.write_all(&[0x03, 0, 0, 0]).unwrap();
        stream.flush().unwrap();
        out.push((
            "mid-frame-stall",
            wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap(),
        ));
    }
    // Mid-chunk stall: a transfer opens, one chunk lands, then silence
    // *between* frames — the inbox is empty, but the open transfer makes
    // it a stall, not an idle pooled connection.
    {
        let (mut reader, mut stream) = dial(addr);
        shake(&mut reader, &mut stream);
        wire::write_frame(&mut stream, &wire::doc_chunk_start(11, "stall.xml")).unwrap();
        wire::write_frame(&mut stream, &wire::doc_chunk(11, 0, b"<newspaper>")).unwrap();
        stream.flush().unwrap();
        out.push((
            "mid-chunk-stall",
            wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap(),
        ));
    }
    // Handshake violation: a Request before Hello.
    {
        let (mut reader, mut stream) = dial(addr);
        wire::write_frame(&mut stream, &wire::request(4, "<env/>")).unwrap();
        out.push((
            "request-before-hello",
            wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap(),
        ));
    }
    // Version mismatch in the Hello.
    {
        let (mut reader, mut stream) = dial(addr);
        let mut old = wire::hello("old-client");
        old.payload[4..6].copy_from_slice(&99u16.to_be_bytes());
        wire::write_frame(&mut stream, &old).unwrap();
        out.push((
            "version-mismatch",
            wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap(),
        ));
    }

    daemon.shutdown().unwrap();
    out
}

#[test]
fn matrix_protocol_faults_are_byte_identical() {
    let threads = protocol_fault_outcome(IoMode::Threads);
    let poll = protocol_fault_outcome(IoMode::Poll);
    assert_eq!(
        threads, poll,
        "every fault frame must be byte-identical across engines"
    );
    // Taxonomy spot-checks (on the threads run; poll is equal by now).
    let fault_code = |label: &str| {
        let frame = &threads.iter().find(|(l, _)| *l == label).unwrap().1;
        assert_eq!(frame.kind, wire::FrameType::Fault, "{label}");
        wire::decode_fault(&frame.payload).unwrap()
    };
    assert_eq!(fault_code("oversized").code, axml::net::FaultCode::TooLarge);
    assert_eq!(
        fault_code("malformed-envelope").code,
        axml::net::FaultCode::Client
    );
    assert_eq!(
        fault_code("rogue-frame-type").code,
        axml::net::FaultCode::BadFrame
    );
    assert_eq!(
        fault_code("mid-frame-stall").code,
        axml::net::FaultCode::Timeout
    );
    let chunk_stall = fault_code("mid-chunk-stall");
    assert_eq!(chunk_stall.code, axml::net::FaultCode::Timeout);
    assert!(
        chunk_stall.message.contains("mid-chunk-transfer"),
        "the stall must name the open transfer: {}",
        chunk_stall.message
    );
    assert_eq!(
        fault_code("request-before-hello").code,
        axml::net::FaultCode::BadFrame
    );
    assert_eq!(
        fault_code("version-mismatch").code,
        axml::net::FaultCode::Version
    );
    let survives = threads
        .iter()
        .find(|(l, _)| *l == "conn-survives-malformed")
        .unwrap();
    assert_eq!(survives.1.kind, wire::FrameType::StatsResponse);
}

// ---------------------------------------------------------------------
// Scenario: Busy backpressure when the queue saturates.
// ---------------------------------------------------------------------

/// One worker asleep, a one-slot queue full: the third pipelined request
/// must bounce with a retryable Busy while the first two eventually
/// serve. Returns the three reply frames sorted by request id.
fn busy_backpressure_outcome(io: IoMode) -> Vec<wire::Frame> {
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
    let entered = Arc::new(AtomicU64::new(0));
    let entered_in_handler = Arc::clone(&entered);
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::new(move |_id: u64, envelope: &str| {
            entered_in_handler.fetch_add(1, Relaxed);
            std::thread::sleep(Duration::from_millis(300));
            Ok(envelope.to_owned())
        }),
        ServerConfig {
            workers: 1,
            queue: 1,
            shards: 1, // single shard == single queue: exact Busy parity
            ..mode_config(io)
        },
    )
    .unwrap();
    let (mut reader, mut stream) = dial(server.local_addr());
    shake(&mut reader, &mut stream);
    // Park request 1 *inside* the handler before pipelining 2 and 3, so
    // exactly one queue slot is free: 2 queues, 3 must bounce.
    wire::write_frame(&mut stream, &wire::request(1, "<env/>")).unwrap();
    while entered.load(Relaxed) == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    for id in 2..=3u64 {
        wire::write_frame(&mut stream, &wire::request(id, "<env/>")).unwrap();
    }
    let mut replies: Vec<_> = (0..3)
        .map(|_| wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap())
        .collect();
    replies.sort_by_key(|f| f.id);
    assert_eq!(server.stats().rejected_busy.load(Relaxed), 1);
    assert_eq!(server.stats().served.load(Relaxed), 2);
    server.shutdown().unwrap();
    replies
}

#[test]
fn matrix_busy_backpressure_is_identical() {
    let threads = busy_backpressure_outcome(IoMode::Threads);
    let poll = busy_backpressure_outcome(IoMode::Poll);
    assert_eq!(threads, poll, "Busy replies byte-identical across engines");
    assert_eq!(threads[0].kind, wire::FrameType::Response);
    assert_eq!(threads[1].kind, wire::FrameType::Response);
    assert_eq!(threads[2].kind, wire::FrameType::Fault);
    let busy = wire::decode_fault(&threads[2].payload).unwrap();
    assert_eq!(busy.code, axml::net::FaultCode::Busy);
    assert!(busy.retryable, "Busy is retryable");
}

// ---------------------------------------------------------------------
// Scenario: the paper's Fig. 1 three-party newspaper exchange.
// ---------------------------------------------------------------------

/// Runs the full sender → provider → receiver exchange and returns the
/// shipped document (already asserted identical to what the receiver
/// stored). Must come out identical under both engines.
fn fig1_exchange_outcome(io: IoMode) -> ITree {
    let provider = provider_daemon(mode_config(io));

    // The receiver: a daemon that enforces the strict schema and refuses
    // any intensional content (a browser, Sec. 1).
    let receiver_peer = Arc::new(
        Peer::new(
            "browser.example.org",
            compiled(strict_vocab()),
            Arc::new(Registry::new()),
        )
        .with_inbound(InboundPolicy::RejectFunctions),
    );
    let receiver =
        NetPeer::serve(Arc::clone(&receiver_peer), "127.0.0.1:0", mode_config(io)).unwrap();

    // The sender: holds the intensional front page.
    let sender = Peer::new(
        "newspaper.example.org",
        compiled(vocab()),
        Arc::new(Registry::new()),
    );
    let front = front_page();
    validate(&front, &sender.compiled).unwrap();

    let to_provider = RemotePeer::connect(provider.local_addr(), ClientConfig::default()).unwrap();
    let to_receiver = RemotePeer::connect(receiver.local_addr(), ClientConfig::default()).unwrap();

    // Shipping the raw intensional document is refused by the receiver's
    // enforcement (sender-side rewriting is skipped because the document
    // already conforms to the *lazy* schema).
    let lazy = compiled(vocab());
    let err = to_receiver
        .send_document(&sender, "front", &front, &lazy)
        .unwrap_err();
    assert!(
        matches!(err, axml::peer::PeerError::Fault(ref f) if f.code.starts_with("Client")),
        "{err}"
    );

    // Under the agreed extensional exchange schema, the sender first
    // materializes `Listings` through the provider daemon, then ships.
    let strict = compiled(strict_vocab());
    let mut invoker = NetInvoker {
        caller: &sender,
        remote: &to_provider,
    };
    let (sent, report) = to_receiver
        .send_document_with(&sender, "front", &front, &strict, &mut invoker)
        .unwrap();
    assert_eq!(report.invoked, vec!["Listings".to_owned()]);
    assert_eq!(sent.num_funcs(), 0);
    assert_eq!(sent.children().len(), 4); // title, date, 2 exhibits

    // The receiver daemon verified and stored the materialized document.
    let stored = receiver_peer.repository.load("front").unwrap();
    assert_eq!(stored, sent);
    validate(&stored, &receiver_peer.compiled).unwrap();

    provider.shutdown().unwrap();
    receiver.shutdown().unwrap();
    sent
}

#[test]
fn matrix_newspaper_exchange_between_daemons() {
    let threads = fig1_exchange_outcome(IoMode::Threads);
    let poll = fig1_exchange_outcome(IoMode::Poll);
    assert_eq!(
        threads, poll,
        "the materialized Fig. 1 document is engine-independent"
    );
}

// ---------------------------------------------------------------------
// Scenario: the Fig. 1 exchange when the newspaper outgrows the frame
// cap — single-frame shipping faults, chunked shipping streams through.
// ---------------------------------------------------------------------

/// A provider whose listings are too big to ship inside one frame of the
/// receiver's 4 KiB cap once materialized into the front page.
fn bulky_provider_daemon(config: ServerConfig) -> NetPeer {
    let peer = Arc::new(Peer::new(
        "listings.example.org",
        compiled(vocab()),
        Arc::new(Registry::new()),
    ));
    peer.repository.store(
        "program",
        ITree::elem(
            "listings",
            vec![
                ITree::elem(
                    "exhibit",
                    vec![
                        ITree::data("title", &"Monet retrospective ".repeat(150)),
                        ITree::data("date", "Mon"),
                    ],
                ),
                ITree::elem(
                    "exhibit",
                    vec![
                        ITree::data("title", &"Rodin in bronze ".repeat(150)),
                        ITree::data("date", "Tue"),
                    ],
                ),
            ],
        ),
    );
    peer.declare(
        ServiceDef::new("Listings", "data", "exhibit*"),
        Query::Children("program".to_owned()),
    );
    NetPeer::serve(peer, "127.0.0.1:0", config).unwrap()
}

/// Ships the oversized Fig. 1 front page: single-frame must fault with
/// `TooLarge`, chunked (512-byte chunks, materializing `Listings` over
/// the network mid-stream) must store the full document. Returns the
/// stored document for the cross-engine equality check.
fn oversized_chunked_exchange_outcome(io: IoMode) -> ITree {
    let provider = bulky_provider_daemon(mode_config(io));
    let receiver_peer = Arc::new(Peer::new(
        "browser.example.org",
        compiled(strict_vocab()),
        Arc::new(Registry::new()),
    ));
    let receiver = NetPeer::serve(
        Arc::clone(&receiver_peer),
        "127.0.0.1:0",
        ServerConfig {
            max_frame: 4096,
            ..mode_config(io)
        },
    )
    .unwrap();
    let sender = Peer::new(
        "newspaper.example.org",
        compiled(vocab()),
        Arc::new(Registry::new()),
    );
    let front = front_page();
    let strict = compiled(strict_vocab());
    let to_provider = RemotePeer::connect(provider.local_addr(), ClientConfig::default()).unwrap();
    let to_receiver = RemotePeer::connect(receiver.local_addr(), ClientConfig::default()).unwrap();

    // Single-frame: the materialized envelope blows the 4 KiB cap.
    let mut invoker = NetInvoker {
        caller: &sender,
        remote: &to_provider,
    };
    let err = to_receiver
        .send_document_with(&sender, "front", &front, &strict, &mut invoker)
        .unwrap_err();
    assert!(
        matches!(&err, axml::peer::PeerError::Fault(f) if f.code == "Client.TooLarge"),
        "single-frame shipping of an oversized document must fault TooLarge, got {err}"
    );

    // Chunked: the same document streams through in 512-byte chunks —
    // each far below the cap — while `Listings` materializes remotely.
    let mut invoker = NetInvoker {
        caller: &sender,
        remote: &to_provider,
    };
    let report = to_receiver
        .send_document_chunked_with(&sender, "front", &front, &strict, 512, &mut invoker)
        .unwrap();
    assert!(!report.fell_back, "both daemons speak chunked");
    assert!(
        report.bytes_out as usize > 4096,
        "the enforced document must exceed the frame cap (got {} bytes)",
        report.bytes_out
    );
    let stored = receiver_peer.repository.load("front").unwrap();
    validate(&stored, &receiver_peer.compiled).unwrap();
    assert_eq!(stored.num_funcs(), 0);

    provider.shutdown().unwrap();
    receiver.shutdown().unwrap();
    stored
}

#[test]
fn matrix_oversized_newspaper_ships_chunked_identically() {
    let threads = oversized_chunked_exchange_outcome(IoMode::Threads);
    let poll = oversized_chunked_exchange_outcome(IoMode::Poll);
    assert_eq!(
        threads, poll,
        "the chunk-shipped oversized document is engine-independent"
    );
}

// ---------------------------------------------------------------------
// Scenario: span correlation, clean exchange.
// ---------------------------------------------------------------------

/// All spans carrying `rid` as their request-id field.
fn spans_with_rid<'a>(records: &'a [SpanRecord], rid: &str) -> Vec<&'a SpanRecord> {
    records
        .iter()
        .filter(|r| r.field("rid") == Some(rid))
        .collect()
}

fn named<'a>(spans: &[&'a SpanRecord], name: &str) -> Vec<&'a SpanRecord> {
    spans.iter().copied().filter(|r| r.name == name).collect()
}

/// The comparable shape of a clean exchange's span tree:
/// (name, hangs-off-exchange-root, is-error) triples, sorted.
fn clean_exchange_span_shape(io: IoMode) -> Vec<(String, bool, bool)> {
    let sink = RingSink::new(4096);
    let dyn_sink: Arc<dyn SpanSink> = sink.clone();
    install_sink(dyn_sink.clone());

    let provider = provider_daemon(mode_config(io));
    let receiver_peer = Arc::new(Peer::new(
        "browser.example.org",
        compiled(strict_vocab()),
        Arc::new(Registry::new()),
    ));
    let receiver =
        NetPeer::serve(Arc::clone(&receiver_peer), "127.0.0.1:0", mode_config(io)).unwrap();
    let sender = Peer::new(
        "newspaper.example.org",
        compiled(vocab()),
        Arc::new(Registry::new()),
    );
    let to_provider = RemotePeer::connect(provider.local_addr(), ClientConfig::default()).unwrap();
    let to_receiver = RemotePeer::connect(receiver.local_addr(), ClientConfig::default()).unwrap();
    let mut invoker = NetInvoker {
        caller: &sender,
        remote: &to_provider,
    };
    let strict = compiled(strict_vocab());
    // Parallel tests share the global sink list, so select our exchange
    // by a unique per-mode document name, then follow its request id.
    let doc = format!("front-traced-{}", mode_tag(io));
    to_receiver
        .send_document_with(&sender, &doc, &front_page(), &strict, &mut invoker)
        .unwrap();
    uninstall_sink(&dyn_sink);
    let records = sink.records();

    let exchange: Vec<_> = records
        .iter()
        .filter(|r| r.name == "exchange" && r.field("doc") == Some(doc.as_str()))
        .collect();
    assert_eq!(exchange.len(), 1, "{io}: one exchange root per send");
    let exchange = exchange[0];
    assert!(!exchange.error);
    let rid = exchange.field("rid").unwrap().to_owned();

    let tree = spans_with_rid(&records, &rid);
    let enforce = named(&tree, "enforce");
    let ship = named(&tree, "ship");
    let validate = named(&tree, "validate");
    assert_eq!(
        (enforce.len(), ship.len(), validate.len()),
        (1, 1, 1),
        "{io}: exactly one enforce/ship/validate per request id"
    );
    let (enforce, ship, validate) = (enforce[0], ship[0], validate[0]);

    // Sender-side children hang off the exchange root...
    assert_eq!(enforce.parent, Some(exchange.id));
    assert_eq!(ship.parent, Some(exchange.id));
    // ...the receiver's validate is a root, correlated by request id only.
    assert_eq!(validate.parent, None);
    assert_eq!(validate.field("peer"), Some("browser.example.org"));
    assert_eq!(validate.field("method"), Some(axml::peer::RECEIVE_METHOD));
    assert!(ship.field("bytes").unwrap().parse::<u64>().unwrap() > 0);

    // Loopback shares one monotonic epoch, so wall order is assertable:
    // enforcement finishes before shipping starts, and the receiver's
    // validation starts after the ship went out.
    assert!(enforce.start_ns + enforce.duration_ns <= ship.start_ns);
    assert!(ship.start_ns <= validate.start_ns);
    assert!(
        tree.iter().all(|r| !r.error),
        "{io}: clean exchange, clean spans"
    );

    // The materializing Listings call is its own correlated pair: an
    // invoke span nested under enforce, plus the provider daemon's
    // validate span under the same (distinct) request id.
    let invoke: Vec<_> = records
        .iter()
        .filter(|r| r.name == "invoke" && r.parent == Some(enforce.id))
        .collect();
    assert_eq!(invoke.len(), 1, "{io}: one service call for Listings");
    let invoke = invoke[0];
    assert_eq!(invoke.field("method"), Some("Listings"));
    let invoke_rid = invoke.field("rid").unwrap();
    assert_ne!(invoke_rid, rid, "{io}: service call gets its own rid");
    let provider_validate: Vec<_> = named(&spans_with_rid(&records, invoke_rid), "validate");
    assert_eq!(provider_validate.len(), 1);
    assert_eq!(
        provider_validate[0].field("peer"),
        Some("listings.example.org")
    );

    provider.shutdown().unwrap();
    receiver.shutdown().unwrap();

    let mut shape: Vec<(String, bool, bool)> = tree
        .iter()
        .map(|r| (r.name.clone(), r.parent == Some(exchange.id), r.error))
        .collect();
    shape.sort();
    shape
}

#[test]
fn matrix_exchange_emits_one_correlated_span_tree_per_request() {
    let threads = clean_exchange_span_shape(IoMode::Threads);
    let poll = clean_exchange_span_shape(IoMode::Poll);
    assert_eq!(threads, poll, "span-tree shape is engine-independent");
}

// ---------------------------------------------------------------------
// Scenario: span correlation, failed exchanges.
// ---------------------------------------------------------------------

/// Failed exchanges still produce one correlated tree per request id,
/// with the failing stage and the exchange root tagged as errors — for
/// the receiver refusing an oversized frame, a saturated (Busy) daemon,
/// and a stalled daemon that never answers. Returns, per scenario, the
/// ship span's recorded failure reason for cross-engine comparison.
fn failed_exchange_outcome(io: IoMode) -> Vec<(String, String)> {
    let sink = RingSink::new(4096);
    let dyn_sink: Arc<dyn SpanSink> = sink.clone();
    install_sink(dyn_sink.clone());

    let sender = Peer::new(
        "newspaper.example.org",
        compiled(vocab()),
        Arc::new(Registry::new()),
    );
    let lazy = compiled(vocab());
    // Already conforms to the lazy schema: enforcement succeeds, the
    // failure is injected at or behind the wire.
    let bulky = ITree::elem(
        "newspaper",
        vec![
            ITree::data("title", &"x".repeat(2048)),
            ITree::data("date", "04/10/2002"),
        ],
    );
    let doc = |stem: &str| format!("{stem}-{}", mode_tag(io));

    // 1. Receiver caps frames below the envelope size: ship is refused
    //    with TooLarge before any handler runs.
    let tiny = provider_daemon(ServerConfig {
        max_frame: 256,
        ..mode_config(io)
    });
    let to_tiny = RemotePeer::connect(tiny.local_addr(), ClientConfig::default()).unwrap();
    to_tiny
        .send_document(&sender, &doc("front-toolarge"), &bulky, &lazy)
        .unwrap_err();
    tiny.shutdown().unwrap();

    // 2. A saturated daemon: one worker busy, a one-slot queue full, so
    //    the non-retrying sender is bounced with Busy.
    let busy_server = NetServer::bind(
        "127.0.0.1:0",
        Arc::new(|_id: u64, envelope: &str| {
            std::thread::sleep(Duration::from_millis(600));
            Ok(envelope.to_owned())
        }),
        ServerConfig {
            workers: 1,
            queue: 1,
            shards: 1,
            ..mode_config(io)
        },
    )
    .unwrap();
    let busy_addr = busy_server.local_addr();
    let occupiers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let client = NetClient::new(busy_addr, ClientConfig::default()).unwrap();
                client.call("<keepalive/>").unwrap();
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(200)); // let both occupy worker+queue
    let to_busy = RemotePeer::connect(
        busy_addr,
        ClientConfig {
            attempts: 1,
            ..Default::default()
        },
    )
    .unwrap();
    to_busy
        .send_document(&sender, &doc("front-busy"), &bulky, &lazy)
        .unwrap_err();
    for t in occupiers {
        t.join().unwrap();
    }
    busy_server.shutdown().unwrap();

    // 3. A stalled daemon: handshakes, then never answers; the sender's
    //    read timeout expires mid-exchange. (Client-side failure — the
    //    tarpit is a raw listener, not a NetServer — but it must look
    //    the same to senders regardless of what serves everything else.)
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let stall_addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let hello = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(hello.kind, wire::FrameType::Hello);
        let mut writer = stream;
        wire::write_frame(&mut writer, &wire::welcome("tarpit")).unwrap();
        // Swallow frames without ever answering until the peer gives up.
        while wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).is_ok() {}
    });
    let to_stalled = RemotePeer::connect(
        stall_addr,
        ClientConfig {
            attempts: 1,
            read_timeout: Duration::from_millis(150),
            ..Default::default()
        },
    )
    .unwrap();
    to_stalled
        .send_document(&sender, &doc("front-stalled"), &bulky, &lazy)
        .unwrap_err();

    uninstall_sink(&dyn_sink);
    let records = sink.records();
    let mut out = Vec::new();
    for stem in ["front-toolarge", "front-busy", "front-stalled"] {
        let doc = doc(stem);
        let exchange: Vec<_> = records
            .iter()
            .filter(|r| r.name == "exchange" && r.field("doc") == Some(doc.as_str()))
            .collect();
        assert_eq!(exchange.len(), 1, "{doc}: one exchange root");
        let exchange = exchange[0];
        assert!(exchange.error, "{doc}: failed exchange is error-tagged");
        let rid = exchange.field("rid").unwrap();
        let tree = spans_with_rid(&records, rid);
        let enforce = named(&tree, "enforce");
        let ship = named(&tree, "ship");
        assert_eq!((enforce.len(), ship.len()), (1, 1), "{doc}");
        assert!(!enforce[0].error, "{doc}: enforcement itself succeeded");
        assert!(ship[0].error, "{doc}: the wire stage carries the error");
        assert!(
            named(&tree, "validate").is_empty(),
            "{doc}: nothing validated — the document never landed"
        );
        let reason = ship[0]
            .field("error.msg")
            .unwrap_or_else(|| panic!("{doc}: failure reason recorded"))
            .to_owned();
        out.push((stem.to_owned(), reason));
    }
    out
}

#[test]
fn matrix_failed_exchanges_emit_error_tagged_spans() {
    let threads = failed_exchange_outcome(IoMode::Threads);
    let poll = failed_exchange_outcome(IoMode::Poll);
    assert_eq!(
        threads, poll,
        "failure reasons on the ship span are engine-independent"
    );
    let reason = |stem: &str| {
        threads
            .iter()
            .find(|(s, _)| s == stem)
            .map(|(_, r)| r.as_str())
            .unwrap()
    };
    assert!(
        reason("front-toolarge").contains("TooLarge"),
        "{}",
        reason("front-toolarge")
    );
    assert!(
        reason("front-busy").contains("Busy"),
        "{}",
        reason("front-busy")
    );
}
