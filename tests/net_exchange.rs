//! Loopback integration tests of the TCP peer daemons: concurrent
//! clients, protocol fault injection, and the paper's Fig. 1 newspaper
//! exchange carried end-to-end over sockets with Schema Enforcement on
//! both sides.

use axml::net::{wire, ClientConfig, NetClient, ServerConfig};
use axml::peer::{InboundPolicy, NetInvoker, NetPeer, Peer, Query, RemotePeer};
use axml::schema::{validate, Compiled, ITree, NoOracle, Schema};
use axml::services::{Registry, ServiceDef};
use std::sync::Arc;
use std::time::Duration;

fn vocab() -> Schema {
    Schema::builder()
        .element("newspaper", "title.date.(Listings|exhibit*)")
        .data_element("title")
        .data_element("date")
        .element("exhibit", "title.date")
        .function("Listings", "data", "exhibit*")
        .build()
        .unwrap()
}

fn strict_vocab() -> Schema {
    Schema::builder()
        .element("newspaper", "title.date.exhibit*")
        .data_element("title")
        .data_element("date")
        .element("exhibit", "title.date")
        .function("Listings", "data", "exhibit*")
        .build()
        .unwrap()
}

fn compiled(schema: Schema) -> Arc<Compiled> {
    Arc::new(Compiled::new(schema, &NoOracle).unwrap())
}

/// A listings-provider daemon on an ephemeral loopback port.
fn provider_daemon(config: ServerConfig) -> NetPeer {
    let peer = Arc::new(Peer::new(
        "listings.example.org",
        compiled(vocab()),
        Arc::new(Registry::new()),
    ));
    peer.repository.store(
        "program",
        ITree::elem(
            "listings",
            vec![
                ITree::elem(
                    "exhibit",
                    vec![ITree::data("title", "Monet"), ITree::data("date", "Mon")],
                ),
                ITree::elem(
                    "exhibit",
                    vec![ITree::data("title", "Rodin"), ITree::data("date", "Tue")],
                ),
            ],
        ),
    );
    peer.declare(
        ServiceDef::new("Listings", "data", "exhibit*"),
        Query::Children("program".to_owned()),
    );
    NetPeer::serve(peer, "127.0.0.1:0", config).unwrap()
}

fn front_page() -> ITree {
    ITree::elem(
        "newspaper",
        vec![
            ITree::data("title", "The Sun"),
            ITree::data("date", "04/10/2002"),
            ITree::func("Listings", vec![ITree::text("exhibits")]),
        ],
    )
}

#[test]
fn concurrent_clients_share_one_daemon() {
    let daemon = provider_daemon(ServerConfig::default());
    let addr = daemon.local_addr();
    let caller = Arc::new(Peer::new(
        "caller.example.org",
        compiled(vocab()),
        Arc::new(Registry::new()),
    ));
    let remote = Arc::new(RemotePeer::connect(addr, ClientConfig::default()).unwrap());

    let threads: Vec<_> = (0..8)
        .map(|_| {
            let caller = Arc::clone(&caller);
            let remote = Arc::clone(&remote);
            std::thread::spawn(move || {
                for _ in 0..5 {
                    let result = remote
                        .invoke_service(&caller, "Listings", &[ITree::text("exhibits")])
                        .unwrap();
                    assert_eq!(result.len(), 2);
                    assert!(result.iter().all(|t| t.name() == Some("exhibit")));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let served = daemon
        .stats()
        .served
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(served, 40, "every concurrent request answered");
    daemon.shutdown().unwrap();
}

#[test]
fn oversized_frames_are_faulted_and_refused() {
    let daemon = provider_daemon(ServerConfig {
        max_frame: 2048,
        ..Default::default()
    });
    let client = NetClient::new(daemon.local_addr(), ClientConfig::default()).unwrap();
    let huge = format!(
        "<x>{}</x>",
        std::iter::repeat('a').take(64 << 10).collect::<String>()
    );
    let err = client.call(&huge).unwrap_err();
    match err {
        axml::net::ClientError::Fault(f) => {
            assert_eq!(f.code, wire::FaultCode::TooLarge);
            assert!(!f.retryable, "an oversized request will never fit");
        }
        other => panic!("expected a TooLarge fault, got {other}"),
    }
    // The daemon survives and keeps serving well-sized requests.
    let small = client
        .call(&axml::services::soap::request("Listings", &[ITree::text("x")]).to_xml())
        .unwrap();
    assert!(small.contains("exhibit"));
    daemon.shutdown().unwrap();
}

#[test]
fn stalled_connections_hit_the_read_timeout() {
    use std::io::{Read, Write};

    let daemon = provider_daemon(ServerConfig {
        read_timeout: Duration::from_millis(50),
        ..Default::default()
    });
    let mut stream = std::net::TcpStream::connect(daemon.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    wire::write_frame(&mut stream, &wire::hello("slowpoke")).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let welcome = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(welcome.kind, wire::FrameType::Welcome);

    // Write half a frame header, then stall: the server must fault with
    // Timeout and close rather than wait forever.
    stream.write_all(&[wire::FrameType::Request as u8, 0, 0]).unwrap();
    stream.flush().unwrap();
    let fault_frame = wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(fault_frame.kind, wire::FrameType::Fault);
    let fault = wire::decode_fault(&fault_frame.payload).unwrap();
    assert_eq!(fault.code, wire::FaultCode::Timeout);
    // ...and the connection is closed afterwards.
    let mut rest = Vec::new();
    let closed = reader.get_mut().read_to_end(&mut rest);
    assert!(matches!(closed, Ok(0)), "{closed:?} / {} bytes", rest.len());
    daemon.shutdown().unwrap();
}

#[test]
fn malformed_envelopes_fault_without_wedging_the_daemon() {
    let daemon = provider_daemon(ServerConfig::default());
    let client = NetClient::new(daemon.local_addr(), ClientConfig::default()).unwrap();
    for bad in [
        "this is not xml",
        "<notsoap/>",
        "<soap:Envelope xmlns:soap=\"http://schemas.xmlsoap.org/soap/envelope/\"/>",
    ] {
        let err = client.call(bad).unwrap_err();
        match err {
            axml::net::ClientError::Fault(f) => {
                assert_eq!(f.code, wire::FaultCode::Client, "{bad}: {f}");
                assert!(!f.retryable);
            }
            other => panic!("{bad}: expected a Client fault, got {other}"),
        }
    }
    // The connection stays usable after per-request faults.
    let ok = client
        .call(&axml::services::soap::request("Listings", &[ITree::text("x")]).to_xml())
        .unwrap();
    assert!(ok.contains("exhibit"));
    daemon.shutdown().unwrap();
}

/// Fig. 1 end-to-end over TCP, three parties: the newspaper peer ships
/// its intensional front page to a browser-like receiver daemon under a
/// fully extensional exchange schema, materializing the embedded
/// `Listings` call through the provider daemon on the way out.
#[test]
fn newspaper_exchange_between_daemons() {
    let provider = provider_daemon(ServerConfig::default());

    // The receiver: a daemon that enforces the strict schema and refuses
    // any intensional content (a browser, Sec. 1).
    let receiver_peer = Arc::new(
        Peer::new(
            "browser.example.org",
            compiled(strict_vocab()),
            Arc::new(Registry::new()),
        )
        .with_inbound(InboundPolicy::RejectFunctions),
    );
    let receiver = NetPeer::serve(
        Arc::clone(&receiver_peer),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();

    // The sender: holds the intensional front page.
    let sender = Peer::new(
        "newspaper.example.org",
        compiled(vocab()),
        Arc::new(Registry::new()),
    );
    let front = front_page();
    validate(&front, &sender.compiled).unwrap();

    let to_provider = RemotePeer::connect(provider.local_addr(), ClientConfig::default()).unwrap();
    let to_receiver = RemotePeer::connect(receiver.local_addr(), ClientConfig::default()).unwrap();

    // Shipping the raw intensional document is refused by the receiver's
    // enforcement (sender-side rewriting is skipped because the document
    // already conforms to the *lazy* schema).
    let lazy = compiled(vocab());
    let err = to_receiver
        .send_document(&sender, "front", &front, &lazy)
        .unwrap_err();
    assert!(
        matches!(err, axml::peer::PeerError::Fault(ref f) if f.code.starts_with("Client")),
        "{err}"
    );

    // Under the agreed extensional exchange schema, the sender first
    // materializes `Listings` through the provider daemon, then ships.
    let strict = compiled(strict_vocab());
    let mut invoker = NetInvoker {
        caller: &sender,
        remote: &to_provider,
    };
    let (sent, report) = to_receiver
        .send_document_with(&sender, "front", &front, &strict, &mut invoker)
        .unwrap();
    assert_eq!(report.invoked, vec!["Listings".to_owned()]);
    assert_eq!(sent.num_funcs(), 0);
    assert_eq!(sent.children().len(), 4); // title, date, 2 exhibits

    // The receiver daemon verified and stored the materialized document.
    let stored = receiver_peer.repository.load("front").unwrap();
    assert_eq!(stored, sent);
    validate(&stored, &receiver_peer.compiled).unwrap();

    provider.shutdown().unwrap();
    receiver.shutdown().unwrap();
}
