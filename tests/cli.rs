//! End-to-end tests of the `axml` command-line tool.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_axml"))
}

fn fixture_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("axml-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const STAR_DSL: &str = r#"
element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit*)
element title     = data
element date      = data
element temp      = data
element city      = data
element exhibit   = title.(Get_Date | date)
element performance = data
function Get_Temp : city -> temp
function TimeOut  : data -> (exhibit | performance)*
function Get_Date : title -> date
root newspaper
"#;

const STAR2_DSL: &str = r#"
element newspaper = title.date.temp.(TimeOut | exhibit*)
element title     = data
element date      = data
element temp      = data
element city      = data
element exhibit   = title.(Get_Date | date)
element performance = data
function Get_Temp : city -> temp
function TimeOut  : data -> (exhibit | performance)*
function Get_Date : title -> date
root newspaper
"#;

const STAR3_DSL: &str = r#"
element newspaper = title.date.temp.exhibit*
element title     = data
element date      = data
element temp      = data
element city      = data
element exhibit   = title.(Get_Date | date)
element performance = data
function Get_Temp : city -> temp
function TimeOut  : data -> (exhibit | performance)*
function Get_Date : title -> date
root newspaper
"#;

fn write_fixtures() -> (PathBuf, PathBuf, PathBuf, PathBuf) {
    let dir = fixture_dir();
    let star = dir.join("star.schema");
    let star2 = dir.join("star2.schema");
    let star3 = dir.join("star3.schema");
    let doc = dir.join("newspaper.xml");
    std::fs::write(&star, STAR_DSL).unwrap();
    std::fs::write(&star2, STAR2_DSL).unwrap();
    std::fs::write(&star3, STAR3_DSL).unwrap();
    std::fs::write(
        &doc,
        axml::schema::newspaper_example().to_xml().to_pretty_xml(),
    )
    .unwrap();
    (star, star2, star3, doc)
}

#[test]
fn validate_accepts_and_rejects() {
    let (star, star2, _star3, doc) = write_fixtures();
    let ok = bin()
        .args(["validate"])
        .arg(&star)
        .arg(&doc)
        .output()
        .unwrap();
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    assert!(String::from_utf8_lossy(&ok.stdout).contains("valid"));

    // Against (**) the intensional document is invalid.
    let bad = bin()
        .args(["validate"])
        .arg(&star2)
        .arg(&doc)
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&bad.stdout).contains("invalid"));

    // Streaming mode agrees.
    let ok = bin()
        .args(["validate"])
        .arg(&star)
        .arg(&doc)
        .arg("--stream")
        .output()
        .unwrap();
    assert!(ok.status.success());
}

#[test]
fn plan_reports_safety() {
    let (_star, star2, star3, doc) = write_fixtures();
    let safe = bin()
        .args(["plan"])
        .arg(&star2)
        .arg(&doc)
        .args(["--k", "1"])
        .output()
        .unwrap();
    assert!(safe.status.success());
    assert!(String::from_utf8_lossy(&safe.stdout).contains("safe: yes"));

    let unsafe_out = bin()
        .args(["plan"])
        .arg(&star3)
        .arg(&doc)
        .args(["--k", "1"])
        .output()
        .unwrap();
    assert_eq!(unsafe_out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&unsafe_out.stdout).contains("safe: no"));

    // Possible analysis still succeeds on (***).
    let possible = bin()
        .args(["plan"])
        .arg(&star3)
        .arg(&doc)
        .args(["--k", "1", "--possible"])
        .output()
        .unwrap();
    assert!(possible.status.success());
    assert!(String::from_utf8_lossy(&possible.stdout).contains("possible: yes"));
}

#[test]
fn rewrite_executes_against_simulated_services() {
    let (_star, star2, _star3, doc) = write_fixtures();
    let out = bin()
        .args(["rewrite"])
        .arg(&star2)
        .arg(&doc)
        .args(["--k", "1", "--execute", "42"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("<temp>"),
        "temperature materialized:\n{stdout}"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("Get_Temp"));
}

#[test]
fn compat_matches_the_paper() {
    let (star, star2, star3, _doc) = write_fixtures();
    let ok = bin()
        .args(["compat"])
        .arg(&star)
        .arg(&star2)
        .args(["--root", "newspaper", "--k", "1"])
        .output()
        .unwrap();
    assert!(ok.status.success());
    assert!(String::from_utf8_lossy(&ok.stdout).contains("compatible"));

    let bad = bin()
        .args(["compat"])
        .arg(&star)
        .arg(&star3)
        .args(["--root", "newspaper", "--k", "1"])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&bad.stdout).contains("incompatible"));
}

#[test]
fn serve_and_send_roundtrip() {
    use std::io::BufRead;

    let (star, star2, _star3, doc) = write_fixtures();
    // An extensional front page, valid against both (*) and (**).
    let dir = fixture_dir();
    let plain = dir.join("plain.xml");
    std::fs::write(
        &plain,
        "<newspaper><title>The Sun</title><date>04/10/2002</date><temp>15</temp></newspaper>",
    )
    .unwrap();

    // Daemon answering exactly two requests, then exiting gracefully.
    let mut daemon = bin()
        .args(["serve"])
        .arg(&star)
        .args(["127.0.0.1:0", "--requests", "2", "--name", "cli-peer"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut lines = std::io::BufReader::new(daemon.stdout.take().unwrap()).lines();
    let banner = lines.next().unwrap().unwrap();
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_owned();

    // 1: a conforming document is accepted and stored.
    let sent = bin()
        .args(["send"])
        .arg(&star)
        .arg(&addr)
        .arg(&plain)
        .args(["--name", "front"])
        .output()
        .unwrap();
    assert!(
        sent.status.success(),
        "{}{}",
        String::from_utf8_lossy(&sent.stdout),
        String::from_utf8_lossy(&sent.stderr)
    );
    assert!(String::from_utf8_lossy(&sent.stdout).contains("sent 'front'"));

    // 2: the intensional doc conforms to (*) client-side, but the
    // receiver enforces (*) too, so shipping it under the stricter (**)
    // exchange schema fails on the sender (no services to materialize
    // Get_Temp with).
    let refused = bin()
        .args(["send"])
        .arg(&star2)
        .arg(&addr)
        .arg(&doc)
        .output()
        .unwrap();
    assert_eq!(refused.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&refused.stdout).contains("send failed"));

    // The daemon needs one more answered request to reach its quota.
    let sent = bin()
        .args(["send"])
        .arg(&star)
        .arg(&addr)
        .arg(&plain)
        .output()
        .unwrap();
    assert!(sent.status.success());

    let status = daemon.wait().unwrap();
    assert!(status.success(), "daemon exit: {status:?}");
    let summary: Vec<String> = lines.map_while(Result::ok).collect();
    assert!(
        summary.iter().any(|l| l.contains("served 2 requests")),
        "{summary:?}"
    );
}

#[test]
fn bad_usage_and_missing_files() {
    let out = bin().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .args(["validate", "/nonexistent", "/nope"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
