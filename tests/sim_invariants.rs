//! The simulator's invariant suite (DESIGN.md §10): thousands of seeded
//! fault schedules drive the Fig. 1 exchange through the real client,
//! wire, and enforcement stack over the in-memory network, and every run
//! must uphold the exchange invariants:
//!
//! * delivered documents conform to the exchange schema and arrive
//!   intact, whatever the injected service answers;
//! * failed exchanges report a typed error — never a hang, never a
//!   silent drop;
//! * client retries stay within the configured attempt bound;
//! * the `server.requests = ok + faults` and
//!   `solve_cache.lookups = hits + misses` accounting identities hold
//!   through crashes and resets;
//! * every wire request id yields at most one span tree.
//!
//! Failing seeds are shrunk by the `axml-support` harness and replayed
//! from `regressions/sim/invariants.seeds` on every run. To replay one
//! specific world by hand:
//!
//! ```text
//! AXML_SIM_SEED=0xdeadbeef cargo test --test sim_invariants replay_env_seed -- --nocapture
//! ```

use axml::obs::{install_sink, uninstall_sink, RingSink, SpanSink};
use axml::sim::{run_marketplace, run_scenario, MarketplaceConfig, Outcome, ScenarioConfig};
use axml_support::prop::{run, ProptestConfig, TestCaseError};
use std::sync::Arc;

/// Runs one seeded scenario and turns invariant violations into a test
/// failure carrying the transcript tail (the shrinker minimizes the seed).
fn assert_seed_holds(seed: u64) -> Result<(), TestCaseError> {
    let report = run_scenario(&ScenarioConfig::from_seed(seed));
    if report.violations.is_empty() {
        return Ok(());
    }
    let tail: String = report
        .transcript
        .lines()
        .rev()
        .take(30)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect::<Vec<_>>()
        .join("\n");
    Err(TestCaseError::fail(format!(
        "seed 0x{seed:016x} violated: {:?}\ntranscript tail:\n{tail}",
        report.violations
    )))
}

/// The CI gate: ≥1000 distinct seeds (plus the whole regression corpus
/// in `regressions/sim/`) must pass the invariant suite. Virtual time
/// makes this seconds of wall clock despite simulating many minutes of
/// network traffic, timeouts and backoff sleeps.
#[test]
fn seed_batch_upholds_exchange_invariants() {
    run(
        "sim/invariants",
        &ProptestConfig::with_cases(1000),
        0u64..u64::MAX,
        assert_seed_holds,
    );
}

/// Marketplace analogue of [`assert_seed_holds`]: continuation chains
/// across a seeded provider fleet (random, crashing, and strategic
/// opponents), UDDI/ACL registry churn mid-exchange, one-direction
/// partitions — same invariant suite, same shrink-and-replay story.
fn assert_marketplace_seed_holds(seed: u64) -> Result<(), TestCaseError> {
    let report = run_marketplace(&MarketplaceConfig::from_seed(seed));
    if report.violations.is_empty() {
        return Ok(());
    }
    let tail: String = report
        .transcript
        .lines()
        .rev()
        .take(30)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect::<Vec<_>>()
        .join("\n");
    Err(TestCaseError::fail(format!(
        "marketplace seed 0x{seed:016x} violated: {:?}\ntranscript tail:\n{tail}",
        report.violations
    )))
}

/// The marketplace CI gate: ≥1000 seeded fleets (plus the curated corpus
/// in `regressions/sim/marketplace.seeds`) uphold the invariants.
#[test]
fn marketplace_seed_batch_upholds_invariants() {
    run(
        "sim/marketplace",
        &ProptestConfig::with_cases(1000),
        0u64..u64::MAX,
        assert_marketplace_seed_holds,
    );
}

/// Determinism pin: the same seed, run twice, produces byte-identical
/// event logs, transcripts and metrics snapshots.
#[test]
fn same_seed_replays_byte_identically() {
    for seed in [0u64, 1, 42, 0xdead_beef, 0x5eed_0f_baad] {
        let config = ScenarioConfig::from_seed(seed);
        let a = run_scenario(&config);
        let b = run_scenario(&config);
        assert_eq!(
            a.transcript, b.transcript,
            "seed 0x{seed:x} diverged between runs"
        );
        let config = MarketplaceConfig::from_seed(seed);
        let a = run_marketplace(&config);
        let b = run_marketplace(&config);
        assert_eq!(
            a.transcript, b.transcript,
            "marketplace seed 0x{seed:x} diverged between runs"
        );
    }
}

/// Spans stay correlated under faults: grouping every span emitted during
/// a batch of scenarios by its wire request id, each id has at most one
/// root (one span tree) — retries and duplicated frames must not fork a
/// second tree for the same exchange.
#[test]
fn each_request_id_yields_at_most_one_span_tree() {
    let sink = RingSink::new(4096);
    let dyn_sink: Arc<dyn SpanSink> = sink.clone();
    install_sink(dyn_sink.clone());
    for seed in 0..24u64 {
        run_scenario(&ScenarioConfig::from_seed(seed));
    }
    uninstall_sink(&dyn_sink);
    let records = sink.records();
    let mut roots_per_rid = std::collections::BTreeMap::<String, usize>::new();
    for r in &records {
        let Some(rid) = r.field("rid") else { continue };
        if r.parent.is_none() {
            *roots_per_rid.entry(rid.to_owned()).or_insert(0) += 1;
        }
    }
    // Wire request ids are process-globally unique, so even spans from
    // concurrently running tests cannot collide on a rid.
    for (rid, roots) in &roots_per_rid {
        assert!(
            *roots <= 1,
            "rid {rid} produced {roots} span trees (records: {})",
            records.len()
        );
    }
    assert!(
        !roots_per_rid.is_empty(),
        "scenario batch emitted no rid-tagged spans"
    );
}

/// Replays one world by hand: set `AXML_SIM_SEED` (decimal or 0x-hex) and
/// run with `--nocapture` to see the full transcript of that seed.
#[test]
fn replay_env_seed() {
    let seed = match std::env::var("AXML_SIM_SEED") {
        Ok(raw) => {
            let raw = raw.trim().replace('_', "");
            match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).expect("AXML_SIM_SEED: bad hex"),
                None => raw.parse().expect("AXML_SIM_SEED: bad u64"),
            }
        }
        Err(_) => 1, // no seed requested: still exercise the replay path
    };
    let report = run_scenario(&ScenarioConfig::from_seed(seed));
    println!("{}", report.transcript);
    match &report.outcome {
        Outcome::Delivered { .. } => println!("outcome: delivered"),
        Outcome::Failed { error } => println!("outcome: failed: {error}"),
    }
    assert!(
        report.violations.is_empty(),
        "seed 0x{seed:016x} violated: {:?}",
        report.violations
    );
}
