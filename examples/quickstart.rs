//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Fig. 2 newspaper document, the three schemas of Sec. 2
//! ((*), (**), (***)), and shows validation, safe rewriting, and possible
//! rewriting — reproducing the decisions of Figs. 6, 8 and 11.
//!
//! Run with: `cargo run --example quickstart`

use axml::core::invoke::ScriptedInvoker;
use axml::core::rewrite::{RewriteError, Rewriter};
use axml::schema::{newspaper_example, validate, Compiled, ITree, NoOracle, Schema};

fn schema(newspaper_model: &str) -> Compiled {
    let schema = Schema::builder()
        .element("newspaper", newspaper_model)
        .data_element("title")
        .data_element("date")
        .data_element("temp")
        .data_element("city")
        .element("exhibit", "title.(Get_Date|date)")
        .data_element("performance")
        .function("Get_Temp", "city", "temp")
        .function("TimeOut", "data", "(exhibit|performance)*")
        .function("Get_Date", "title", "date")
        .build()
        .expect("well-formed schema");
    Compiled::new(schema, &NoOracle).expect("compilable schema")
}

fn main() {
    // The intensional document of Fig. 2.a: explicit title and date, a
    // Get_Temp call for the temperature, a TimeOut call for the listings.
    let doc = newspaper_example();
    println!("Document (Fig. 2.a):\n  {doc}\n");
    println!("As XML:\n{}\n", doc.to_xml().to_pretty_xml());

    // Schema (*): both calls may stay intensional.
    let star = schema("title.date.(Get_Temp|temp).(TimeOut|exhibit*)");
    println!(
        "(*)   title.date.(Get_Temp|temp).(TimeOut|exhibit*)  -> instance? {}",
        validate(&doc, &star).is_ok()
    );

    // Schema (**): the temperature must be materialized.
    let star2 = schema("title.date.temp.(TimeOut|exhibit*)");
    println!(
        "(**)  title.date.temp.(TimeOut|exhibit*)             -> instance? {}",
        validate(&doc, &star2).is_ok()
    );

    // Safe rewriting into (**): invoke Get_Temp, keep TimeOut (Fig. 6).
    let mut rewriter = Rewriter::new(&star2).with_k(1);
    let mut invoker = ScriptedInvoker::new().answer("Get_Temp", vec![ITree::data("temp", "15 C")]);
    let (sent, report) = rewriter
        .rewrite_safe(&doc, &mut invoker)
        .expect("the paper proves this safe");
    println!("\nSafe rewriting into (**) invoked {:?}:", report.invoked);
    println!("  {sent}");
    assert!(validate(&sent, &star2).is_ok());

    // Schema (***): everything extensional; safe rewriting is impossible
    // because TimeOut may return performance elements (Fig. 8).
    let star3 = schema("title.date.temp.exhibit*");
    let mut rewriter3 = Rewriter::new(&star3).with_k(1);
    match rewriter3.analyze_safe(&doc) {
        Err(RewriteError::NotSafe { context, word }) => {
            println!("\nSafe rewriting into (***): impossible at '{context}' (children {word})")
        }
        other => panic!("expected NotSafe, got {other:?}"),
    }

    // …but a *possible* rewriting exists (Fig. 11) — it succeeds when
    // TimeOut happens to return only exhibits.
    let mut invoker3 = ScriptedInvoker::new()
        .answer("Get_Temp", vec![ITree::data("temp", "15 C")])
        .answer(
            "TimeOut",
            vec![ITree::elem(
                "exhibit",
                vec![ITree::data("title", "Monet"), ITree::data("date", "Mon")],
            )],
        );
    let (sent3, report3) = rewriter3
        .rewrite_possible(&doc, &mut invoker3)
        .expect("TimeOut cooperated");
    println!(
        "Possible rewriting into (***) invoked {:?} ({} wasted):",
        report3.invoked, report3.wasted_calls
    );
    println!("  {sent3}");
    assert!(validate(&sent3, &star3).is_ok());
}
