//! Exchange-schema negotiation (the conclusion's "negotiator" extension).
//!
//! A newspaper peer proposes three exchange schemas, laziest first. Three
//! receivers with different capabilities negotiate; each lands on the
//! laziest schema it can live with and that the sender can guarantee
//! (Def. 6). The chosen schema is then enforced on an actual document.
//!
//! Run with: `cargo run --example negotiation`

use axml::core::rewrite::enforce;
use axml::peer::{negotiate, InboundPolicy, Negotiation, Proposal};
use axml::schema::{newspaper_example, schema_refines, Compiled, NoOracle, Schema};
use axml::services::builtin::{GetDate, GetTemp, TimeOutGuide};
use axml::services::{Registry, ServiceDef};
use std::sync::Arc;

fn newspaper_schema(newspaper_model: &str, exhibit_model: &str) -> Schema {
    Schema::builder()
        .element("newspaper", newspaper_model)
        .data_element("title")
        .data_element("date")
        .data_element("temp")
        .data_element("city")
        .element("exhibit", exhibit_model)
        .data_element("performance")
        .function("Get_Temp", "city", "temp")
        .function("TimeOut", "data", "(exhibit|performance)*")
        .function("Get_Date", "title", "date")
        .root("newspaper")
        .build()
        .unwrap()
}

fn main() {
    let sender = newspaper_schema(
        "title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
        "title.(Get_Date|date)",
    );
    let proposals = vec![
        Proposal {
            name: "fully intensional".to_owned(),
            schema: newspaper_schema(
                "title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
                "title.(Get_Date|date)",
            ),
        },
        Proposal {
            name: "temperature materialized".to_owned(),
            schema: newspaper_schema(
                "title.date.temp.(TimeOut|exhibit*)",
                "title.(Get_Date|date)",
            ),
        },
        Proposal {
            name: "fully extensional".to_owned(),
            schema: newspaper_schema("title.date.temp.(exhibit|performance)*", "title.date"),
        },
    ];

    // Refinement pre-check: each proposal is strictly wider than the next.
    println!("Proposal lattice (refinement pre-checks):");
    for w in proposals.windows(2) {
        let narrower_refines = schema_refines(&w[1].schema, &w[0].schema).is_empty();
        println!(
            "  '{}' refines '{}': {narrower_refines}",
            w[1].name, w[0].name
        );
    }
    println!();

    let receivers = [
        ("Active XML peer", InboundPolicy::AcceptAll),
        (
            "cautious peer (trusts TimeOut only)",
            InboundPolicy::AllowOnly(vec!["TimeOut".to_owned()]),
        ),
        ("plain browser", InboundPolicy::RejectFunctions),
    ];

    let registry = Registry::new();
    registry.register(
        ServiceDef::new("Get_Temp", "city", "temp"),
        Arc::new(GetTemp::with_defaults()),
    );
    registry.register(
        ServiceDef::new("TimeOut", "data", "(exhibit|performance)*"),
        Arc::new(TimeOutGuide::with_defaults()),
    );
    registry.register(
        ServiceDef::new("Get_Date", "title", "date"),
        Arc::new(GetDate {
            table: vec![
                ("Monet".to_owned(), "Mon".to_owned()),
                ("Rodin".to_owned(), "Tue".to_owned()),
                ("Hamlet".to_owned(), "Fri".to_owned()),
            ],
        }),
    );

    for (who, policy) in receivers {
        match negotiate(&sender, "newspaper", &proposals, &policy, 1, &NoOracle).unwrap() {
            Negotiation::Agreed { index, skipped } => {
                println!("{who}: agreed on '{}'", proposals[index].name);
                for (i, why) in &skipped {
                    println!("    skipped '{}': {why}", proposals[*i].name);
                }
                // Ship a document under the agreed schema.
                let compiled = Compiled::new(proposals[index].schema.clone(), &NoOracle).unwrap();
                let mut invoker = registry.invoker(None);
                let (sent, report) =
                    enforce(&compiled, &newspaper_example(), 2, &mut invoker).unwrap();
                println!(
                    "    shipped with {} call(s) materialized: {sent}",
                    report.invoked.len()
                );
            }
            Negotiation::Failed { reasons } => {
                println!("{who}: negotiation failed");
                for (i, why) in reasons {
                    println!("    '{}': {why}", proposals[i].name);
                }
            }
        }
        println!();
    }
}
