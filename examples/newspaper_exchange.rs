//! The Fig. 1 data-exchange scenario with two Active XML peers.
//!
//! A newspaper peer holds an intensional front page and serves it over
//! SOAP. Three readers with different capabilities fetch it:
//!
//! * another Active XML peer accepts the intensional document as-is;
//! * a reader with a *partially* intensional exchange schema receives the
//!   temperature materialized but keeps the TimeOut listings lazy;
//! * a plain browser that cannot invoke services forces the sender to
//!   materialize everything.
//!
//! Run with: `cargo run --example newspaper_exchange`

use axml::core::rewrite::enforce;
use axml::peer::{InboundPolicy, Peer, Query};
use axml::schema::{newspaper_example, validate, Compiled, NoOracle, Schema, SchemaBuilder};
use axml::services::builtin::{GetDate, GetTemp, TimeOutGuide};
use axml::services::{Registry, ServiceDef};
use std::sync::Arc;

fn vocabulary(newspaper_model: &str, exhibit_model: &str) -> SchemaBuilder {
    Schema::builder()
        .element("newspaper", newspaper_model)
        .data_element("title")
        .data_element("date")
        .data_element("temp")
        .data_element("city")
        .element("exhibit", exhibit_model)
        .data_element("performance")
        .function("Get_Temp", "city", "temp")
        .function("TimeOut", "data", "(exhibit|performance)*")
        .function("Get_Date", "title", "date")
        .function("Front_Page", "data", "newspaper")
}

fn compiled(newspaper_model: &str, exhibit_model: &str) -> Arc<Compiled> {
    Arc::new(
        Compiled::new(
            vocabulary(newspaper_model, exhibit_model).build().unwrap(),
            &NoOracle,
        )
        .unwrap(),
    )
}

fn web_registry() -> Arc<Registry> {
    let registry = Registry::new();
    registry.register(
        ServiceDef::new("Get_Temp", "city", "temp"),
        Arc::new(GetTemp::with_defaults()),
    );
    registry.register(
        ServiceDef::new("TimeOut", "data", "(exhibit|performance)*"),
        Arc::new(TimeOutGuide::exhibits_only()),
    );
    registry.register(
        ServiceDef::new("Get_Date", "title", "date"),
        Arc::new(GetDate {
            table: vec![
                ("Monet".to_owned(), "Mon".to_owned()),
                ("Rodin".to_owned(), "Tue".to_owned()),
            ],
        }),
    );
    Arc::new(registry)
}

fn main() {
    let registry = web_registry();

    // The newspaper's own schema (*): fully intensional documents allowed.
    let own = compiled(
        "title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
        "title.(Get_Date|date)",
    );
    let newspaper = Arc::new(Peer::new(
        "newspaper.example.org",
        Arc::clone(&own),
        Arc::clone(&registry),
    ));
    newspaper.repository.store("front", newspaper_example());
    newspaper.declare(
        ServiceDef::new("Front_Page", "data", "newspaper"),
        Query::Document("front".to_owned()),
    );
    let server = newspaper.serve();

    // Reader 1: a full Active XML peer — fetches over SOAP, accepts the
    // intensional parts.
    let peer_reader = Peer::new("reader-axml", Arc::clone(&own), Arc::clone(&registry));
    let fetched = peer_reader
        .call_remote(&server, "Front_Page", &[axml::schema::ITree::text("today")])
        .expect("SOAP call");
    println!(
        "Active XML reader received ({} embedded calls):",
        fetched[0].num_funcs()
    );
    println!("  {}\n", fetched[0]);

    // Reader 2: agreed exchange schema (**) — temperature must be explicit.
    let exchange = compiled(
        "title.date.temp.(TimeOut|exhibit*)",
        "title.(Get_Date|date)",
    );
    let (sent, report) = newspaper
        .send_document(&newspaper_example(), &exchange, &InboundPolicy::AcceptAll)
        .expect("safe rewriting into (**)");
    println!(
        "Exchange under (**): sender invoked {:?}, document now:",
        report.invoked
    );
    println!("  {sent}\n");
    validate(&sent, &exchange).unwrap();

    // Reader 3: a browser that cannot handle intensional documents at all.
    // The agreed schema is fully extensional and the receiver policy
    // refuses any embedded call, so the sender must materialize everything
    // recursively (TimeOut and then each exhibit's Get_Date).
    let extensional = compiled("title.date.temp.(exhibit|performance)*", "title.date");
    let mut invoker = registry.invoker(None);
    let (flat, report) =
        enforce(&extensional, &newspaper_example(), 2, &mut invoker).expect("full materialization");
    InboundPolicy::RejectFunctions
        .check(std::slice::from_ref(&flat))
        .expect("no calls remain");
    println!(
        "Browser exchange: sender invoked {:?} — fully extensional document:",
        report.invoked
    );
    println!("  {flat}");
    println!("\nRegistry accounting: {:?}", registry.stats());

    server.shutdown().unwrap();
}
