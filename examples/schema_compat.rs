//! Schema-to-schema compatibility (Sec. 6, Def. 6).
//!
//! Before wiring two applications together, the sender checks that *all*
//! documents its schema can generate safely rewrite into the agreed
//! exchange schema — reproducing the Sec. 2 claims: schema (*) safely
//! rewrites into (**) but not into (***).
//!
//! Run with: `cargo run --example schema_compat`

use axml::core::schema_rw::schema_safe_rewrites;
use axml::schema::{NoOracle, Schema};

fn newspaper_schema(newspaper_model: &str) -> Schema {
    Schema::builder()
        .element("newspaper", newspaper_model)
        .data_element("title")
        .data_element("date")
        .data_element("temp")
        .data_element("city")
        .element("exhibit", "title.(Get_Date|date)")
        .data_element("performance")
        .function("Get_Temp", "city", "temp")
        .function("TimeOut", "data", "(exhibit|performance)*")
        .function("Get_Date", "title", "date")
        .root("newspaper")
        .build()
        .unwrap()
}

fn main() {
    let star = newspaper_schema("title.date.(Get_Temp|temp).(TimeOut|exhibit*)");
    let star2 = newspaper_schema("title.date.temp.(TimeOut|exhibit*)");
    let star3 = newspaper_schema("title.date.temp.exhibit*");

    println!("Checking Def. 6 compatibility with root 'newspaper', k = 1:\n");
    for (name, target) in [("(**)", &star2), ("(***)", &star3), ("(*)", &star)] {
        let report = schema_safe_rewrites(&star, "newspaper", target, 1, &NoOracle)
            .expect("well-formed schemas");
        println!(
            "(*) safely rewrites into {name}? {}   (checked element types: {})",
            report.compatible(),
            report.checked.len()
        );
        for failure in &report.failures {
            println!("    ✗ {failure}");
        }
    }

    // Depth sensitivity: nested continuation handles need a deeper k.
    println!("\nDepth sensitivity (Sec. 3 handles example):");
    let mk = |model: &str| {
        Schema::builder()
            .element("r", model)
            .element("exhibit", "")
            .function("Get_Exhibits", "", "Get_Exhibit*")
            .function("Get_Exhibit", "", "exhibit")
            .root("r")
            .build()
            .unwrap()
    };
    let sender = mk("Get_Exhibits|exhibit*");
    let receiver = mk("exhibit*");
    for k in 1..=2 {
        let report = schema_safe_rewrites(&sender, "r", &receiver, k, &NoOracle).unwrap();
        println!("  k = {k}: compatible? {}", report.compatible());
    }
}
