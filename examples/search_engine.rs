//! The Sec. 3 recursion example: continuation-style search results.
//!
//! A search engine returns a page of `url` elements plus, possibly, a
//! `SearchMore` handle for the next page: `τ_out(SearchMore) =
//! url*.SearchMore?`. Receivers wanting plain data must call the handles
//! repeatedly — and the k-depth restriction (Def. 7) bounds how deep that
//! chase may go, which is exactly why the restriction exists.
//!
//! Run with: `cargo run --example search_engine`

use axml::core::rewrite::{RewriteError, Rewriter};
use axml::schema::{validate, Compiled, ITree, NoOracle, Schema};
use axml::services::builtin::SearchEngine;
use axml::services::{Registry, ServiceDef};
use std::sync::Arc;

fn compiled() -> Compiled {
    let schema = Schema::builder()
        // The receiver wants only fully materialized result lists.
        .element("results", "url*")
        .data_element("url")
        .data_element("keyword")
        .function("SearchMore", "", "url*.SearchMore?")
        .function("Search", "keyword", "url*.SearchMore?")
        .build()
        .unwrap();
    Compiled::new(schema, &NoOracle).unwrap()
}

fn main() {
    let compiled = compiled();
    let registry = Registry::new();
    // 7 results, 2 per page: materializing everything takes 1 Search plus
    // 3 SearchMore continuations.
    let urls: Vec<String> = (1..=7).map(|i| format!("http://hit.example/{i}")).collect();
    registry.register(
        ServiceDef::new("Search", "keyword", "url*.SearchMore?"),
        Arc::new(SearchEngine::new(urls.clone(), 2, "SearchMore")),
    );
    registry.register(
        ServiceDef::new("SearchMore", "", "url*.SearchMore?"),
        Arc::new(SearchEngine::new(urls[2..].to_vec(), 2, "SearchMore")),
    );

    let doc = ITree::elem(
        "results",
        vec![ITree::func("Search", vec![ITree::data("keyword", "xml")])],
    );
    println!("Intensional result document:\n  {doc}\n");

    // The target schema wants url* — plain data. Whether that is *safely*
    // achievable depends on the rewriting depth k: each level of k chases
    // one more continuation handle, but the signature always allows the
    // service to return yet another handle, so NO finite k is safe.
    for k in 1..=3 {
        let mut rewriter = Rewriter::new(&compiled).with_k(k);
        match rewriter.analyze_safe(&doc) {
            Ok(_) => println!("k = {k}: safe (unexpected!)"),
            Err(RewriteError::NotSafe { .. }) => {
                println!("k = {k}: NOT safe — a depth-{k} chase may still end on a handle")
            }
            Err(e) => println!("k = {k}: {e}"),
        }
    }

    // A *possible* rewriting is a different matter: if the actual chain of
    // answers bottoms out within k steps, materialization succeeds. Our
    // engine needs 1 + 3 continuation levels, so k = 4 works.
    println!();
    for k in [2, 4] {
        // Fresh services per attempt (the engine is stateful).
        let registry = Registry::new();
        registry.register(
            ServiceDef::new("Search", "keyword", "url*.SearchMore?"),
            Arc::new(SearchEngine::new(urls.clone(), 2, "SearchMore")),
        );
        registry.register(
            ServiceDef::new("SearchMore", "", "url*.SearchMore?"),
            Arc::new(SearchEngine::new(urls[2..].to_vec(), 2, "SearchMore")),
        );
        let mut rewriter = Rewriter::new(&compiled).with_k(k);
        let mut invoker = registry.invoker(None);
        match rewriter.rewrite_possible(&doc, &mut invoker) {
            Ok((flat, report)) => {
                println!(
                    "k = {k}: possible rewriting succeeded with {} calls:",
                    report.invoked.len()
                );
                println!("  {flat}");
                validate(&flat, &compiled).unwrap();
                assert_eq!(flat.children().len(), 7);
            }
            Err(e) => println!("k = {k}: failed — {e}"),
        }
    }
}
