//! # axml — Exchanging Intensional XML Data
//!
//! Umbrella crate for the Rust reproduction of *Exchanging Intensional XML
//! Data* (Milo, Abiteboul, Amann, Benjelloun, Dang Ngoc — SIGMOD 2003), the
//! schema-enforcement core of the Active XML system.
//!
//! Re-exports every workspace crate under one roof:
//!
//! * [`automata`] — regular expressions, NFAs/DFAs, Glushkov determinism.
//! * [`xml`] — from-scratch XML data model, parser and serializer.
//! * [`schema`] — intensional schemas (simple model + XML Schema_int).
//! * [`core`] — safe / possible / mixed rewriting and schema compatibility.
//! * [`services`] — simulated Web services, registry, SOAP-style envelopes.
//! * [`peer`] — Active XML peers and the Schema Enforcement module.
//! * [`net`] — the TCP wire protocol and daemon substrate.
//! * [`obs`] — metrics registry, spans and deterministic JSON snapshots.
//! * [`store`] — persistent warm state: disk-backed solver-cache
//!   snapshots and the precomputed schema compatibility matrix.
//! * [`sim`] — deterministic discrete-event simulator for seeded
//!   fault-injection testing of multi-peer exchange.
//!
//! See the repository README for a guided tour and `examples/` for runnable
//! scenarios (start with `examples/quickstart.rs`).

pub use axml_automata as automata;
pub use axml_core as core;
pub use axml_net as net;
pub use axml_obs as obs;
pub use axml_peer as peer;
pub use axml_schema as schema;
pub use axml_services as services;
pub use axml_sim as sim;
pub use axml_store as store;
pub use axml_xml as xml;
