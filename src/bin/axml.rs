//! `axml` — command-line front-end for the Active XML toolkit.
//!
//! ```text
//! axml validate <schema> <doc.xml> [--stream]
//! axml rewrite  <schema> <doc.xml> [--k N] [--possible] [--execute SEED]
//! axml compat   <sender-schema> <exchange-schema> --root LABEL [--k N]
//! axml plan     <schema> <doc.xml> [--k N]
//! axml serve    <schema> <addr> [--name PEER] [--doc NAME=FILE]...
//!               [--export FUNC=DOC]... [--workers N] [--requests N]
//!               [--io threads|poll] [--shards N] [--enforce streaming|dom]
//!               [--builtin-services] [--store-dir DIR] [--snapshot-every N]
//! axml send     <schema> <addr> <doc.xml> [--name DOCNAME] [--k N]
//!               [--enforce streaming|dom] [--chunk-bytes N]
//! axml invoke   <schema> <addr> <method> [param]... [--k N]
//! axml stats    <addr>
//! ```
//!
//! `--enforce streaming` (the default) drives whole-document enforcement
//! off the pull parser: conforming regions are copied straight through
//! and only subtrees containing `int:fun` calls are materialized, so
//! memory stays proportional to the active subtree rather than the
//! document (DESIGN.md §13). `--enforce dom` forces the classical
//! materialize-everything pipeline; both produce identical bytes.
//!
//! `serve --store-dir DIR` gives the daemon persistent warm state
//! (DESIGN.md §11): the solver cache is loaded from `DIR` before the
//! socket opens and snapshotted back on graceful shutdown (and every N
//! answered requests with `--snapshot-every N`), so a restarted daemon
//! resumes at warm hit-rates.
//!
//! `serve --io poll` swaps the blocking reader threads for the sharded
//! epoll/kqueue readiness loop (DESIGN.md §12): same wire protocol,
//! fault taxonomy and metrics, but thousands of concurrent connections
//! on a fixed thread count. `--shards N` sets the poller shard count.
//!
//! Schemas are loaded from XML Schema_int when the file starts with `<`,
//! from the textual DSL otherwise (see `axml_schema::dsl`). Exit code 0
//! means "valid / safe / compatible"; 1 means the check failed; 2 means
//! usage or I/O errors.

use axml::core::invoke::{InvokeError, Invoker};
use axml::core::rewrite::Rewriter;
use axml::core::schema_rw::schema_safe_rewrites;
use axml::schema::{
    dsl, generate_output_instance, validate, validate_xml_stream, xsd, Compiled, GenConfig, ITree,
    NoOracle, Schema,
};
use axml_support::rng::SeedableRng;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("axml: {msg}");
    ExitCode::from(2)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  axml validate <schema> <doc.xml> [--stream]\n  axml rewrite  <schema> <doc.xml> [--k N] [--possible] [--execute SEED]\n  axml plan     <schema> <doc.xml> [--k N]\n  axml compat   <sender-schema> <exchange-schema> --root LABEL [--k N]\n  axml serve    <schema> <addr> [--name PEER] [--doc NAME=FILE]... [--export FUNC=DOC]... [--workers N] [--io threads|poll] [--shards N] [--requests N] [--cache-capacity N] [--enforce streaming|dom] [--builtin-services] [--store-dir DIR] [--snapshot-every N]\n  axml send     <schema> <addr> <doc.xml> [--name DOCNAME] [--k N] [--enforce-workers N] [--enforce streaming|dom] [--chunk-bytes N]\n  axml invoke   <schema> <addr> <method> [param]... [--k N]\n  axml stats    <addr>"
    );
    ExitCode::from(2)
}

fn load_schema(path: &str) -> Result<Schema, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if text.trim_start().starts_with('<') {
        xsd::parse_xml_schema(&text).map_err(|e| format!("{path}: {e}"))
    } else {
        dsl::parse_schema_dsl(&text).map_err(|e| format!("{path}: {e}"))
    }
}

fn load_doc(path: &str) -> Result<ITree, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let parsed = axml::xml::parse_document(&text).map_err(|e| format!("{path}: {e}"))?;
    ITree::from_xml(&parsed.root).map_err(|e| format!("{path}: {e}"))
}

/// Parses `--enforce streaming|dom`, defaulting to streaming (it is
/// byte-identical to the DOM pipeline and bounded-memory, so it is the
/// safe default).
fn parse_enforce_mode(args: &[String]) -> Result<axml::peer::EnforceMode, String> {
    match flag_value(args, "--enforce").as_deref() {
        None | Some("streaming") => Ok(axml::peer::EnforceMode::Streaming),
        Some("dom") => Ok(axml::peer::EnforceMode::Dom),
        Some(v) => Err(format!("--enforce expects 'streaming' or 'dom', got '{v}'")),
    }
}

/// Parses `--k N`, defaulting to 2; a malformed value is an error rather
/// than a silent default.
fn parse_k(args: &[String]) -> Result<u32, String> {
    match flag_value(args, "--k") {
        None => Ok(2),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--k expects a non-negative integer, got '{v}'")),
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

struct CliAdversary {
    compiled: std::sync::Arc<Compiled>,
    rng: axml_support::rng::StdRng,
}

impl Invoker for CliAdversary {
    fn invoke(&mut self, function: &str, _params: &[ITree]) -> Result<Vec<ITree>, InvokeError> {
        let output = self.compiled.sig_of(function).output.clone();
        generate_output_instance(
            &self.compiled,
            &output,
            &mut self.rng,
            &GenConfig::default(),
        )
        .map_err(|e| InvokeError {
            function: function.to_owned(),
            message: e.to_string(),
        })
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "validate" => cmd_validate(&args[1..]),
        "rewrite" => cmd_rewrite(&args[1..], true),
        "plan" => cmd_rewrite(&args[1..], false),
        "compat" => cmd_compat(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "send" => cmd_send(&args[1..]),
        "invoke" => cmd_invoke(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        _ => usage(),
    }
}

/// Every `--flag VALUE` pair for a repeatable flag, in order.
fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    args.windows(2)
        .filter(|w| w[0] == flag)
        .map(|w| w[1].clone())
        .collect()
}

fn split_pair(spec: &str, flag: &str) -> Result<(String, String), String> {
    spec.split_once('=')
        .map(|(a, b)| (a.to_owned(), b.to_owned()))
        .filter(|(a, b)| !a.is_empty() && !b.is_empty())
        .ok_or_else(|| format!("{flag} expects KEY=VALUE, got '{spec}'"))
}

/// Runs a peer daemon: repository + declared services + Schema
/// Enforcement, served over TCP. Prints `listening on ADDR` once bound.
/// With `--requests N` the daemon shuts down gracefully after answering
/// `N` requests; otherwise it runs until killed.
fn cmd_serve(args: &[String]) -> ExitCode {
    use axml::peer::{NetPeer, Peer, Query};
    use axml::services::{Registry, ServiceDef};

    let (Some(schema_path), Some(addr)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let schema = match load_schema(schema_path) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let name = flag_value(args, "--name").unwrap_or_else(|| "axml-peer".to_owned());
    let mut config = axml::net::ServerConfig {
        name: name.clone(),
        ..Default::default()
    };
    if let Some(w) = flag_value(args, "--workers") {
        match w.parse::<usize>() {
            Ok(n) if n > 0 => config.workers = n,
            _ => return fail(&format!("--workers expects a positive integer, got '{w}'")),
        }
    }
    if let Some(io) = flag_value(args, "--io") {
        match io.parse::<axml::net::IoMode>() {
            Ok(mode) => config.io = mode,
            Err(e) => return fail(&format!("--io: {e}")),
        }
    }
    if let Some(s) = flag_value(args, "--shards") {
        match s.parse::<usize>() {
            Ok(n) if n > 0 => config.shards = n,
            _ => return fail(&format!("--shards expects a positive integer, got '{s}'")),
        }
    }
    // Service declarations are advertised with the schema's own WSDL_int
    // signatures, so both ends agree on the types (Sec. 7).
    let mut exports = Vec::new();
    for spec in flag_values(args, "--export") {
        let (func, doc) = match split_pair(&spec, "--export") {
            Ok(p) => p,
            Err(e) => return fail(&e),
        };
        let Some(fd) = schema.functions.get(&func) else {
            return fail(&format!("--export: function '{func}' not in the schema"));
        };
        let def = ServiceDef::new(
            &func,
            &fd.input.display(&schema.alphabet).to_string(),
            &fd.output.display(&schema.alphabet).to_string(),
        );
        exports.push((def, Query::Document(doc)));
    }
    // With --builtin-services the daemon can *materialize* embedded
    // calls itself: every schema function with a simulated built-in
    // implementation (Get_Temp, TimeOut, Get_Date) is plugged into the
    // peer's registry, so output enforcement can invoke rather than
    // fault when a stored document is more intensional than its
    // declared type.
    let registry = Registry::new();
    if args.iter().any(|a| a == "--builtin-services") {
        use axml::services::builtin::{GetDate, GetTemp, TimeOutGuide};
        use axml::services::ServiceImpl;
        let builtins: Vec<(&str, std::sync::Arc<dyn ServiceImpl>)> = vec![
            ("Get_Temp", std::sync::Arc::new(GetTemp::with_defaults())),
            ("TimeOut", std::sync::Arc::new(TimeOutGuide::exhibits_only())),
            (
                "Get_Date",
                std::sync::Arc::new(GetDate {
                    table: vec![
                        ("Monet".to_owned(), "Mon".to_owned()),
                        ("Rodin".to_owned(), "Tue".to_owned()),
                    ],
                }),
            ),
        ];
        for (func, service) in builtins {
            if let Some(fd) = schema.functions.get(func) {
                let def = ServiceDef::new(
                    func,
                    &fd.input.display(&schema.alphabet).to_string(),
                    &fd.output.display(&schema.alphabet).to_string(),
                );
                registry.register(def, service);
            }
        }
    }
    let compiled = match Compiled::new(schema, &NoOracle) {
        Ok(c) => std::sync::Arc::new(c),
        Err(e) => return fail(&e.to_string()),
    };
    let mut peer = Peer::new(&name, compiled, std::sync::Arc::new(registry));
    match parse_enforce_mode(args) {
        Ok(mode) => peer = peer.with_enforce_mode(mode),
        Err(e) => return fail(&e),
    }
    if let Some(c) = flag_value(args, "--cache-capacity") {
        match c.parse::<usize>() {
            Ok(n) if n > 0 => {
                peer = peer.with_solve_cache(axml::core::solve_cache::SolveCache::new(n))
            }
            _ => {
                return fail(&format!(
                    "--cache-capacity expects a positive integer, got '{c}'"
                ))
            }
        }
    }
    let peer = std::sync::Arc::new(peer);
    for spec in flag_values(args, "--doc") {
        let (doc_name, file) = match split_pair(&spec, "--doc") {
            Ok(p) => p,
            Err(e) => return fail(&e),
        };
        match load_doc(&file) {
            Ok(doc) => peer.repository.store(&doc_name, doc),
            Err(e) => return fail(&e),
        }
    }
    for (def, query) in exports {
        peer.declare(def, query);
    }
    // Persistent warm state (DESIGN.md §11): load the solver-cache
    // snapshot before serving, persist it on graceful shutdown and
    // (with --snapshot-every N) every N answered requests.
    let store = match flag_value(args, "--store-dir") {
        Some(dir) => match axml::store::Store::open(&dir) {
            Ok(s) => Some(s),
            Err(e) => return fail(&format!("--store-dir {dir}: {e}")),
        },
        None => None,
    };
    let snapshot_every = match flag_value(args, "--snapshot-every") {
        None => None,
        Some(v) => match v.parse::<u64>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                return fail(&format!(
                    "--snapshot-every expects a positive integer, got '{v}'"
                ))
            }
        },
    };
    if snapshot_every.is_some() && store.is_none() {
        return fail("--snapshot-every requires --store-dir");
    }
    if let Some(store) = &store {
        let report = peer.warm_start(store);
        eprintln!(
            "warm start: {} cached solves loaded ({} bytes{})",
            report.entries,
            report.bytes,
            if report.discarded {
                ", corrupt snapshot discarded"
            } else {
                ""
            }
        );
    }
    let daemon = match NetPeer::serve(peer, addr.as_str(), config) {
        Ok(d) => d,
        Err(e) => return fail(&e.to_string()),
    };
    println!("listening on {}", daemon.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let quota = flag_value(args, "--requests").and_then(|v| v.parse::<u64>().ok());
    let mut last_snapshot_at: u64 = 0;
    loop {
        std::thread::sleep(std::time::Duration::from_millis(20));
        let stats = daemon.stats();
        let answered = stats.served.load(std::sync::atomic::Ordering::Relaxed)
            + stats.faulted.load(std::sync::atomic::Ordering::Relaxed);
        if let (Some(store), Some(every)) = (&store, snapshot_every) {
            if answered >= last_snapshot_at + every {
                if let Err(e) = daemon.peer().persist_warm_state(store) {
                    eprintln!("axml: snapshot failed: {e}");
                }
                last_snapshot_at = answered;
            }
        }
        if let Some(n) = quota {
            if answered >= n {
                if let Some(store) = &store {
                    if let Err(e) = daemon.peer().persist_warm_state(store) {
                        eprintln!("axml: snapshot failed: {e}");
                    }
                }
                let served = stats.served.load(std::sync::atomic::Ordering::Relaxed);
                return match daemon.shutdown() {
                    Ok(()) => {
                        println!("served {answered} requests ({served} ok)");
                        ExitCode::SUCCESS
                    }
                    Err(e) => fail(&e.to_string()),
                };
            }
        }
    }
}

/// Ships a document to a remote daemon under the given exchange schema
/// (the Fig. 1 exchange): materialize what the schema requires, send,
/// and report what the receiver stored it as.
fn cmd_send(args: &[String]) -> ExitCode {
    use axml::peer::{Peer, RemotePeer};
    use axml::services::Registry;

    let (Some(schema_path), Some(addr), Some(doc_path)) =
        (args.first(), args.get(1), args.get(2))
    else {
        return usage();
    };
    let k = match parse_k(args) {
        Ok(k) => k,
        Err(e) => return fail(&e),
    };
    let schema = match load_schema(schema_path) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let compiled = match Compiled::new(schema, &NoOracle) {
        Ok(c) => std::sync::Arc::new(c),
        Err(e) => return fail(&e.to_string()),
    };
    let doc = match load_doc(doc_path) {
        Ok(d) => d,
        Err(e) => return fail(&e),
    };
    let name = flag_value(args, "--name").unwrap_or_else(|| {
        std::path::Path::new(doc_path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "document".to_owned())
    });
    let mut sender = Peer::new("axml-send", std::sync::Arc::clone(&compiled), std::sync::Arc::new(Registry::new()));
    sender.enforce.k = k;
    match parse_enforce_mode(args) {
        Ok(mode) => sender.enforce.mode = mode,
        Err(e) => return fail(&e),
    }
    if let Some(w) = flag_value(args, "--enforce-workers") {
        match w.parse::<usize>() {
            Ok(n) if n > 0 => sender.enforce.workers = n,
            _ => {
                return fail(&format!(
                    "--enforce-workers expects a positive integer, got '{w}'"
                ))
            }
        }
    }
    let remote = match RemotePeer::connect(addr.as_str(), axml::net::ClientConfig::default()) {
        Ok(r) => r,
        Err(e) => return fail(&e.to_string()),
    };
    if let Some(cb) = flag_value(args, "--chunk-bytes") {
        // Chunked shipping: the enforced output streams into
        // fixed-size wire chunks instead of one Request frame, so the
        // document may exceed the frame cap (and sender RAM).
        let chunk = match cb.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => return fail(&format!("--chunk-bytes expects a positive integer, got '{cb}'")),
        };
        return match remote.send_document_chunked(&sender, &name, &doc, &compiled, chunk) {
            Ok(report) => {
                if report.fell_back && report.bytes_out == 0 {
                    println!(
                        "sent '{name}' to {} as one frame (peer predates chunked transfers)",
                        remote.addr()
                    );
                } else {
                    println!(
                        "sent '{name}' to {} in {chunk}-byte chunks ({} bytes enforced, peak buffer {} bytes)",
                        remote.addr(),
                        report.bytes_out,
                        report.peak_buffer_bytes
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                println!("send failed: {e}");
                ExitCode::from(1)
            }
        };
    }
    match remote.send_document(&sender, &name, &doc, &compiled) {
        Ok((sent, report)) => {
            println!(
                "sent '{name}' to {} ({} calls materialized, {} function nodes remain)",
                remote.addr(),
                report.invoked.len(),
                sent.num_funcs()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            println!("send failed: {e}");
            ExitCode::from(1)
        }
    }
}

/// Invokes a declared service on a running daemon, with client-side
/// input enforcement and receiver-side screening — the request path
/// that exercises the *daemon's* enforcement module (its input/output
/// rewriting and solver cache), unlike `send`, which enforces on the
/// sender. Positional parameters are text, or inline XML when they
/// start with `<`.
fn cmd_invoke(args: &[String]) -> ExitCode {
    use axml::peer::{Peer, RemotePeer};
    use axml::services::Registry;

    let (Some(schema_path), Some(addr), Some(method)) = (args.first(), args.get(1), args.get(2))
    else {
        return usage();
    };
    let k = match parse_k(args) {
        Ok(k) => k,
        Err(e) => return fail(&e),
    };
    let schema = match load_schema(schema_path) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let compiled = match Compiled::new(schema, &NoOracle) {
        Ok(c) => std::sync::Arc::new(c),
        Err(e) => return fail(&e.to_string()),
    };
    let mut params = Vec::new();
    let mut i = 3;
    while i < args.len() {
        let a = &args[i];
        if a.starts_with("--") {
            i += 2; // skip the flag and its value
            continue;
        }
        if a.trim_start().starts_with('<') {
            let tree = axml::xml::parse_document(a)
                .map_err(|e| e.to_string())
                .and_then(|d| ITree::from_xml(&d.root).map_err(|e| e.to_string()));
            match tree {
                Ok(t) => params.push(t),
                Err(e) => return fail(&format!("parameter {}: {e}", i - 2)),
            }
        } else {
            params.push(ITree::text(a));
        }
        i += 1;
    }
    let mut caller = Peer::new(
        "axml-invoke",
        std::sync::Arc::clone(&compiled),
        std::sync::Arc::new(Registry::new()),
    );
    caller.enforce.k = k;
    let remote = match RemotePeer::connect(addr.as_str(), axml::net::ClientConfig::default()) {
        Ok(r) => r,
        Err(e) => return fail(&e.to_string()),
    };
    match remote.invoke_service(&caller, method, &params) {
        Ok(result) => {
            for tree in &result {
                println!("{}", tree.to_xml().to_pretty_xml());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            println!("invoke failed: {e}");
            ExitCode::from(1)
        }
    }
}

/// Scrapes a running daemon's metric registry over a `StatsRequest`
/// frame and prints the JSON snapshot to stdout.
fn cmd_stats(args: &[String]) -> ExitCode {
    let Some(addr) = args.first() else {
        return usage();
    };
    let client =
        match axml::net::NetClient::new(addr.as_str(), axml::net::ClientConfig::default()) {
            Ok(c) => c,
            Err(e) => return fail(&e.to_string()),
        };
    match client.stats_json() {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e.to_string()),
    }
}

fn cmd_validate(args: &[String]) -> ExitCode {
    let (Some(schema_path), Some(doc_path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let schema = match load_schema(schema_path) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let compiled = match Compiled::new(schema, &NoOracle) {
        Ok(c) => c,
        Err(e) => return fail(&e.to_string()),
    };
    let result = if args.iter().any(|a| a == "--stream") {
        match std::fs::read_to_string(doc_path) {
            Ok(text) => validate_xml_stream(&text, &compiled),
            Err(e) => return fail(&format!("{doc_path}: {e}")),
        }
    } else {
        match load_doc(doc_path) {
            Ok(doc) => validate(&doc, &compiled),
            Err(e) => return fail(&e),
        }
    };
    match result {
        Ok(()) => {
            println!("valid");
            ExitCode::SUCCESS
        }
        Err(e) => {
            println!("invalid: {e}");
            ExitCode::from(1)
        }
    }
}

fn cmd_rewrite(args: &[String], execute_allowed: bool) -> ExitCode {
    let (Some(schema_path), Some(doc_path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let k = match parse_k(args) {
        Ok(k) => k,
        Err(e) => return fail(&e),
    };
    let schema = match load_schema(schema_path) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let compiled = match Compiled::new(schema, &NoOracle) {
        Ok(c) => std::sync::Arc::new(c),
        Err(e) => return fail(&e.to_string()),
    };
    let doc = match load_doc(doc_path) {
        Ok(d) => d,
        Err(e) => return fail(&e),
    };
    let mut rewriter = Rewriter::new(&compiled).with_k(k);
    let possible = args.iter().any(|a| a == "--possible");
    let analysis = if possible {
        rewriter.analyze_possible(&doc)
    } else {
        rewriter.analyze_safe(&doc)
    };
    match analysis {
        Ok(a) => {
            println!(
                "{}: yes ({} word games, {} product nodes, k = {k})",
                if possible { "possible" } else { "safe" },
                a.games,
                a.product_nodes
            );
            print_root_plan(&compiled, &doc, k, possible);
        }
        Err(e) => {
            println!("{}: no — {e}", if possible { "possible" } else { "safe" });
            return ExitCode::from(1);
        }
    }
    if execute_allowed {
        if let Some(seed) = flag_value(args, "--execute").and_then(|v| v.parse::<u64>().ok()) {
            let mut adversary = CliAdversary {
                compiled: std::sync::Arc::clone(&compiled),
                rng: axml_support::rng::StdRng::seed_from_u64(seed),
            };
            let run = if possible {
                rewriter.rewrite_possible(&doc, &mut adversary)
            } else {
                rewriter.rewrite_safe(&doc, &mut adversary)
            };
            match run {
                Ok((out, report)) => {
                    eprintln!(
                        "executed with simulated services (seed {seed}): invoked {:?}",
                        report.invoked
                    );
                    println!("{}", out.to_xml().to_pretty_xml());
                }
                Err(e) => {
                    println!("execution failed: {e}");
                    return ExitCode::from(1);
                }
            }
        }
    }
    ExitCode::SUCCESS
}

/// Prints the invoke/keep decisions for the root's children word — the
/// paper's "rewriting sequence" (Fig. 3 step 19 / Fig. 9 step 7).
fn print_root_plan(compiled: &Compiled, doc: &ITree, k: u32, possible: bool) {
    use axml::core::awk::{Awk, AwkLimits};
    use axml::core::possible::{target_of, PossibleGame};
    use axml::core::safe::{complement_of, BuildMode, SafeGame};
    let ITree::Elem { label, children } = doc else {
        return;
    };
    let Some(axml::schema::CompiledContent::Model { regex, .. }) = compiled.content_of(label)
    else {
        return;
    };
    let Ok(word) = axml::schema::words_of(children, compiled) else {
        return;
    };
    let Ok(awk) = Awk::build(&word, compiled, k, &AwkLimits::default()) else {
        return;
    };
    let n = compiled.alphabet().len();
    let plan = if possible {
        PossibleGame::solve(awk, target_of(regex, n)).plan()
    } else {
        SafeGame::solve(awk, complement_of(regex, n), BuildMode::Lazy).plan()
    };
    if let Some(plan) = plan {
        for d in plan {
            println!(
                "  {} {}",
                if d.invoke { "invoke" } else { "keep  " },
                compiled.alphabet().name(d.func)
            );
        }
    }
}

fn cmd_compat(args: &[String]) -> ExitCode {
    let (Some(s0_path), Some(s_path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let Some(root) = flag_value(args, "--root") else {
        return usage();
    };
    let k = match parse_k(args) {
        Ok(k) => k,
        Err(e) => return fail(&e),
    };
    let (s0, s) = match (load_schema(s0_path), load_schema(s_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    match schema_safe_rewrites(&s0, &root, &s, k, &NoOracle) {
        Ok(report) if report.compatible() => {
            println!(
                "compatible ({} element types checked, k = {k})",
                report.checked.len()
            );
            ExitCode::SUCCESS
        }
        Ok(report) => {
            println!("incompatible:");
            for f in &report.failures {
                println!("  - {f}");
            }
            ExitCode::from(1)
        }
        Err(e) => fail(&e.to_string()),
    }
}
