#!/usr/bin/env bash
# Tier-1 gate: the workspace must build, test, and smoke-bench fully
# offline (no registry crates exist in any Cargo.toml; see DESIGN.md §6).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build (offline, warnings are errors) =="
RUSTFLAGS="${RUSTFLAGS:--D warnings}" cargo build --release --offline --workspace --all-targets

echo "== tier-1: test suite (offline) =="
cargo test -q --offline --workspace

echo "== tier-1: loopback network tests (hard timeout) =="
# The TCP layer must never wedge the gate: every network-touching suite
# runs under a hard wall-clock cap.
timeout --kill-after=10 120 cargo test -q --offline -p axml-net
timeout --kill-after=10 120 cargo test -q --offline --test net_exchange
timeout --kill-after=10 120 cargo test -q --offline --test cli serve_and_send

echo "== tier-1: bench smoke run (B1 + B9 socket variant, JSON reports) =="
json_dir="$(mktemp -d)"
obs_dir="$(mktemp -d)"
daemon_pid=""
cleanup() {
    if [ -n "$daemon_pid" ]; then kill "$daemon_pid" 2>/dev/null || true; fi
    rm -rf "$json_dir" "$obs_dir"
}
trap cleanup EXIT
AXML_BENCH_SMOKE=1 AXML_BENCH_JSON="$json_dir" \
    cargo bench --offline -p axml-bench --bench b1_safe_vs_schema_size
AXML_BENCH_SMOKE=1 AXML_BENCH_JSON="$json_dir" \
    timeout --kill-after=10 300 \
    cargo bench --offline -p axml-bench --bench b9_peer_exchange
python3 - "$json_dir" <<'EOF'
import json, pathlib, sys
files = sorted(pathlib.Path(sys.argv[1]).glob("BENCH_*.json"))
assert files, "bench smoke run emitted no BENCH_*.json"
names = {f.name for f in files}
assert "BENCH_b9_peer_exchange.json" in names, f"missing B9 report, got {names}"
for f in files:
    report = json.loads(f.read_text())
    assert report["benchmarks"], f"{f.name}: empty benchmark list"
    print(f"{f.name}: {len(report['benchmarks'])} benchmarks, valid JSON")
b9 = json.loads((pathlib.Path(sys.argv[1]) / "BENCH_b9_peer_exchange.json").read_text())
ids = {b["id"] for b in b9["benchmarks"]}
assert {"exchange_channel", "exchange_tcp_loopback"} <= ids, f"B9 transport variants missing: {ids}"
EOF

echo "== tier-1: observability gate (invariants + live-daemon scrape) =="
timeout --kill-after=10 120 cargo test -q --offline --test obs_invariants

cat > "$obs_dir/star.schema" <<'SCHEMA'
element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit*)
element title     = data
element date      = data
element temp      = data
element city      = data
element exhibit   = title.(Get_Date | date)
element performance = data
function Get_Temp : city -> temp
function TimeOut  : data -> (exhibit | performance)*
function Get_Date : title -> date
root newspaper
SCHEMA
printf '%s\n' \
    "<newspaper><title>The Sun</title><date>04/10/2002</date><temp>15</temp></newspaper>" \
    > "$obs_dir/plain.xml"

axml_bin="target/release/axml"
"$axml_bin" serve "$obs_dir/star.schema" 127.0.0.1:0 --name obs-gate \
    > "$obs_dir/serve.out" &
daemon_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$obs_dir/serve.out")"
    if [ -n "$addr" ]; then break; fi
    sleep 0.1
done
[ -n "$addr" ] || { echo "daemon never printed its banner"; exit 1; }

# Drive one real exchange through the daemon, then scrape it live.
timeout --kill-after=10 60 \
    "$axml_bin" send "$obs_dir/star.schema" "$addr" "$obs_dir/plain.xml" --name front
timeout --kill-after=10 60 "$axml_bin" stats "$addr" > "$obs_dir/stats.json"
kill "$daemon_pid" 2>/dev/null || true
daemon_pid=""

python3 - "$obs_dir/stats.json" <<'EOF'
import json, sys
snap = json.loads(open(sys.argv[1]).read())
counters, gauges = snap["counters"], snap["gauges"]
# The documented catalogue (DESIGN.md §8) is present in every scrape.
for name in [
    "solver.safe.nodes_total", "solver.safe.sink_pruned_total",
    "solver.safe.mark_pruned_total", "solver.possible.nodes_total",
    "server.requests_total", "server.responses_ok_total",
    "server.faults_total", "server.busy_total", "server.timeouts_total",
    "server.frame_too_large_total", "server.panics_total",
    "client.retries_total", "peer.received_total",
    "solve_cache.lookups_total", "solve_cache.hits_total",
    "solve_cache.misses_total", "solve_cache.insertions_total",
    "solve_cache.evictions_total",
]:
    assert name in counters, f"scrape missing counter {name}"
assert "server.queue_depth" in gauges, "scrape missing server.queue_depth"
assert "solve_cache.entries" in gauges, "scrape missing solve_cache.entries"
assert "server.frame_bytes" in snap["histograms"], "scrape missing frame histogram"
# Cache accounting identity (DESIGN.md §9.2) holds in the live daemon.
assert counters["solve_cache.lookups_total"] == (
    counters["solve_cache.hits_total"] + counters["solve_cache.misses_total"]
), "solve cache accounting identity violated"
# The exchange we just drove is accounted, and exactly once.
assert counters["server.requests_total"] >= 1, "exchange not accounted"
assert counters["peer.received_total"] >= 1, "document receipt not accounted"
assert counters["server.requests_total"] == (
    counters["server.responses_ok_total"] + counters["server.faults_total"]
), "request accounting identity violated"
print(f"stats scrape ok: {len(counters)} counters, "
      f"requests={counters['server.requests_total']}")
EOF

echo "== tier-1: net-poller gate (readiness loop, DESIGN.md §12) =="
# The poll engine's own suites: decoder split-fuzz parity and the
# 5k-connection scale smoke — both under one wall-clock budget (the
# transport matrix in net_exchange already ran above, both engines).
poller_started=$(date +%s)
timeout --kill-after=10 60 cargo test -q --offline --test poller_frames
timeout --kill-after=10 60 cargo test -q --offline --test poller_scale
poller_elapsed=$(( $(date +%s) - poller_started ))
if [ "$poller_elapsed" -ge 60 ]; then
    echo "poller suites blew their wall-clock budget: ${poller_elapsed}s >= 60s"
    exit 1
fi
echo "poller suites ok in ${poller_elapsed}s (budget 60s)"

AXML_BENCH_SMOKE=1 AXML_BENCH_JSON="$json_dir" \
    timeout --kill-after=10 300 \
    cargo bench --offline -p axml-bench --bench b13_poller_load
python3 - "$json_dir" <<'EOF'
import json, pathlib, sys
b13 = json.loads((pathlib.Path(sys.argv[1]) / "BENCH_b13_poller_load.json").read_text())
ids = {b["id"] for b in b13["benchmarks"]}
want = {"round_trip_threads_1conn", "round_trip_poll_1conn"}
assert want <= ids, f"B13 variants missing: {want - ids}"
curve = b13["saturation"]
assert curve, "B13 emitted an empty saturation curve"
for point in curve:
    for key in ("conns", "requests", "rps", "p50_ns", "p99_ns", "p999_ns"):
        assert key in point, f"saturation point missing {key}: {point}"
    assert point["p50_ns"] <= point["p99_ns"] <= point["p999_ns"], \
        f"percentiles disordered: {point}"
obs = b13["daemon_obs"]["counters"]
assert obs["server.requests_total"] == (
    obs["server.responses_ok_total"] + obs["server.faults_total"]
), "B13 accounting identity violated"
assert obs["server.requests_total"] == sum(p["requests"] for p in curve), \
    "saturation-curve requests not all accounted by the daemon"
print(f"B13 smoke ok: {len(curve)} points, "
      f"requests={obs['server.requests_total']}")
EOF

# The live-daemon scrape again, poll engine this time: the readiness
# loop must be indistinguishable to ops tooling as well — same
# catalogue, same identity, plus its own fleet gauges.
"$axml_bin" serve "$obs_dir/star.schema" 127.0.0.1:0 --name obs-gate-poll \
    --io poll --shards 2 > "$obs_dir/serve-poll.out" &
daemon_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$obs_dir/serve-poll.out")"
    if [ -n "$addr" ]; then break; fi
    sleep 0.1
done
[ -n "$addr" ] || { echo "poll-mode daemon never printed its banner"; exit 1; }
timeout --kill-after=10 60 \
    "$axml_bin" send "$obs_dir/star.schema" "$addr" "$obs_dir/plain.xml" --name front
timeout --kill-after=10 60 "$axml_bin" stats "$addr" > "$obs_dir/stats-poll.json"
kill "$daemon_pid" 2>/dev/null || true
daemon_pid=""
python3 - "$obs_dir/stats-poll.json" <<'EOF'
import json, sys
snap = json.loads(open(sys.argv[1]).read())
counters, gauges = snap["counters"], snap["gauges"]
assert counters["server.requests_total"] >= 1, "poll-mode exchange not accounted"
assert counters["server.requests_total"] == (
    counters["server.responses_ok_total"] + counters["server.faults_total"]
), "poll-mode accounting identity violated"
for name in ("server.poll.connections", "server.poll.buffer_bytes"):
    assert name in gauges, f"poll-mode scrape missing gauge {name}"
assert gauges["server.poll.connections"] >= 1, "scraping connection not gauged"
print(f"poll-mode scrape ok: requests={counters['server.requests_total']}, "
      f"live conns={gauges['server.poll.connections']}")
EOF

echo "== tier-1: solver-cache gate (determinism suite + B11 smoke) =="
timeout --kill-after=10 180 cargo test -q --offline --test cache_determinism
AXML_BENCH_SMOKE=1 AXML_BENCH_JSON="$json_dir" \
    timeout --kill-after=10 300 \
    cargo bench --offline -p axml-bench --bench b11_solve_cache
python3 - "$json_dir" <<'EOF'
import json, pathlib, sys
b11 = json.loads((pathlib.Path(sys.argv[1]) / "BENCH_b11_solve_cache.json").read_text())
ids = {b["id"] for b in b11["benchmarks"]}
want = {"cold_sequential", "warm_sequential", "cold_parallel_w4", "warm_parallel_w4"}
assert want <= ids, f"B11 variants missing: {want - ids}"
snap = b11["solve_cache_snapshot"]["counters"]
assert snap["solve_cache.hits_total"] > 0, "warm B11 runs never hit the cache"
assert snap["solve_cache.lookups_total"] == (
    snap["solve_cache.hits_total"] + snap["solve_cache.misses_total"]
), "B11 cache accounting identity violated"
print(f"B11 smoke ok: {sorted(ids)}, "
      f"hit rate {snap['solve_cache.hits_total']}/{snap['solve_cache.lookups_total']}")
EOF

echo "== tier-1: store gate (persistent warm state, DESIGN.md §11) =="
# Snapshot/matrix round-trip and corruption suites, the B12 warm-start
# bench, and a live cold→warm daemon restart — all under a 60s budget
# like the sim gate (the suites are pure compute plus a few KB of I/O).
store_started=$(date +%s)
timeout --kill-after=10 60 cargo test -q --offline -p axml-store
timeout --kill-after=10 60 cargo test -q --offline --test store_roundtrip
timeout --kill-after=10 60 cargo test -q --offline --test store_robustness
timeout --kill-after=10 60 cargo test -q --offline --test store_restart
store_elapsed=$(( $(date +%s) - store_started ))
if [ "$store_elapsed" -ge 60 ]; then
    echo "store suites blew their wall-clock budget: ${store_elapsed}s >= 60s"
    exit 1
fi
echo "store suites ok in ${store_elapsed}s (budget 60s)"

AXML_BENCH_SMOKE=1 AXML_BENCH_JSON="$json_dir" \
    timeout --kill-after=10 300 \
    cargo bench --offline -p axml-bench --bench b12_store_warm_start
python3 - "$json_dir" <<'EOF'
import json, pathlib, sys
b12 = json.loads((pathlib.Path(sys.argv[1]) / "BENCH_b12_store_warm_start.json").read_text())
ids = {b["id"] for b in b12["benchmarks"]}
want = {"cold_start_first_request", "warm_start_first_request",
        "cold_start_first_100", "warm_start_first_100",
        "snapshot_load", "snapshot_persist"}
assert want <= ids, f"B12 variants missing: {want - ids}"
ws = b12["warm_start"]
assert ws["entries"] > 0 and ws["snapshot_bytes"] > 0, f"empty snapshot: {ws}"
assert ws["cold"]["misses"] > 0, "cold start never exercised the solver"
assert ws["warm"]["misses"] == 0, (
    f"warm-snapshot start missed {ws['warm']['misses']} times in the "
    f"first {ws['first_requests']} requests")
assert ws["warm"]["hits"] == ws["warm"]["lookups"], "warm accounting broken"
print(f"B12 smoke ok: {ws['entries']} entries / {ws['snapshot_bytes']} bytes, "
      f"warm hit rate {ws['warm']['hits']}/{ws['warm']['lookups']}")
EOF

# Live restart fidelity: a daemon populates its cache enforcing an
# intensional document, snapshots at graceful shutdown, and its
# replacement must resume warm — first request answered without one
# solver miss, asserted through the real stats scrape.
cat > "$obs_dir/sched.schema" <<'SCHEMA'
element r       = exhibit*
element exhibit = title.date
element title   = data
element date    = data
function Get_Date    : title -> date
function Get_Program : data -> r
root r
SCHEMA
cat > "$obs_dir/prog.xml" <<'XML'
<r><exhibit><title>Monet</title><int:fun xmlns:int="http://www.activexml.com/ns/int" methodName="Get_Date"><int:params><int:param><title>Monet</title></int:param></int:params></int:fun></exhibit></r>
XML
store_dir="$obs_dir/warm"
serve_store() {
    "$axml_bin" serve "$obs_dir/sched.schema" 127.0.0.1:0 --name store-gate \
        --doc program="$obs_dir/prog.xml" --export Get_Program=program \
        --builtin-services --store-dir "$store_dir" "$@"
}
serve_store --requests 2 > "$obs_dir/serve-cold.out" 2> "$obs_dir/serve-cold.err" &
daemon_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$obs_dir/serve-cold.out")"
    if [ -n "$addr" ]; then break; fi
    sleep 0.1
done
[ -n "$addr" ] || { echo "cold store daemon never printed its banner"; exit 1; }
timeout --kill-after=10 60 \
    "$axml_bin" invoke "$obs_dir/sched.schema" "$addr" Get_Program Monet > /dev/null
timeout --kill-after=10 60 "$axml_bin" stats "$addr" > "$obs_dir/stats-cold.json"
# Request 2 hits the quota: the daemon exits gracefully, snapshotting.
timeout --kill-after=10 60 \
    "$axml_bin" invoke "$obs_dir/sched.schema" "$addr" Get_Program Monet > /dev/null
wait "$daemon_pid"
daemon_pid=""
[ -f "$store_dir/solve_cache.axsc" ] || { echo "graceful shutdown left no snapshot"; exit 1; }

serve_store > "$obs_dir/serve-warm.out" 2> "$obs_dir/serve-warm.err" &
daemon_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$obs_dir/serve-warm.out")"
    if [ -n "$addr" ]; then break; fi
    sleep 0.1
done
[ -n "$addr" ] || { echo "warm store daemon never printed its banner"; exit 1; }
timeout --kill-after=10 60 \
    "$axml_bin" invoke "$obs_dir/sched.schema" "$addr" Get_Program Monet > /dev/null
timeout --kill-after=10 60 "$axml_bin" stats "$addr" > "$obs_dir/stats-warm.json"
kill "$daemon_pid" 2>/dev/null || true
daemon_pid=""
grep -q "^warm start: " "$obs_dir/serve-warm.err" \
    || { echo "restarted daemon never reported its warm start"; exit 1; }

python3 - "$obs_dir/stats-cold.json" "$obs_dir/stats-warm.json" <<'EOF'
import json, sys
cold = json.loads(open(sys.argv[1]).read())["counters"]
warm = json.loads(open(sys.argv[2]).read())["counters"]
# The cold daemon really solved games for this traffic...
assert cold["solve_cache.misses_total"] >= 1, "cold daemon never solved a game"
# ...and the restarted daemon resumed warm: snapshot loaded, first
# request answered entirely from it.
assert warm["store.load_total"] >= 1, "restarted daemon never consulted the store"
assert warm["store.entries_loaded_total"] >= 1, "snapshot loaded no entries"
assert warm["store.corrupt_discarded_total"] == 0, "snapshot discarded as corrupt"
assert warm["solve_cache.hits_total"] >= 1, "first post-restart request missed the warm cache"
assert warm["solve_cache.misses_total"] == 0, (
    f"restart was not warm: {warm['solve_cache.misses_total']} misses")
print(f"restart scrape ok: cold misses={cold['solve_cache.misses_total']}, "
      f"warm loaded={warm['store.entries_loaded_total']} "
      f"hits={warm['solve_cache.hits_total']} misses=0")
EOF

echo "== tier-1: sim gate (seeded fault injection, DESIGN.md §10) =="
# The deterministic simulator suites: ≥1000 fresh seeds plus the full
# regression corpus (regressions/sim/*.seeds replays automatically via
# the property harness), the ported protocol-fault tests, and the golden
# transcripts — all under one wall-clock budget. Virtual time means the
# whole batch simulates minutes of network traffic in seconds; a budget
# blowout signals a real-sleep or livelock regression, so it fails hard.
sim_started=$(date +%s)
timeout --kill-after=10 60 cargo test -q --offline --test sim_invariants
timeout --kill-after=10 60 cargo test -q --offline --test sim_faults
timeout --kill-after=10 60 cargo test -q --offline --test golden_transcripts
timeout --kill-after=10 60 cargo test -q --offline -p axml-sim
# Fleet soak (DESIGN.md §10.5): the reduced 16-peer gate plus the full
# 100-peer/1000-exchange fleet, strategic game-graph adversaries
# included — determinism and both accounting identities fleet-wide.
timeout --kill-after=10 60 cargo test -q --offline --test sim_soak
sim_elapsed=$(( $(date +%s) - sim_started ))
if [ "$sim_elapsed" -ge 60 ]; then
    echo "sim gate blew its wall-clock budget: ${sim_elapsed}s >= 60s"
    exit 1
fi
echo "sim gate ok in ${sim_elapsed}s (budget 60s)"

echo "== tier-1: streaming-enforcement gate (parity + bounded memory, DESIGN.md §13) =="
# The streaming enforcer's contract is byte-parity with the DOM pipeline
# and bounded buffering. Three checks: the parity/error-taxonomy suites
# under one wall-clock budget, the B14 smoke numbers (peak buffer flat
# across a 16x document-size sweep), and a live daemon scrape showing the
# enforce.stream.* catalogue with its accounting identity.
stream_started=$(date +%s)
timeout --kill-after=10 60 cargo test -q --offline --test stream_parity
timeout --kill-after=10 60 cargo test -q --offline -p axml-core stream::
stream_elapsed=$(( $(date +%s) - stream_started ))
if [ "$stream_elapsed" -ge 60 ]; then
    echo "streaming suites blew their wall-clock budget: ${stream_elapsed}s >= 60s"
    exit 1
fi
echo "streaming suites ok in ${stream_elapsed}s (budget 60s)"

AXML_BENCH_SMOKE=1 AXML_BENCH_JSON="$json_dir" \
    timeout --kill-after=10 300 \
    cargo bench --offline -p axml-bench --bench b14_stream_enforce
python3 - "$json_dir" <<'EOF'
import json, pathlib, sys
b14 = json.loads((pathlib.Path(sys.argv[1]) / "BENCH_b14_stream_enforce.json").read_text())
ids = {b["id"] for b in b14["benchmarks"]}
want = {"stream_1mib_16calls", "dom_1mib_16calls",
        "stream_16mib_16calls", "dom_16mib_16calls"}
assert want <= ids, f"B14 variants missing: {want - ids}"
reports = b14["stream_reports"]
assert reports, "B14 emitted no stream reports"
by_calls = {}
for r in reports:
    assert not r["fell_back"], f"streaming fell back in the bench: {r}"
    assert r["bytes_copied"] + r["bytes_rewritten"] == r["bytes_out"], \
        f"byte accounting identity violated: {r}"
    by_calls.setdefault(r["call_sites"], []).append(r)
# Bounded memory: peak buffering must stay flat (within 2x) while the
# document grows 16x — it tracks the call-bearing subtree, not the doc.
for calls, rs in sorted(by_calls.items()):
    rs.sort(key=lambda r: r["size_bytes"])
    growth = rs[-1]["size_bytes"] / rs[0]["size_bytes"]
    assert growth >= 16, f"B14 sweep too narrow for {calls} calls: {growth:.1f}x"
    peaks = [r["peak_buffer_bytes"] for r in rs]
    if calls == 0:
        assert all(p == 0 for p in peaks), f"extensional docs buffered: {peaks}"
    else:
        assert min(peaks) > 0, f"{calls}-call docs never buffered: {peaks}"
        assert max(peaks) <= 2 * min(peaks), (
            f"peak buffer not flat for {calls} calls across {growth:.0f}x "
            f"size growth: {peaks}")
    print(f"B14 {calls:>2} calls: sizes {rs[0]['size_bytes']}→{rs[-1]['size_bytes']} "
          f"({growth:.0f}x), peaks {peaks}")
obs = b14["obs_snapshot"]["counters"]
assert obs["enforce.stream.bytes_copied"] + obs["enforce.stream.bytes_rewritten"] \
    == obs["enforce.stream.bytes_out"], "obs-level byte identity violated"
print(f"B14 smoke ok: {len(reports)} configs, "
      f"{obs['enforce.stream.bytes_copied']}/{obs['enforce.stream.bytes_out']} "
      "bytes zero-copied")
EOF

# Live scrape: a daemon receiving a document under --enforce streaming
# (the default, passed explicitly here) runs the streaming verifier
# in-process, so its stats expose the enforce.stream.* catalogue.
"$axml_bin" serve "$obs_dir/star.schema" 127.0.0.1:0 --name stream-gate \
    --enforce streaming > "$obs_dir/serve-stream.out" &
daemon_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$obs_dir/serve-stream.out")"
    if [ -n "$addr" ]; then break; fi
    sleep 0.1
done
[ -n "$addr" ] || { echo "streaming-mode daemon never printed its banner"; exit 1; }
timeout --kill-after=10 60 \
    "$axml_bin" send "$obs_dir/star.schema" "$addr" "$obs_dir/plain.xml" \
    --name front --enforce streaming
timeout --kill-after=10 60 "$axml_bin" stats "$addr" > "$obs_dir/stats-stream.json"
kill "$daemon_pid" 2>/dev/null || true
daemon_pid=""
python3 - "$obs_dir/stats-stream.json" <<'EOF'
import json, sys
snap = json.loads(open(sys.argv[1]).read())
counters, gauges = snap["counters"], snap["gauges"]
for name in ["enforce.stream.runs", "enforce.stream.bytes_out",
             "enforce.stream.bytes_copied", "enforce.stream.bytes_rewritten",
             "enforce.stream.subtrees_materialized", "enforce.stream.fallbacks"]:
    assert name in counters, f"scrape missing counter {name}"
assert "enforce.stream.peak_buffer_bytes" in gauges, \
    "scrape missing enforce.stream.peak_buffer_bytes"
assert counters["enforce.stream.runs"] >= 1, "receive never ran the streaming verifier"
assert counters["enforce.stream.bytes_copied"] \
    + counters["enforce.stream.bytes_rewritten"] \
    == counters["enforce.stream.bytes_out"], \
    "live daemon byte accounting identity violated"
print(f"streaming scrape ok: runs={counters['enforce.stream.runs']}, "
      f"{counters['enforce.stream.bytes_copied']}/"
      f"{counters['enforce.stream.bytes_out']} bytes zero-copied")
EOF

echo "== tier-1: chunking gate (wire parity + fuzz + 4x-cap ship, DESIGN.md §14) =="
# The chunk protocol's contract (DESIGN.md §14): splitting a document
# into DocChunkStart/DocChunk/DocChunkEnd frames is pure transport —
# received bytes identical to the in-memory enforcement at every chunk
# size, and the corruption taxonomy byte-identical across engines. The
# parity property, the seeded fuzz sweep, and the pinned fault messages
# all run under one wall-clock budget.
chunk_started=$(date +%s)
timeout --kill-after=10 60 cargo test -q --offline --test chunk_parity
timeout --kill-after=10 60 cargo test -q --offline --test poller_frames \
    seeded_chunk_fuzz_taxonomy_matches_across_readers \
    chunk_corruption_messages_are_pinned
chunk_elapsed=$(( $(date +%s) - chunk_started ))
if [ "$chunk_elapsed" -ge 60 ]; then
    echo "chunking suites blew their wall-clock budget: ${chunk_elapsed}s >= 60s"
    exit 1
fi
echo "chunking suites ok in ${chunk_elapsed}s (budget 60s)"

# The bounded-memory witness: a document >=4x the frame cap ships end to
# end through both engines with sender- and receiver-side buffer
# accounting. Release mode — the test builds ~17 MB of XML.
timeout --kill-after=10 120 \
    cargo test -q --release --offline --test chunk_parity -- --ignored

AXML_BENCH_SMOKE=1 AXML_BENCH_JSON="$json_dir" \
    timeout --kill-after=10 300 \
    cargo bench --offline -p axml-bench --bench b15_chunked_ship
python3 - "$json_dir" <<'EOF'
import json, pathlib, sys
b15 = json.loads((pathlib.Path(sys.argv[1]) / "BENCH_b15_chunked_ship.json").read_text())
ids = {b["id"] for b in b15["benchmarks"]}
want = {"single_1mib_threads", "single_1mib_poll",
        "chunked_16mib_threads", "chunked_16mib_poll",
        "enforced_chunked_4mib_threads", "enforced_chunked_4mib_poll"}
assert want <= ids, f"B15 variants missing: {want - ids}"
reports = b15["ship_reports"]
assert reports, "B15 emitted no ship reports"
frame_cap = 4 << 20
seen_over_cap = False
for r in reports:
    # Receiver-side identities, per configuration: zero aborts, the
    # reassembly buffer fully released, every chunk frame accounted.
    assert r["aborts"] == 0, f"chunked ship aborted: {r}"
    assert r["reassembly_gauge"] == 0, f"reassembly buffer not released: {r}"
    assert r["chunk_frames"] >= 2 + r["recv_bytes"] // r["chunk_bytes"], \
        f"chunk frame undercount: {r}"
    if r["id"].startswith("chunked_"):
        assert r["recv_bytes"] == r["size_bytes"], f"bytes lost on the wire: {r}"
    if r["size_bytes"] >= 4 * frame_cap:
        seen_over_cap = True
    if r["id"].startswith("enforced_"):
        # Full pipeline: streaming enforcement into the chunk sink never
        # buffers anything close to a frame, let alone the document.
        assert 0 < r["sender_peak_buffer_bytes"] < frame_cap // 4, \
            f"sender peak buffer unbounded: {r}"
assert seen_over_cap, "no ship at >=4x the frame cap was measured"
biggest = max(r["size_bytes"] for r in reports)
print(f"B15 smoke ok: {len(reports)} ship reports, largest {biggest} bytes "
      f"({biggest / frame_cap:.1f}x the frame cap)")
EOF

# Live scrape: the CLI ships a document in 16-byte chunks through a real
# daemon, which must expose the net.chunk.* catalogue with the transfer
# accounted and the reassembly gauge back at zero.
"$axml_bin" serve "$obs_dir/star.schema" 127.0.0.1:0 --name chunk-gate \
    > "$obs_dir/serve-chunk.out" &
daemon_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$obs_dir/serve-chunk.out")"
    if [ -n "$addr" ]; then break; fi
    sleep 0.1
done
[ -n "$addr" ] || { echo "chunk-gate daemon never printed its banner"; exit 1; }
timeout --kill-after=10 60 \
    "$axml_bin" send "$obs_dir/star.schema" "$addr" "$obs_dir/plain.xml" \
    --name front --chunk-bytes 16 > "$obs_dir/send-chunk.out"
grep -q "in 16-byte chunks" "$obs_dir/send-chunk.out" \
    || { echo "CLI silently fell back to a single frame:"; \
         cat "$obs_dir/send-chunk.out"; exit 1; }
timeout --kill-after=10 60 "$axml_bin" stats "$addr" > "$obs_dir/stats-chunk.json"
kill "$daemon_pid" 2>/dev/null || true
daemon_pid=""
python3 - "$obs_dir/stats-chunk.json" <<'EOF'
import json, sys
snap = json.loads(open(sys.argv[1]).read())
counters, gauges = snap["counters"], snap["gauges"]
for name in ["net.chunk.frames_total", "net.chunk.bytes_total",
             "net.chunk.aborts_total"]:
    assert name in counters, f"scrape missing counter {name}"
assert "net.chunk.reassembly_bytes" in gauges, \
    "scrape missing net.chunk.reassembly_bytes"
# One 16-byte-chunked transfer: many frames, every payload byte counted,
# no aborts, and the reassembly buffer handed off and released.
assert counters["net.chunk.frames_total"] >= 3, "chunked send not accounted"
assert counters["net.chunk.bytes_total"] >= 1, "no chunk payload accounted"
assert counters["net.chunk.aborts_total"] == 0, "clean transfer counted as abort"
assert gauges["net.chunk.reassembly_bytes"] == 0, \
    "reassembly buffer not released after hand-off"
assert counters["peer.received_total"] >= 1, "chunked document receipt not accounted"
print(f"chunk scrape ok: frames={counters['net.chunk.frames_total']}, "
      f"bytes={counters['net.chunk.bytes_total']}, gauge back at 0")
EOF

echo "== tier-1: green =="
