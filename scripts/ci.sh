#!/usr/bin/env bash
# Tier-1 gate: the workspace must build, test, and smoke-bench fully
# offline (no registry crates exist in any Cargo.toml; see DESIGN.md §6).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build (offline, warnings are errors) =="
RUSTFLAGS="${RUSTFLAGS:--D warnings}" cargo build --release --offline --workspace --all-targets

echo "== tier-1: test suite (offline) =="
cargo test -q --offline --workspace

echo "== tier-1: loopback network tests (hard timeout) =="
# The TCP layer must never wedge the gate: every network-touching suite
# runs under a hard wall-clock cap.
timeout --kill-after=10 120 cargo test -q --offline -p axml-net
timeout --kill-after=10 120 cargo test -q --offline --test net_exchange
timeout --kill-after=10 120 cargo test -q --offline --test cli serve_and_send

echo "== tier-1: bench smoke run (B1 + B9 socket variant, JSON reports) =="
json_dir="$(mktemp -d)"
trap 'rm -rf "$json_dir"' EXIT
AXML_BENCH_SMOKE=1 AXML_BENCH_JSON="$json_dir" \
    cargo bench --offline -p axml-bench --bench b1_safe_vs_schema_size
AXML_BENCH_SMOKE=1 AXML_BENCH_JSON="$json_dir" \
    timeout --kill-after=10 300 \
    cargo bench --offline -p axml-bench --bench b9_peer_exchange
python3 - "$json_dir" <<'EOF'
import json, pathlib, sys
files = sorted(pathlib.Path(sys.argv[1]).glob("BENCH_*.json"))
assert files, "bench smoke run emitted no BENCH_*.json"
names = {f.name for f in files}
assert "BENCH_b9_peer_exchange.json" in names, f"missing B9 report, got {names}"
for f in files:
    report = json.loads(f.read_text())
    assert report["benchmarks"], f"{f.name}: empty benchmark list"
    print(f"{f.name}: {len(report['benchmarks'])} benchmarks, valid JSON")
b9 = json.loads((pathlib.Path(sys.argv[1]) / "BENCH_b9_peer_exchange.json").read_text())
ids = {b["id"] for b in b9["benchmarks"]}
assert {"exchange_channel", "exchange_tcp_loopback"} <= ids, f"B9 transport variants missing: {ids}"
EOF

echo "== tier-1: green =="
