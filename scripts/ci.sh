#!/usr/bin/env bash
# Tier-1 gate: the workspace must build, test, and smoke-bench fully
# offline (no registry crates exist in any Cargo.toml; see DESIGN.md §6).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build (offline, warnings are errors) =="
RUSTFLAGS="${RUSTFLAGS:--D warnings}" cargo build --release --offline --workspace --all-targets

echo "== tier-1: test suite (offline) =="
cargo test -q --offline --workspace

echo "== tier-1: bench smoke run (B1, JSON report) =="
json_dir="$(mktemp -d)"
trap 'rm -rf "$json_dir"' EXIT
AXML_BENCH_SMOKE=1 AXML_BENCH_JSON="$json_dir" \
    cargo bench --offline -p axml-bench --bench b1_safe_vs_schema_size
python3 - "$json_dir" <<'EOF'
import json, pathlib, sys
files = sorted(pathlib.Path(sys.argv[1]).glob("BENCH_*.json"))
assert files, "bench smoke run emitted no BENCH_*.json"
for f in files:
    report = json.loads(f.read_text())
    assert report["benchmarks"], f"{f.name}: empty benchmark list"
    print(f"{f.name}: {len(report['benchmarks'])} benchmarks, valid JSON")
EOF

echo "== tier-1: green =="
